//! Offline shim of `serde_json`.
//!
//! Renders and parses JSON through the vendored `serde` crate's [`Value`]
//! model. Supports everything the workspace serializes: objects, arrays,
//! strings (with escapes), booleans, null and numbers. Floats are printed
//! with Rust's shortest round-trip formatting, so `f32`/`f64` survive a
//! JSON round trip bit-exactly.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
///
/// Parse errors carry the byte offset at which parsing failed, available
/// through [`Error::offset`] — the serving layer uses it to point clients at
/// the malformed position of a request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Byte offset into the input at which parsing failed, if this is a
    /// parse error with a known position.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} at offset {offset}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    from_slice(input.as_bytes())
}

/// Parses a value of type `T` directly from JSON bytes, without requiring an
/// intermediate `&str` (the parser validates UTF-8 lazily, only inside
/// string literals). This is the zero-copy entry point request bodies decode
/// through.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch; parse errors
/// carry the failing byte offset ([`Error::offset`]).
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input,
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at("trailing characters", parser.pos));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Rust's Display is shortest round-trip; ensure a decimal point so
            // the value parses back as a float.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::at(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::at("invalid literal", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_compact_and_pretty() {
        let mut map = BTreeMap::new();
        map.insert("k\"ey".to_string(), "va\\lue\n".to_string());
        let json = to_string(&map).unwrap();
        let back: BTreeMap<String, String> = from_str(&json).unwrap();
        assert_eq!(back, map);
        let pretty = to_string_pretty(&map).unwrap();
        let back2: BTreeMap<String, String> = from_str(&pretty).unwrap();
        assert_eq!(back2, map);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let xs: Vec<f32> = vec![0.1, -1.5e-20, 3.4028235e38, 1.0, -0.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn integers_and_bools() {
        let json = "[1, -2, 18446744073709551615, true, false, null]";
        let v: Vec<Option<f64>> = from_str("[1.5, null]").unwrap();
        assert_eq!(v, vec![Some(1.5), None]);
        let nums: (i64, i64) = from_str("[3, -4]").unwrap();
        assert_eq!(nums, (3, -4));
        assert!(from_str::<Vec<bool>>(json).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("not json at all").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn from_slice_matches_from_str_and_reports_offsets() {
        let nums: Vec<u32> = from_slice(b"[1, 2, 3]").unwrap();
        assert_eq!(nums, vec![1, 2, 3]);
        // Byte input need not be valid UTF-8 outside string literals to be
        // rejected gracefully.
        assert!(from_slice::<Vec<u32>>(&[b'[', 0xFF, b']']).is_err());
        // Parse errors carry the failing byte offset.
        let err = from_slice::<Vec<u32>>(b"[1, x]").unwrap_err();
        assert_eq!(err.offset(), Some(4));
        assert!(err.to_string().contains("offset 4"));
        let err = from_str::<u32>("7 trailing").unwrap_err();
        assert_eq!(err.offset(), Some(2));
        // Shape mismatches are not positional.
        assert_eq!(from_str::<u32>("true").unwrap_err().offset(), None);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
