//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the handful of `rand` items the
//! code depends on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is SplitMix64 — statistically solid for test workloads and
//! weight initialisation, tiny, and fully deterministic for a given seed.
//! Streams do **not** match the real `rand` crate; nothing in this workspace
//! depends on the exact values, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution.
pub trait StandardSample {
    /// Produces a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 high-quality bits -> uniform [0, 1).
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> Self {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl StandardSample for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl StandardSample for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample uniformly. Tying the element type to
/// the range type (as real rand does via `SampleUniform`) lets type inference
/// flow from an unsuffixed range literal to the use site and back.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, _inclusive: bool, bits: u64) -> Self {
                let u = <$t as StandardSample>::from_bits(bits);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (bits as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range requires start < end");
        T::sample_uniform(self.start, self.end, false, rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range requires start <= end");
        T::sample_uniform(lo, hi, true, rng.next_u64())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::from_bits_uniform(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

trait BitsUniform {
    fn from_bits_uniform(bits: u64) -> f64;
}
impl BitsUniform for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5_f32..1.5);
            assert!((-0.5..1.5).contains(&f));
            let i = rng.gen_range(-2_isize..=2);
            assert!((-2..=2).contains(&i));
            let u = rng.gen_range(3_usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn standard_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
