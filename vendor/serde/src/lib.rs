//! Offline shim of `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors a
//! small serialization framework that is **API-compatible with the subset of
//! serde the codebase uses**: the `Serialize` / `Deserialize` traits, their
//! derive macros, and enough impls for the primitive, container and tuple
//! types that appear in the workspace's data structures.
//!
//! Unlike real serde there is no zero-copy visitor machinery; serialization
//! goes through an owned [`Value`] tree that `serde_json` renders and parses.
//! Round-tripping through JSON is exact for every type used here, including
//! `f32`/`f64` (shortest round-trip formatting).

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: fetches and deserializes one struct field.
///
/// # Errors
///
/// Returns [`DeError`] if the key is missing or its value malformed.
pub fn __field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, DeError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}` in {context}")))?;
    T::from_value(value).map_err(|e| DeError::new(format!("field `{key}` of {context}: {e}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i128 = match value {
                    Value::I64(v) => *v as i128,
                    Value::U64(v) => *v as i128,
                    Value::F64(v) if v.fract() == 0.0 => *v as i128,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::I64(v as i64)
                } else {
                    Value::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i128 = match value {
                    Value::I64(v) => *v as i128,
                    Value::U64(v) => *v as i128,
                    Value::F64(v) if v.fract() == 0.0 => *v as i128,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 widening is exact, so the round trip is lossless.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_arr()
            .ok_or_else(|| DeError::new(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(std::path::PathBuf::from(s)),
            other => Err(DeError::new(format!(
                "expected path string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_obj()
            .ok_or_else(|| DeError::new(format!("expected object, found {}", value.kind())))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_arr()
                    .ok_or_else(|| DeError::new(format!("expected tuple array, found {}", value.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        let xs = [0.1_f32, -3.25, 1.0e-12, f32::MAX, f32::MIN_POSITIVE];
        for x in xs {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap(), x);
        }
    }

    #[test]
    fn option_null_round_trip() {
        let some = Some(5_u32).to_value();
        let none = Option::<u32>::None.to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(5));
        assert_eq!(Option::<u32>::from_value(&none).unwrap(), None);
    }

    #[test]
    fn array_round_trip_checks_length() {
        let v = [1_usize, 2, 3].to_value();
        assert_eq!(<[usize; 3]>::from_value(&v).unwrap(), [1, 2, 3]);
        assert!(<[usize; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "x".to_string());
        m.insert("b".to_string(), "y".to_string());
        let v = m.to_value();
        assert_eq!(BTreeMap::<String, String>::from_value(&v).unwrap(), m);
    }
}
