//! Offline shim of `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls for the vendored value-model
//! `serde` crate. The parser handles exactly the shapes this workspace uses:
//! non-generic structs (named, tuple and unit) and non-generic enums with
//! unit, tuple and struct variants. It is written against `proc_macro`
//! directly so it needs no external dependencies (`syn`/`quote` are
//! unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` & friends
                }
            }
            _ => return,
        }
    }
}

/// Splits the tokens of a brace-delimited named-field list into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (or end of input).
/// Angle brackets are plain puncts in token streams, so generic commas are
/// skipped by tracking `<`/`>` depth.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0_i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` expression.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Obj(::std::vec::Vec::new())".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Obj(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Arr(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}",
                arms.join("\n            ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::__field(obj, \"{f}\", \"{name}\")?,"))
                        .collect();
                    format!(
                        "let obj = value.as_obj().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n        ::std::result::Result::Ok({name} {{\n            {}\n        }})",
                        inits.join("\n            ")
                    )
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|idx| format!("::serde::Deserialize::from_value(&arr[{idx}])?,"))
                        .collect();
                    format!(
                        "let arr = value.as_arr().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n        if arr.len() != {n} {{\n            return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity for {name}\"));\n        }}\n        ::std::result::Result::Ok({name}(\n            {}\n        ))",
                        inits.join("\n            ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::__field(obj, \"{f}\", \"{name}::{vname}\")?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n                        let obj = inner.as_obj().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vname}\"))?;\n                        ::std::result::Result::Ok({name}::{vname} {{\n                            {}\n                        }})\n                    }}",
                                inits.join("\n                            ")
                            ))
                        }
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|idx| format!("::serde::Deserialize::from_value(&arr[{idx}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n                        let arr = inner.as_arr().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vname}\"))?;\n                        if arr.len() != {n} {{\n                            return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}::{vname}\"));\n                        }}\n                        ::std::result::Result::Ok({name}::{vname}(\n                            {}\n                        ))\n                    }}",
                                inits.join("\n                            ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        match value {{\n            ::serde::Value::Str(s) => match s.as_str() {{\n                {unit}\n                other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n            }},\n            ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n                let (tag, inner) = &entries[0];\n                let _ = inner;\n                match tag.as_str() {{\n                    {data}\n                    other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n                }}\n            }}\n            other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"expected variant of {name}, found {{}}\", other.kind()))),\n        }}\n    }}\n}}",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                    "),
            )
        }
    }
}
