//! Offline shim of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range and collection strategies, `any::<T>()`, tuple strategies and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! [`ProptestConfig::cases`] deterministic cases (seeded per case index), and
//! a failing case panics with the ordinary assertion message. Determinism
//! means failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps offline test time sane
        // while still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic SplitMix64 generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of values for one property-test argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// --- numeric range strategies ----------------------------------------------

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end);
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi);
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// --- any / Just / tuples ---------------------------------------------------

/// Marker strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over a type's full value domain (the shim supports the types the
/// workspace asks for).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

// --- collections -----------------------------------------------------------

/// Length specification for collection strategies: a fixed `usize` or a
/// `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end);
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing a `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `BTreeSet` strategy; the requested size is an upper bound
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Just, ProptestConfig, Strategy, TestRng};
}

// --- macros ----------------------------------------------------------------

/// Property-test assertion (no shrinking in the shim, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }` runs
/// once per configured case with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng = $crate::TestRng::new(
                    0x5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1_usize..10, f in -2.0_f32..2.0, s in -3_isize..=3) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((-3..=3).contains(&s));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in collection::vec(any::<bool>(), 16),
            ranged in collection::vec(0_u64..5, 1..9),
        ) {
            prop_assert_eq!(fixed.len(), 16);
            prop_assert!((1..9).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|&v| v < 5));
        }

        #[test]
        fn btree_set_bounded(s in collection::btree_set(0_usize..500, 0..100)) {
            prop_assert!(s.len() < 100);
        }

        #[test]
        fn tuples_sample_both(pair in (0_usize..4, 0.0_f64..1.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
