//! Offline shim of `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple median-of-samples wall-clock harness instead
//! of criterion's full statistical machinery.
//!
//! Each benchmark warms up briefly, then takes [`Criterion::SAMPLES`] timed
//! samples of an adaptively chosen iteration batch and reports the median
//! time per iteration (and derived throughput when one was declared).
//!
//! Two harness controls mirror real criterion:
//!
//! * `--test` on the bench binary's command line (`cargo bench -- --test`)
//!   runs every benchmark body exactly once without timing — the CI smoke
//!   mode that keeps the benches compiling and runnable.
//! * the `BENCH_JSON` environment variable names a file to append one JSON
//!   line per benchmark to (`{"label":…,"ns_per_iter":…,"throughput":…}`),
//!   so perf baselines like `BENCH_batch.json` can be regenerated
//!   mechanically.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Whether the bench binary was invoked in `--test` smoke mode
/// (`cargo bench -- --test`): run every benchmark body once, skip timing.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    median_ns: f64,
    smoke: bool,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median time per call (or exactly
    /// once in `--test` smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            return;
        }
        // Warm-up and batch sizing: grow the batch until it takes >= 5 ms.
        let mut batch = 1_u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = (0..Criterion::SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Top-level bench driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Timed samples taken per benchmark.
    pub const SAMPLES: usize = 11;

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let smoke = smoke_mode();
    let mut bencher = Bencher {
        median_ns: 0.0,
        smoke,
    };
    f(&mut bencher);
    if smoke {
        println!("{label:<48} smoke ok (1 iteration, untimed)");
        return;
    }
    let per_iter = bencher.median_ns;
    let human = if per_iter >= 1e9 {
        format!("{:.3} s", per_iter / 1e9)
    } else if per_iter >= 1e6 {
        format!("{:.3} ms", per_iter / 1e6)
    } else if per_iter >= 1e3 {
        format!("{:.3} us", per_iter / 1e3)
    } else {
        format!("{per_iter:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{label:<48} {human:>12}/iter  {rate:>14.1} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{label:<48} {human:>12}/iter  {rate:>14.1} B/s");
        }
        None => println!("{label:<48} {human:>12}/iter"),
    }
    append_json(label, per_iter, throughput);
}

/// Appends one JSON line for the finished benchmark to the file named by the
/// `BENCH_JSON` environment variable, if set. Failures are reported to
/// stderr but never fail the bench run.
fn append_json(label: &str, per_iter_ns: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let label = json_escape(label);
    let throughput_field = match throughput {
        Some(Throughput::Elements(n)) => format!(
            ",\"elements\":{n},\"elements_per_sec\":{:.1}",
            n as f64 / (per_iter_ns / 1e9)
        ),
        Some(Throughput::Bytes(n)) => format!(
            ",\"bytes\":{n},\"bytes_per_sec\":{:.1}",
            n as f64 / (per_iter_ns / 1e9)
        ),
        None => String::new(),
    };
    let line =
        format!("{{\"label\":\"{label}\",\"ns_per_iter\":{per_iter_ns:.1}{throughput_field}}}\n");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = result {
        eprintln!("BENCH_JSON: could not append to {path}: {err}");
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collects bench functions into a runnable group, mirroring criterion's API.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
