//! The differential-oracle harness for the bit-packed spike planes and their
//! word-scan kernels.
//!
//! Every optimized path is held to **bit-for-bit** equality against two
//! retained oracles at once:
//!
//! * the **index-list** walk (`*_indexed` kernels over
//!   [`SpikePlane::active`]) — the pre-word-scan production path, and
//! * the **dense f32** reference (`forward` over the plane's dense backing)
//!   — the ground truth every event path has always been measured against.
//!
//! Inputs come from [`snn_core::test_support::adversarial_masks`]: empty and
//! full planes, one bit per mask word, runs straddling the 63/64 and 127/128
//! word boundaries, ragged tails (`len % 64 != 0`) and pseudorandom fills —
//! with proptest layering random geometries (strides, paddings, ragged
//! heights/widths) and seeds on top. Both weight precisions (fp32 and the
//! fake-quantized int4) run through every layer comparison; engine-level
//! thread counts are covered by the crate-root `spike_words_e2e` suite.

use proptest::prelude::*;
use snn_core::layers::{Conv2d, Linear, SpikeMaxPool2d};
use snn_core::quant::Precision;
use snn_core::spike::{scan_words, SpikePlane, SpikeTrain};
use snn_core::tensor::{Im2Col, Tensor};
use snn_core::test_support::{
    adversarial_masks, assert_plane_views_agree, assert_tensor_bits_eq, plane_from_mask,
    plane_from_mask_pushed,
};

/// Kaiming-initialized conv at both precisions: the fp32 layer and its
/// int4-fake-quantized counterpart (still f32 arithmetic, so the bitwise
/// contract is unchanged — only the weights move to the int4 grid).
fn conv_pair(seed: u64, stride: usize, padding: usize) -> Vec<(&'static str, Conv2d)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let fp32 = Conv2d::with_kaiming_init(2, 3, 3, stride, padding, &mut rng).unwrap();
    let int4 = fp32.to_precision(Precision::Int4).unwrap();
    vec![("fp32", fp32), ("int4", int4)]
}

fn linear_pair(seed: u64, n_in: usize, n_out: usize) -> Vec<(&'static str, Linear)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let fp32 = Linear::with_kaiming_init(n_in, n_out, &mut rng).unwrap();
    let int4 = fp32.to_precision(Precision::Int4).unwrap();
    vec![("fp32", fp32), ("int4", int4)]
}

proptest! {
    /// The three views of a plane (mask words, index list, dense backing)
    /// agree on every corpus case and random fill, whichever construction
    /// path built the plane.
    #[test]
    fn plane_views_agree_on_corpus_and_random_planes(
        c in 1_usize..3,
        h in 1_usize..10,
        w in 1_usize..12,
        seed in 0_u64..1000,
        random_bits in proptest::collection::vec(any::<bool>(), 1..256),
    ) {
        let shape = [c, h, w];
        let len = c * h * w;
        for case in adversarial_masks(len, seed) {
            let assigned = plane_from_mask(&shape, &case.mask);
            let pushed = plane_from_mask_pushed(&shape, &case.mask);
            prop_assert_eq!(&assigned, &pushed, "{}: assign vs push", case.name);
            assert_plane_views_agree(&assigned, case.name);
        }
        // A fully random mask on top of the engineered corpus.
        let mask: Vec<bool> = (0..len).map(|i| random_bits[i % random_bits.len()]).collect();
        let plane = plane_from_mask(&shape, &mask);
        prop_assert_eq!(&plane, &plane_from_mask_pushed(&shape, &mask));
        assert_plane_views_agree(&plane, "random");
    }

    /// `Conv2d`: word-scan forward ≡ index-list forward ≡ dense matmul
    /// forward, bit for bit, at fp32 and int4, across ragged geometries,
    /// strides and paddings, on the full adversarial corpus.
    #[test]
    fn conv_forward_word_equals_indexed_equals_dense(
        h in 3_usize..9,
        w in 3_usize..11,
        stride in 1_usize..3,
        padding in 0_usize..2,
        seed in 0_u64..500,
    ) {
        let shape = [2_usize, h, w];
        let len: usize = shape.iter().product();
        for (prec, conv) in conv_pair(seed, stride, padding) {
            for case in adversarial_masks(len, seed) {
                let plane = plane_from_mask(&shape, &case.mask);
                let word = conv.forward_spikes(&plane).unwrap();
                let indexed = conv.forward_spikes_indexed(&plane).unwrap();
                let dense = conv.forward(plane.dense()).unwrap();
                let ctx = format!("conv {prec} {}", case.name);
                assert_tensor_bits_eq(&word, &indexed, &format!("{ctx}: word vs indexed"));
                assert_tensor_bits_eq(&word, &dense, &format!("{ctx}: word vs dense"));
            }
        }
    }

    /// `Linear`: word-scan forward ≡ index-list forward ≡ dense matvec,
    /// bit for bit, at fp32 and int4, including ragged in-feature counts
    /// (`n_in % 64 != 0`) that exercise the tail word.
    #[test]
    fn linear_forward_word_equals_indexed_equals_dense(
        n_in in 1_usize..200,
        n_out in 1_usize..12,
        seed in 0_u64..500,
    ) {
        for (prec, fc) in linear_pair(seed, n_in, n_out) {
            for case in adversarial_masks(n_in, seed) {
                let plane = plane_from_mask(&[n_in], &case.mask);
                let word = fc.forward_spikes(&plane).unwrap();
                let indexed = fc.forward_spikes_indexed(&plane).unwrap();
                let dense = fc.forward(plane.dense()).unwrap();
                let ctx = format!("linear {prec} {}", case.name);
                assert_tensor_bits_eq(&word, &indexed, &format!("{ctx}: word vs indexed"));
                assert_tensor_bits_eq(&word, &dense, &format!("{ctx}: word vs dense"));
            }
        }
    }

    /// `SpikeMaxPool2d`: the word-scan plane forward produces a plane whose
    /// every view (dense, index list, mask words) equals the index-list
    /// oracle's, and whose dense backing equals the dense window-OR forward.
    #[test]
    fn pool_forward_word_equals_indexed_equals_dense(
        h in 3_usize..10,
        w in 3_usize..12,
        size in 2_usize..4,
        seed in 0_u64..500,
    ) {
        // h, w >= 3 >= size, so the window always fits.
        let shape = [2_usize, h, w];
        let len: usize = shape.iter().product();
        let pool = SpikeMaxPool2d::new(size).unwrap();
        for case in adversarial_masks(len, seed) {
            let plane = plane_from_mask(&shape, &case.mask);
            let mut word = SpikePlane::new();
            let mut indexed = SpikePlane::new();
            pool.forward_plane(&plane, &mut word).unwrap();
            pool.forward_plane_indexed(&plane, &mut indexed).unwrap();
            let ctx = format!("pool {}", case.name);
            prop_assert_eq!(&word, &indexed, "{}: word vs indexed", &ctx);
            assert_plane_views_agree(&word, &ctx);
            let dense = pool.forward(plane.dense()).unwrap();
            assert_tensor_bits_eq(word.dense(), &dense, &format!("{ctx}: word vs dense"));
        }
    }

    /// The event-driven im2col lowering (word scan) fills the identical
    /// column matrix as the dense scan, on every corpus case.
    #[test]
    fn im2col_word_scan_equals_dense_lowering(
        h in 3_usize..9,
        w in 3_usize..11,
        stride in 1_usize..3,
        padding in 0_usize..2,
        seed in 0_u64..500,
    ) {
        let shape = [2_usize, h, w];
        let len: usize = shape.iter().product();
        for case in adversarial_masks(len, seed) {
            let plane = plane_from_mask(&shape, &case.mask);
            let mut event = Im2Col::default();
            plane.im2col_into((3, 3), stride, padding, &mut event).unwrap();
            let dense = plane.dense().im2col((3, 3), stride, padding).unwrap();
            let ctx = format!("im2col {}", case.name);
            prop_assert_eq!(event.rows, dense.rows, "{}: rows", &ctx);
            prop_assert_eq!(event.cols, dense.cols, "{}: cols", &ctx);
            for (i, (a, b)) in event.data.iter().zip(dense.data.iter()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: cell {}", &ctx, i);
            }
        }
    }

    /// Reference-spec proptests for the `SpikeTrain` word API: `iter_ones`
    /// yields exactly the ascending true positions, `count_ones` matches the
    /// naive count, `or` is the elementwise disjunction, and the words have
    /// a clean tail.
    #[test]
    fn spike_train_word_api_matches_reference_spec(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
        other in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let train = SpikeTrain::from_bools(&bits);
        prop_assert_eq!(train.len(), bits.len());
        // iter_ones: ascending order AND completeness.
        let ones: Vec<usize> = train.iter_ones().collect();
        let naive: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        prop_assert_eq!(&ones, &naive, "iter_ones vs naive scan");
        prop_assert_eq!(train.count_ones(), naive.len(), "count_ones vs naive");
        // get() agrees with the source bits.
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(train.get(i), b, "get({})", i);
        }
        // Tail-word invariant.
        if bits.len() % 64 != 0 {
            let tail = *train.as_words().last().unwrap();
            prop_assert_eq!(tail >> (bits.len() % 64), 0, "tail bits beyond len");
        }
        // or(): elementwise disjunction at equal lengths.
        if bits.len() == other.len() {
            let ored = train.or(&SpikeTrain::from_bools(&other)).unwrap();
            for i in 0..bits.len() {
                prop_assert_eq!(ored.get(i), bits[i] || other[i], "or at {}", i);
            }
        }
        // Round-trip through activations preserves the words exactly.
        let round = SpikeTrain::from_activations(&train.to_activations());
        prop_assert_eq!(round.as_words(), train.as_words(), "activation round-trip");
    }

    /// Cross-type agreement: a binary `SpikePlane` and a `SpikeTrain` built
    /// from the same dense activations pack the identical mask words, and
    /// the shared [`scan_words`] walk reads both.
    #[test]
    fn plane_words_agree_with_spike_train_words(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let dense = Tensor::from_fn(&[bits.len()], |i| f32::from(bits[i]));
        let plane = SpikePlane::from_tensor(&dense);
        let train = SpikeTrain::from_activations(dense.as_slice());
        prop_assert_eq!(plane.as_words(), train.as_words(), "plane vs train words");
        let from_plane: Vec<usize> = scan_words(plane.as_words()).collect();
        let from_train: Vec<usize> = train.iter_ones().collect();
        prop_assert_eq!(from_plane, from_train, "scan_words vs iter_ones");
    }
}

/// Non-proptest spot checks of the exact boundary geometry the bit packing
/// must get right: a plane of 64 cells has one word, 65 cells two, and the
/// boundary bits land in the right words.
#[test]
fn word_boundary_bit_placement_is_exact() {
    let mut plane = SpikePlane::new();
    plane.begin(&[65]);
    plane.push(63);
    plane.push(64);
    assert_eq!(plane.as_words(), &[1_u64 << 63, 1]);
    assert_eq!(plane.iter_active().collect::<Vec<_>>(), vec![63, 64]);

    let mut exact = SpikePlane::new();
    exact.begin(&[64]);
    assert_eq!(exact.as_words().len(), 1);
    exact.push(0);
    exact.push(63);
    assert_eq!(exact.as_words(), &[(1_u64 << 63) | 1]);
}

/// The conv event path rejects analog planes on both the word and index
/// entry points, with the same error.
#[test]
fn event_kernels_reject_analog_planes_on_both_paths() {
    let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
    let analog = SpikePlane::from_tensor(&Tensor::from_fn(&[1, 4, 4], |i| i as f32 * 0.3));
    assert!(conv.forward_spikes(&analog).is_err());
    assert!(conv.forward_spikes_indexed(&analog).is_err());
    let fc = Linear::new(16, 2).unwrap();
    let flat = SpikePlane::from_tensor(&Tensor::from_fn(&[16], |i| i as f32 * 0.3));
    assert!(fc.forward_spikes(&flat).is_err());
    assert!(fc.forward_spikes_indexed(&flat).is_err());
}
