//! 2-D convolution layer (the synaptic weights of a spiking CONV layer).

use crate::error::SnnError;
use crate::quant::{fake_quantize, Precision};
use crate::spike::SpikePlane;
use crate::tensor::{add_assign_lanes, matmul_to_with, Im2Col, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Floor of the sparse/dense crossover density returned by
/// [`Conv2d::sparse_crossover`]: below this input density the event-driven
/// path wins for every layer geometry.
pub const SPARSE_DENSITY_CROSSOVER: f64 = 0.2;

/// Reusable scratch for [`Conv2d::forward_plane_into`]: the im2col and
/// packed-matmul-panel buffers of the dense fallback plus the gather list and
/// accumulator of the event-driven path. One instance lives in the network's
/// `RunState` and is shared by every conv layer of a run.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    cols: Im2Col,
    panel: Vec<f32>,
    taps: Vec<(u32, u32)>,
    acc: Vec<f32>,
}

impl ConvScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ConvScratch::default()
    }

    /// The im2col lowering buffer of the dense path.
    pub fn im2col(&mut self) -> &mut Im2Col {
        &mut self.cols
    }
}

/// A 2-D convolution with square kernels, symmetric zero padding and a bias
/// per output channel.
///
/// The weight tensor has shape `[out_channels, in_channels, k, k]` and the
/// forward pass produces the *membrane input current* for each output neuron;
/// thresholding and spiking are performed by the LIF population that follows
/// the layer.
///
/// # Example
///
/// ```
/// use snn_core::layers::Conv2d;
/// use snn_core::tensor::Tensor;
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let conv = Conv2d::new(3, 8, 3, 1, 1)?;
/// let input = Tensor::zeros(&[3, 16, 16]);
/// let out = conv.forward(&input)?;
/// assert_eq!(out.shape(), &[8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Tensor,
    bias: Tensor,
    /// Lazily built `[in_c * k², out_c]` transposed filter bank consumed by
    /// the event-driven forward, so each call no longer re-transposes the
    /// weights. Derived data: every weight mutation path clears it
    /// ([`Conv2d::invalidate_cache`]), it is excluded from equality, and it
    /// is not serialized (a deserialized layer starts cold).
    wt: OnceLock<Vec<f32>>,
}

/// Equality is over the layer's semantic state (geometry + parameters); the
/// derived transposed-weight cache is ignored, so a cold and a warmed-up copy
/// of the same layer compare equal.
impl PartialEq for Conv2d {
    fn eq(&self, other: &Self) -> bool {
        self.in_channels == other.in_channels
            && self.out_channels == other.out_channels
            && self.kernel == other.kernel
            && self.stride == other.stride
            && self.padding == other.padding
            && self.weight == other.weight
            && self.bias == other.bias
    }
}

// Manual (rather than derived) impls so the cache field stays out of the
// serialized form — the on-disk layout is identical to the pre-cache derive.
impl Serialize for Conv2d {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("in_channels".to_string(), self.in_channels.to_value()),
            ("out_channels".to_string(), self.out_channels.to_value()),
            ("kernel".to_string(), self.kernel.to_value()),
            ("stride".to_string(), self.stride.to_value()),
            ("padding".to_string(), self.padding.to_value()),
            ("weight".to_string(), self.weight.to_value()),
            ("bias".to_string(), self.bias.to_value()),
        ])
    }
}

impl Deserialize for Conv2d {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = value
            .as_obj()
            .ok_or_else(|| serde::DeError::new("expected object for Conv2d"))?;
        Ok(Conv2d {
            in_channels: serde::__field(obj, "in_channels", "Conv2d")?,
            out_channels: serde::__field(obj, "out_channels", "Conv2d")?,
            kernel: serde::__field(obj, "kernel", "Conv2d")?,
            stride: serde::__field(obj, "stride", "Conv2d")?,
            padding: serde::__field(obj, "padding", "Conv2d")?,
            weight: serde::__field(obj, "weight", "Conv2d")?,
            bias: serde::__field(obj, "bias", "Conv2d")?,
            wt: OnceLock::new(),
        })
    }
}

impl Conv2d {
    /// Creates a convolution with zero-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, SnnError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(SnnError::config(
                "channels",
                "channel counts must be positive",
            ));
        }
        if kernel == 0 {
            return Err(SnnError::config("kernel", "kernel size must be positive"));
        }
        if stride == 0 {
            return Err(SnnError::config("stride", "stride must be positive"));
        }
        Ok(Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias: Tensor::zeros(&[out_channels]),
            wt: OnceLock::new(),
        })
    }

    /// Creates a convolution with Kaiming-uniform initialised weights, the
    /// initialisation the training substrate uses.
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::new`].
    pub fn with_kaiming_init(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, SnnError> {
        let mut conv = Conv2d::new(in_channels, out_channels, kernel, stride, padding)?;
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (6.0 / fan_in).sqrt();
        conv.weight = Tensor::from_fn(conv.weight.shape(), |_| rng.gen_range(-bound..bound));
        conv.bias = Tensor::from_fn(&[out_channels], |_| rng.gen_range(-0.01..0.01));
        Ok(conv)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (output feature maps).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Number of filter coefficients per output channel (`F` in Eq. 3:
    /// `in_channels * k * k`, e.g. 9 per input channel for 3×3 filters).
    pub fn coefficients_per_output(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Weight tensor of shape `[out_channels, in_channels, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight tensor. Invalidates the transposed-weight cache: the
    /// caller may mutate any coefficient through the returned reference.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        self.invalidate_cache();
        &mut self.weight
    }

    /// Clears the lazily built transposed filter bank. Every path that can
    /// change `weight` must call this so the event-driven forward never reads
    /// stale coefficients (optimizer steps mutate weights between batches).
    fn invalidate_cache(&mut self) {
        self.wt.take();
    }

    /// The `[in_c * k², out_c]` transposed filter bank `Wᵀ`, built on first
    /// use and cached until a weight mutation.
    ///
    /// Two hot paths consume it: the event-driven forward
    /// ([`Conv2d::forward_spikes`]) gathers its rows per spike tap, and the
    /// BPTT input-gradient kernel (`snn-train`'s `conv2d_input_grad_into`)
    /// uses it as the pre-transposed left operand of `Wᵀ · grad_out`, so
    /// neither re-transposes the weights per call. Training warms it once
    /// per batch in `Bptt::prepare` (weights only change at optimizer steps,
    /// which invalidate the cache through [`Conv2d::weight_mut`]).
    pub fn transposed_weight(&self) -> &[f32] {
        self.wt.get_or_init(|| {
            let ck2 = self.coefficients_per_output();
            let oc_n = self.out_channels;
            let mut wt = vec![0.0_f32; ck2 * oc_n];
            for (oc, wrow) in self.weight.as_slice().chunks_exact(ck2).enumerate() {
                for (p, &wv) in wrow.iter().enumerate() {
                    wt[p * oc_n + oc] = wv;
                }
            }
            wt
        })
    }

    /// Bias vector of shape `[out_channels]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Replaces the weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the shape differs from
    /// `[out_channels, in_channels, k, k]`.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<(), SnnError> {
        let expected = [
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ];
        if weight.shape() != expected {
            return Err(SnnError::shape(
                &expected,
                weight.shape(),
                "Conv2d::set_weight",
            ));
        }
        self.invalidate_cache();
        self.weight = weight;
        Ok(())
    }

    /// Replaces the bias.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the shape differs from
    /// `[out_channels]`.
    pub fn set_bias(&mut self, bias: Tensor) -> Result<(), SnnError> {
        if bias.shape() != [self.out_channels] {
            return Err(SnnError::shape(
                &[self.out_channels],
                bias.shape(),
                "Conv2d::set_bias",
            ));
        }
        self.bias = bias;
        Ok(())
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Output shape `[out_channels, out_h, out_w]` for an input of shape
    /// `[in_channels, h, w]`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the input is not 3-D with the
    /// expected channel count, or [`SnnError::InvalidConfig`] if the kernel
    /// does not fit.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<[usize; 3], SnnError> {
        if input_shape.len() != 3 || input_shape[0] != self.in_channels {
            return Err(SnnError::shape(
                &[self.in_channels, 0, 0],
                input_shape,
                "Conv2d::output_shape",
            ));
        }
        let h = input_shape[1] + 2 * self.padding;
        let w = input_shape[2] + 2 * self.padding;
        if self.kernel > h || self.kernel > w {
            return Err(SnnError::config(
                "kernel",
                "kernel larger than padded input",
            ));
        }
        Ok([
            self.out_channels,
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ])
    }

    /// Computes the output membrane currents for one input frame of shape
    /// `[in_channels, h, w]`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] for a wrongly-shaped input.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, SnnError> {
        let mut scratch = ConvScratch::new();
        self.forward_with_scratch(input, &mut scratch)
    }

    /// Like [`Conv2d::forward`] but lowers the input into a caller-provided
    /// [`ConvScratch`] (its im2col buffer and packed matmul panel), so
    /// repeated inferences (sessions, batches) avoid the dominant per-call
    /// allocations. Produces bit-identical results to [`Conv2d::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::forward`].
    pub fn forward_with_scratch(
        &self,
        input: &Tensor,
        scratch: &mut ConvScratch,
    ) -> Result<Tensor, SnnError> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, scratch, &mut out)?;
        Ok(out)
    }

    /// Fully allocation-free dense forward: lowers into the caller's
    /// [`ConvScratch`] and writes the output currents into `out`
    /// (reshaped/reused in place). Bit-identical to [`Conv2d::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::forward`].
    pub fn forward_into(
        &self,
        input: &Tensor,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> Result<(), SnnError> {
        input.im2col_into(
            (self.kernel, self.kernel),
            self.stride,
            self.padding,
            &mut scratch.cols,
        )?;
        let out_shape = self.output_shape(input.shape())?;
        let k = self.coefficients_per_output();
        out.reset_to(&out_shape, 0.0);
        matmul_to_with(
            self.weight.as_slice(),
            &scratch.cols.data,
            self.out_channels,
            k,
            scratch.cols.cols,
            out.as_mut_slice(),
            &mut scratch.panel,
        );
        self.add_bias(out_shape[1] * out_shape[2], out.as_mut_slice());
        Ok(())
    }

    /// Event-driven forward over a binary spike frame: instead of lowering
    /// the (mostly zero) input through im2col, gathers the filter taps of the
    /// active inputs only. A spike at input `(c, y, x)` contributes the
    /// weight column `w[:, c, ky, kx]` unscaled — binary activations need no
    /// multiplies. Bit-identical to the dense path on the same input: per
    /// output neuron, contributions accumulate in the same ascending
    /// weight-row order the matmul uses.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the plane is not binary, plus
    /// the usual shape errors.
    pub fn forward_spikes(&self, plane: &SpikePlane) -> Result<Tensor, SnnError> {
        let mut scratch = ConvScratch::new();
        let mut out = Tensor::zeros(&[0]);
        self.forward_spikes_with(plane, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Density-dispatching forward used by the inference loop: takes the
    /// event path when the frame is binary and sparser than
    /// [`SPARSE_DENSITY_CROSSOVER`], and the dense im2col path otherwise
    /// (e.g. for analog direct-coded input frames). Both paths produce
    /// bit-identical output currents.
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::forward`].
    pub fn forward_plane_into(
        &self,
        plane: &SpikePlane,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> Result<(), SnnError> {
        if plane.is_binary() && plane.density() < self.sparse_crossover() {
            self.forward_spikes_with(plane, scratch, out)
        } else {
            self.forward_into(plane.dense(), scratch, out)
        }
    }

    /// Lowers one input frame into this layer's im2col column matrix,
    /// dispatching by the same density-crossover logic the forward uses:
    /// binary frames below [`Conv2d::sparse_crossover`] take the event-driven
    /// gather scatter ([`SpikePlane::im2col_into`]), everything else the dense
    /// scan ([`Tensor::im2col_into`]). Both paths fill the **identical**
    /// matrix, so consumers (the BPTT weight-gradient matmul) are bit-exact
    /// regardless of the dispatch decision.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::im2col`].
    pub fn lower_plane_into(&self, plane: &SpikePlane, cols: &mut Im2Col) -> Result<(), SnnError> {
        if plane.is_binary() && plane.density() < self.sparse_crossover() {
            plane.im2col_into((self.kernel, self.kernel), self.stride, self.padding, cols)
        } else {
            plane
                .dense()
                .im2col_into((self.kernel, self.kernel), self.stride, self.padding, cols)
        }
    }

    /// Input density below which the event-driven path
    /// ([`Conv2d::forward_spikes`]) beats the dense im2col + matmul lowering
    /// for this layer's geometry.
    ///
    /// In vector-op terms the work ratio of the two paths is roughly the
    /// input density, but the sparse path's fixed per-call costs (weight
    /// transpose, accumulator transpose, tap building) weigh more at small
    /// `out_channels`, where one tap's contiguous weight-row add spans less
    /// than a vector register. Calibrated against the `sparse_conv`
    /// micro-bench in `benches/batch_inference.rs`, which measured the
    /// crossover at ≈0.30 for 8 output channels, ≈0.55 for 16 and >0.70 at
    /// paper scale (112); clamped to `[SPARSE_DENSITY_CROSSOVER, 0.75]`.
    pub fn sparse_crossover(&self) -> f64 {
        (0.8 - 4.0 / self.out_channels as f64).clamp(SPARSE_DENSITY_CROSSOVER, 0.75)
    }

    /// Enumerates the `(weight-row offset, output cell)` taps of every spike
    /// in a binary plane — the event-level description of this layer's
    /// receptive-field geometry — into `taps`, returning the output shape.
    ///
    /// This is the production **word-scan** kernel: spikes come from
    /// trailing-zeros iteration over the plane's `u64` mask words
    /// ([`SpikePlane::iter_active`]), which visits the identical ascending
    /// index sequence as the retained index-list walk
    /// ([`Conv2d::gather_taps_indexed`]). Events are scanned in ascending
    /// index order and taps in ascending `(ky, kx)` order, so for every fixed
    /// weight row the output cells ascend, and for every fixed output cell
    /// the weight rows ascend — the dense matmul's exact accumulation order
    /// in both directions. The event-driven forward consumes the taps grouped
    /// by cell and the event-aware BPTT weight gradient grouped by weight
    /// row; the shared ordering is what keeps both bitwise equal to their
    /// dense counterparts.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for an analog plane, plus the
    /// usual shape errors.
    pub fn gather_taps(
        &self,
        plane: &SpikePlane,
        taps: &mut Vec<(u32, u32)>,
    ) -> Result<[usize; 3], SnnError> {
        let out_shape = self.validate_event_input(plane)?;
        self.gather_taps_from(plane.shape(), &out_shape, plane.iter_active(), taps);
        Ok(out_shape)
    }

    /// The retained index-list tap gather — [`Conv2d::gather_taps`] driven by
    /// the plane's ascending `u32` active list instead of its mask words.
    /// Kept as the differential oracle for the word-scan kernel: both walk
    /// the identical event sequence, so their tap lists (and therefore the
    /// forwards and gradients built from them) are equal — asserted by the
    /// `spike_words` harness.
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::gather_taps`].
    pub fn gather_taps_indexed(
        &self,
        plane: &SpikePlane,
        taps: &mut Vec<(u32, u32)>,
    ) -> Result<[usize; 3], SnnError> {
        let out_shape = self.validate_event_input(plane)?;
        let events = plane.active().iter().map(|&i| i as usize);
        self.gather_taps_from(plane.shape(), &out_shape, events, taps);
        Ok(out_shape)
    }

    /// Shared binary-plane validation of the event-path entry points.
    fn validate_event_input(&self, plane: &SpikePlane) -> Result<[usize; 3], SnnError> {
        let out_shape = self.output_shape(plane.shape())?;
        if !plane.is_binary() {
            return Err(SnnError::config(
                "input",
                "Conv2d::gather_taps requires a binary spike plane",
            ));
        }
        Ok(out_shape)
    }

    /// Tap enumeration shared by the word-scan and index-list gathers; the
    /// two entry points differ only in the event iterator they pass.
    fn gather_taps_from(
        &self,
        in_shape: &[usize],
        out_shape: &[usize; 3],
        events: impl Iterator<Item = usize>,
        taps: &mut Vec<(u32, u32)>,
    ) {
        let (h, w) = (in_shape[1], in_shape[2]);
        let (oh, ow) = (out_shape[1], out_shape[2]);
        let k = self.kernel;
        let kk = k * k;
        taps.clear();
        // `for_each` routes through the iterator's `fold`, letting the word
        // scan run its internal word loop instead of per-item `next` calls.
        events.for_each(|flat| {
            let ci = flat / (h * w);
            let rem = flat % (h * w);
            let iy = rem / w;
            let ix = rem % w;
            let wbase = ci * kk;
            for ky in 0..k {
                // Output row receiving this input through kernel row `ky`.
                let y = iy as isize + self.padding as isize - ky as isize;
                if y < 0 {
                    break; // y only decreases as ky grows
                }
                let y = y as usize;
                if !y.is_multiple_of(self.stride) || y / self.stride >= oh {
                    continue;
                }
                let oy = y / self.stride;
                for kx in 0..k {
                    let x = ix as isize + self.padding as isize - kx as isize;
                    if x < 0 {
                        break;
                    }
                    let x = x as usize;
                    if !x.is_multiple_of(self.stride) || x / self.stride >= ow {
                        continue;
                    }
                    let ox = x / self.stride;
                    taps.push(((wbase + ky * k + kx) as u32, (oy * ow + ox) as u32));
                }
            }
        });
    }

    /// The event-driven kernel behind [`Conv2d::forward_spikes`], with
    /// caller-provided scratch and output buffer.
    fn forward_spikes_with(
        &self,
        plane: &SpikePlane,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> Result<(), SnnError> {
        // Pass 1: enumerate the (weight-row, output-cell) taps of every
        // spike, by word-scan over the plane's mask words.
        let out_shape = self.gather_taps(plane, &mut scratch.taps)?;
        self.accumulate_taps(&out_shape, scratch, out);
        Ok(())
    }

    /// The retained index-list event forward: identical to
    /// [`Conv2d::forward_spikes`] except the taps are gathered from the
    /// plane's ascending `u32` active list ([`Conv2d::gather_taps_indexed`])
    /// instead of its mask words. The differential oracle the `spike_words`
    /// harness holds the word-scan path against, and the baseline the
    /// `sparse_word_scan` bench arm measures the word path's speedup over.
    ///
    /// # Errors
    ///
    /// Same as [`Conv2d::forward_spikes`].
    pub fn forward_spikes_indexed(&self, plane: &SpikePlane) -> Result<Tensor, SnnError> {
        let mut scratch = ConvScratch::new();
        let mut out = Tensor::zeros(&[0]);
        let out_shape = self.gather_taps_indexed(plane, &mut scratch.taps)?;
        self.accumulate_taps(&out_shape, &mut scratch, &mut out);
        Ok(out)
    }

    /// Passes 2 and 3 of the event forward, shared by the word-scan and
    /// index-list tap gathers: accumulate the gathered taps, transpose back,
    /// add the bias.
    fn accumulate_taps(&self, out_shape: &[usize; 3], scratch: &mut ConvScratch, out: &mut Tensor) {
        let (oh, ow) = (out_shape[1], out_shape[2]);
        let cell_count = oh * ow;
        let taps = &scratch.taps;
        // Pass 2: accumulate in a transposed `[cell][out_channel]` layout so
        // each tap is ONE contiguous vector add of a transposed weight row
        // across all output channels, instead of `out_channels` scattered
        // scalar read-modify-writes. (Both a per-channel scalar streaming
        // loop and a counting-sort-by-cell variant were benchmarked and
        // lost.) Per output neuron the contributions still arrive in
        // ascending weight-row order — for every channel simultaneously — so
        // the sums stay bitwise equal to the dense path. The transposed
        // filter bank is cached on the layer and only rebuilt after a weight
        // mutation.
        let oc_n = self.out_channels;
        let wt = self.transposed_weight();
        let acc = &mut scratch.acc;
        acc.clear();
        acc.resize(cell_count * oc_n, 0.0);
        for &(p, cell) in taps.iter() {
            let arow = &mut acc[cell as usize * oc_n..(cell as usize + 1) * oc_n];
            let wrow = &wt[p as usize * oc_n..(p as usize + 1) * oc_n];
            add_assign_lanes(arow, wrow);
        }
        // Pass 3: transpose back to the `[out_channel][cell]` tensor layout.
        out.reset_to(out_shape, 0.0);
        let odat = out.as_mut_slice();
        for oc in 0..oc_n {
            let orow = &mut odat[oc * cell_count..(oc + 1) * cell_count];
            for (cell, o) in orow.iter_mut().enumerate() {
                *o = acc[cell * oc_n + oc];
            }
        }
        self.add_bias(cell_count, odat);
    }

    /// Adds the per-channel bias to an output buffer of `cell_count` cells
    /// per channel — shared tail of the dense and event-driven paths.
    fn add_bias(&self, cell_count: usize, data: &mut [f32]) {
        for oc in 0..self.out_channels {
            let b = self.bias.as_slice()[oc];
            if b != 0.0 {
                for v in &mut data[oc * cell_count..(oc + 1) * cell_count] {
                    *v += b;
                }
            }
        }
    }

    /// Returns a copy of the layer with fake-quantized weights and biases, as
    /// used for post-training evaluation of a quantized model.
    ///
    /// # Errors
    ///
    /// Propagates quantization errors.
    pub fn to_precision(&self, precision: Precision) -> Result<Conv2d, SnnError> {
        let mut out = self.clone();
        out.invalidate_cache();
        out.weight = fake_quantize(&self.weight, precision)?;
        out.bias = fake_quantize(&self.bias, precision)?;
        Ok(out)
    }

    /// On-chip storage in bits needed for the weights and biases at the given
    /// precision, used by the FPGA memory model.
    pub fn storage_bits(&self, precision: Precision) -> u64 {
        (self.weight.len() + self.bias.len()) as u64 * u64::from(precision.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_arguments() {
        assert!(Conv2d::new(0, 8, 3, 1, 1).is_err());
        assert!(Conv2d::new(3, 0, 3, 1, 1).is_err());
        assert!(Conv2d::new(3, 8, 0, 1, 1).is_err());
        assert!(Conv2d::new(3, 8, 3, 0, 1).is_err());
        assert!(Conv2d::new(3, 8, 3, 1, 1).is_ok());
    }

    #[test]
    fn output_shape_same_padding() {
        let conv = Conv2d::new(3, 64, 3, 1, 1).unwrap();
        assert_eq!(conv.output_shape(&[3, 32, 32]).unwrap(), [64, 32, 32]);
        assert!(conv.output_shape(&[4, 32, 32]).is_err());
        assert!(conv.output_shape(&[3, 32]).is_err());
    }

    #[test]
    fn output_shape_with_stride() {
        let conv = Conv2d::new(1, 1, 3, 2, 1).unwrap();
        assert_eq!(conv.output_shape(&[1, 32, 32]).unwrap(), [1, 16, 16]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0).unwrap();
        conv.set_weight(Tensor::ones(&[1, 1, 1, 1])).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| i as f32);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_convolution_value() {
        // Single channel, single output, 3x3 all-ones kernel, no padding:
        // output = sum of the 3x3 neighbourhood.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0).unwrap();
        conv.set_weight(Tensor::ones(&[1, 1, 3, 3])).unwrap();
        let input = Tensor::from_fn(&[1, 3, 3], |i| (i + 1) as f32); // 1..9
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.as_slice()[0], 45.0);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0).unwrap();
        conv.set_weight(Tensor::zeros(&[2, 1, 1, 1])).unwrap();
        conv.set_bias(Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap())
            .unwrap();
        let out = conv.forward(&Tensor::zeros(&[1, 2, 2])).unwrap();
        assert_eq!(&out.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&out.as_slice()[4..], &[-2.0; 4]);
    }

    #[test]
    fn set_weight_and_bias_validate_shapes() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1).unwrap();
        assert!(conv.set_weight(Tensor::zeros(&[3, 2, 3, 3])).is_ok());
        assert!(conv.set_weight(Tensor::zeros(&[2, 3, 3, 3])).is_err());
        assert!(conv.set_bias(Tensor::zeros(&[3])).is_ok());
        assert!(conv.set_bias(Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn kaiming_init_is_bounded_and_nonzero() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::with_kaiming_init(3, 16, 3, 1, 1, &mut rng).unwrap();
        let bound = (6.0_f32 / 27.0).sqrt();
        assert!(conv.weight().as_slice().iter().all(|&w| w.abs() <= bound));
        assert!(conv.weight().count_nonzero() > 0);
    }

    #[test]
    fn num_params_and_coefficients() {
        let conv = Conv2d::new(3, 64, 3, 1, 1).unwrap();
        assert_eq!(conv.num_params(), 64 * 3 * 9 + 64);
        assert_eq!(conv.coefficients_per_output(), 27);
    }

    #[test]
    fn storage_bits_scale_with_precision() {
        let conv = Conv2d::new(3, 8, 3, 1, 1).unwrap();
        let fp32 = conv.storage_bits(Precision::Fp32);
        let int4 = conv.storage_bits(Precision::Int4);
        assert_eq!(fp32, int4 * 8);
    }

    #[test]
    fn to_precision_quantizes_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::with_kaiming_init(2, 4, 3, 1, 1, &mut rng).unwrap();
        let q = conv.to_precision(Precision::Int4).unwrap();
        assert_ne!(q.weight(), conv.weight());
        let same = conv.to_precision(Precision::Fp32).unwrap();
        assert_eq!(same.weight(), conv.weight());
    }

    #[test]
    fn transposed_weight_cache_invalidates_on_every_mutation_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut conv = Conv2d::with_kaiming_init(2, 4, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[2, 6, 6], |i| f32::from(i % 7 == 0));
        let plane = SpikePlane::from_tensor(&input);

        // Warm the cache, then mutate through weight_mut: the event path must
        // see the new coefficients (compared against the dense path, which
        // always reads the weight tensor directly).
        let before = conv.forward_spikes(&plane).unwrap();
        conv.weight_mut().as_mut_slice()[0] += 1.0;
        let after = conv.forward_spikes(&plane).unwrap();
        assert_ne!(before.as_slice(), after.as_slice());
        assert_eq!(
            after.as_slice(),
            conv.forward(&input).unwrap().as_slice(),
            "stale transposed-weight cache after weight_mut"
        );

        // set_weight invalidates too.
        conv.forward_spikes(&plane).unwrap(); // re-warm
        conv.set_weight(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as f32) * 0.01))
            .unwrap();
        assert_eq!(
            conv.forward_spikes(&plane).unwrap().as_slice(),
            conv.forward(&input).unwrap().as_slice(),
            "stale transposed-weight cache after set_weight"
        );

        // to_precision returns a copy whose cache reflects the quantized
        // weights, and leaves the original's cache intact and correct.
        conv.forward_spikes(&plane).unwrap(); // re-warm
        let q = conv.to_precision(Precision::Int4).unwrap();
        assert_eq!(
            q.forward_spikes(&plane).unwrap().as_slice(),
            q.forward(&input).unwrap().as_slice(),
            "stale transposed-weight cache on quantized copy"
        );
        assert_eq!(
            conv.forward_spikes(&plane).unwrap().as_slice(),
            conv.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn equality_and_serialization_ignore_the_weight_cache() {
        let mut rng = StdRng::seed_from_u64(12);
        let conv = Conv2d::with_kaiming_init(1, 3, 3, 1, 1, &mut rng).unwrap();
        let warmed = conv.clone();
        let input = Tensor::from_fn(&[1, 5, 5], |i| f32::from(i % 3 == 0));
        warmed
            .forward_spikes(&SpikePlane::from_tensor(&input))
            .unwrap();
        // A warmed cache does not break equality.
        assert_eq!(conv, warmed);
        // Serialization round-trips the semantic fields only; the restored
        // layer starts cold but computes identically.
        let json = serde_json::to_string(&warmed).unwrap();
        let restored: Conv2d = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, warmed);
        assert_eq!(
            restored.forward(&input).unwrap().as_slice(),
            warmed.forward(&input).unwrap().as_slice()
        );
    }

    #[test]
    fn lower_plane_into_dispatches_both_paths_to_the_same_matrix() {
        let conv = Conv2d::new(2, 4, 3, 1, 1).unwrap();
        // Sparse binary (gather path), dense binary (dense path) and analog
        // (dense path) frames must all reproduce the dense lowering exactly.
        for fill in [0.05_f64, 0.9] {
            let input = Tensor::from_fn(&[2, 6, 6], |i| {
                f32::from(((i * 2654435761) % 1000) as f64 / 1000.0 < fill)
            });
            let plane = SpikePlane::from_tensor(&input);
            let mut cols = Im2Col::default();
            conv.lower_plane_into(&plane, &mut cols).unwrap();
            assert_eq!(cols, input.im2col((3, 3), 1, 1).unwrap());
        }
        let analog = Tensor::from_fn(&[2, 6, 6], |i| (i as f32) * 0.01);
        let mut cols = Im2Col::default();
        conv.lower_plane_into(&SpikePlane::from_tensor(&analog), &mut cols)
            .unwrap();
        assert_eq!(cols, analog.im2col((3, 3), 1, 1).unwrap());
    }

    #[test]
    fn forward_spikes_rejects_analog_planes() {
        let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
        let analog = Tensor::from_vec(vec![0.5; 16], &[1, 4, 4]).unwrap();
        let plane = SpikePlane::from_tensor(&analog);
        assert!(conv.forward_spikes(&plane).is_err());
    }

    #[test]
    fn forward_plane_into_dispatches_both_paths_identically() {
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv2d::with_kaiming_init(2, 4, 3, 1, 1, &mut rng).unwrap();
        // Sparse binary frame (below crossover) and a dense one (above).
        for fill in [0.05_f64, 0.9] {
            let input = Tensor::from_fn(&[2, 6, 6], |i| {
                if ((i * 2654435761) % 1000) as f64 / 1000.0 < fill {
                    1.0
                } else {
                    0.0
                }
            });
            let plane = SpikePlane::from_tensor(&input);
            let mut scratch = ConvScratch::new();
            let mut out = Tensor::zeros(&[0]);
            conv.forward_plane_into(&plane, &mut scratch, &mut out)
                .unwrap();
            let reference = conv.forward(&input).unwrap();
            assert_eq!(out.as_slice(), reference.as_slice());
        }
    }

    proptest! {
        /// The event-driven conv forward is bitwise-equal to the dense
        /// im2col + matmul forward on arbitrary binary inputs, at every
        /// weight precision, including strided/unpadded geometries.
        #[test]
        fn forward_spikes_bitwise_equals_dense(
            seed in 0_u64..1000,
            bits in proptest::collection::vec(any::<bool>(), 2 * 7 * 7),
            stride in 1_usize..3,
            padding in 0_usize..2,
            precision_idx in 0_usize..3,
        ) {
            let precision = [Precision::Fp32, Precision::Int8, Precision::Int4][precision_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let conv = Conv2d::with_kaiming_init(2, 3, 3, stride, padding, &mut rng)
                .unwrap()
                .to_precision(precision)
                .unwrap();
            let input = Tensor::from_fn(&[2, 7, 7], |i| if bits[i] { 1.0 } else { 0.0 });
            let plane = SpikePlane::from_tensor(&input);
            let dense = conv.forward(&input).unwrap();
            let sparse = conv.forward_spikes(&plane).unwrap();
            prop_assert_eq!(sparse.shape(), dense.shape());
            // Bitwise equality, not approximate: both paths must accumulate
            // in the same order.
            for (s, d) in sparse.as_slice().iter().zip(dense.as_slice().iter()) {
                prop_assert_eq!(s.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn binary_input_forward_matches_event_accumulation() {
        // For a binary (spiking) input, the convolution output must equal the
        // sum of the filter taps at the spike locations — the exact operation
        // the sparse core performs event by event.
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::with_kaiming_init(1, 2, 3, 1, 1, &mut rng).unwrap();
        conv.set_bias(Tensor::zeros(&[2])).unwrap();
        let mut input = Tensor::zeros(&[1, 5, 5]);
        input.set(&[0, 1, 2], 1.0).unwrap();
        input.set(&[0, 3, 3], 1.0).unwrap();
        let dense = conv.forward(&input).unwrap();

        // Event-driven accumulation.
        let mut event = Tensor::zeros(&[2, 5, 5]);
        for oc in 0..2 {
            for (sy, sx) in [(1usize, 2usize), (3usize, 3usize)] {
                for ky in 0..3usize {
                    for kx in 0..3usize {
                        // With padding 1: output (oy, ox) receives input (sy, sx)
                        // through tap (ky, kx) when oy = sy + 1 - ky, ox = sx + 1 - kx.
                        let oy = sy as isize + 1 - ky as isize;
                        let ox = sx as isize + 1 - kx as isize;
                        if (0..5).contains(&oy) && (0..5).contains(&ox) {
                            let w = conv.weight().get(&[oc, 0, ky, kx]).unwrap();
                            let cur = event.get(&[oc, oy as usize, ox as usize]).unwrap();
                            event.set(&[oc, oy as usize, ox as usize], cur + w).unwrap();
                        }
                    }
                }
            }
        }
        for (a, b) in dense.as_slice().iter().zip(event.as_slice().iter()) {
            assert!((a - b).abs() < 1e-5, "dense {a} vs event {b}");
        }
    }
}
