//! Fully-connected (FC) layer.

use crate::error::SnnError;
use crate::quant::{fake_quantize, Precision};
use crate::spike::SpikePlane;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer computing `y = W x + b`.
///
/// The weight matrix has shape `[out_features, in_features]`. Like
/// [`crate::layers::Conv2d`], the output is the membrane input current of the
/// LIF population (or the readout accumulator) that follows.
///
/// # Example
///
/// ```
/// use snn_core::layers::Linear;
/// use snn_core::tensor::Tensor;
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let fc = Linear::new(4, 2)?;
/// let out = fc.forward(&Tensor::ones(&[4]))?;
/// assert_eq!(out.shape(), &[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
}

impl Linear {
    /// Creates a zero-initialised layer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize) -> Result<Self, SnnError> {
        if in_features == 0 || out_features == 0 {
            return Err(SnnError::config(
                "features",
                "feature counts must be positive",
            ));
        }
        Ok(Linear {
            in_features,
            out_features,
            weight: Tensor::zeros(&[out_features, in_features]),
            bias: Tensor::zeros(&[out_features]),
        })
    }

    /// Creates a layer with Kaiming-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Same as [`Linear::new`].
    pub fn with_kaiming_init(
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, SnnError> {
        let mut layer = Linear::new(in_features, out_features)?;
        let bound = (6.0 / in_features as f32).sqrt();
        layer.weight = Tensor::from_fn(layer.weight.shape(), |_| rng.gen_range(-bound..bound));
        layer.bias = Tensor::from_fn(&[out_features], |_| rng.gen_range(-0.01..0.01));
        Ok(layer)
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features (neurons).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight matrix of shape `[out_features, in_features]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Replaces the weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] on a shape mismatch.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<(), SnnError> {
        if weight.shape() != [self.out_features, self.in_features] {
            return Err(SnnError::shape(
                &[self.out_features, self.in_features],
                weight.shape(),
                "Linear::set_weight",
            ));
        }
        self.weight = weight;
        Ok(())
    }

    /// Replaces the bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] on a shape mismatch.
    pub fn set_bias(&mut self, bias: Tensor) -> Result<(), SnnError> {
        if bias.shape() != [self.out_features] {
            return Err(SnnError::shape(
                &[self.out_features],
                bias.shape(),
                "Linear::set_bias",
            ));
        }
        self.bias = bias;
        Ok(())
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Computes `W x + b` for an input that flattens to `in_features`
    /// elements (any shape is accepted and flattened).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the element count differs from
    /// `in_features`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, SnnError> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Linear::forward`]: writes into `out`
    /// (reshaped/reused in place). Bit-identical to [`Linear::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`Linear::forward`].
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) -> Result<(), SnnError> {
        if input.len() != self.in_features {
            return Err(SnnError::shape(
                &[self.in_features],
                &[input.len()],
                "Linear::forward",
            ));
        }
        let x = input.as_slice();
        let w = self.weight.as_slice();
        let b = self.bias.as_slice();
        out.reset_to(&[self.out_features], 0.0);
        for (o, out_val) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = b[o];
            for (wi, xi) in row.iter().zip(x.iter()) {
                if *xi != 0.0 {
                    acc += wi * xi;
                }
            }
            *out_val = acc;
        }
        Ok(())
    }

    /// Event-driven forward over a binary spike frame: gathers the weight
    /// columns of the active inputs only — each spike contributes `w[:, i]`
    /// unscaled, no multiplies. The dense path already skips zero inputs
    /// element-by-element in ascending order, so gathering the same indices
    /// in the same order is bitwise-identical while touching `out × active`
    /// weights instead of scanning all `out × in` of them.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the plane is not binary, plus
    /// the usual shape errors.
    pub fn forward_spikes(&self, plane: &SpikePlane) -> Result<Tensor, SnnError> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_spikes_into(plane, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Linear::forward_spikes`]. This is the
    /// production **word-scan** kernel: per output row, the active inputs are
    /// recovered by trailing-zeros iteration over the plane's `u64` mask
    /// words — one word load covers 64 inputs, so the per-row index traffic
    /// drops from `active` u32 loads to `in/64` u64 loads. The bit order
    /// visits the identical ascending sequence as the retained index walk
    /// ([`Linear::forward_spikes_indexed`]), keeping the accumulation
    /// bitwise-equal.
    ///
    /// # Errors
    ///
    /// Same as [`Linear::forward_spikes`].
    pub fn forward_spikes_into(
        &self,
        plane: &SpikePlane,
        out: &mut Tensor,
    ) -> Result<(), SnnError> {
        self.validate_event_input(plane)?;
        let w = self.weight.as_slice();
        let b = self.bias.as_slice();
        let words = plane.as_words();
        out.reset_to(&[self.out_features], 0.0);
        for (o, out_val) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = b[o];
            for (wi, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let i = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    acc += row[i];
                }
            }
            *out_val = acc;
        }
        Ok(())
    }

    /// The retained index-list event forward: identical accumulation to
    /// [`Linear::forward_spikes_into`], driven by the plane's ascending `u32`
    /// active list instead of its mask words. The differential oracle the
    /// `spike_words` harness holds the word-scan path against.
    ///
    /// # Errors
    ///
    /// Same as [`Linear::forward_spikes`].
    pub fn forward_spikes_indexed(&self, plane: &SpikePlane) -> Result<Tensor, SnnError> {
        self.validate_event_input(plane)?;
        let w = self.weight.as_slice();
        let b = self.bias.as_slice();
        let active = plane.active();
        let mut out = Tensor::zeros(&[self.out_features]);
        for (o, out_val) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = b[o];
            for &i in active {
                acc += row[i as usize];
            }
            *out_val = acc;
        }
        Ok(out)
    }

    /// Shared binary-plane validation of the event-path entry points.
    fn validate_event_input(&self, plane: &SpikePlane) -> Result<(), SnnError> {
        if plane.len() != self.in_features {
            return Err(SnnError::shape(
                &[self.in_features],
                &[plane.len()],
                "Linear::forward_spikes",
            ));
        }
        if !plane.is_binary() {
            return Err(SnnError::config(
                "input",
                "Linear::forward_spikes requires a binary spike plane",
            ));
        }
        Ok(())
    }

    /// Dispatching forward used by the inference loop: the event path for
    /// binary frames (a strict subset of the dense work at any density), the
    /// dense path otherwise. Both produce bit-identical output currents.
    ///
    /// # Errors
    ///
    /// Same as [`Linear::forward`].
    pub fn forward_plane_into(&self, plane: &SpikePlane, out: &mut Tensor) -> Result<(), SnnError> {
        if plane.is_binary() {
            self.forward_spikes_into(plane, out)
        } else {
            self.forward_into(plane.dense(), out)
        }
    }

    /// Returns a copy of the layer with fake-quantized weights and biases.
    ///
    /// # Errors
    ///
    /// Propagates quantization errors.
    pub fn to_precision(&self, precision: Precision) -> Result<Linear, SnnError> {
        let mut out = self.clone();
        out.weight = fake_quantize(&self.weight, precision)?;
        out.bias = fake_quantize(&self.bias, precision)?;
        Ok(out)
    }

    /// On-chip storage in bits at the given precision.
    pub fn storage_bits(&self, precision: Precision) -> u64 {
        (self.weight.len() + self.bias.len()) as u64 * u64::from(precision.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_dimensions() {
        assert!(Linear::new(0, 4).is_err());
        assert!(Linear::new(4, 0).is_err());
        assert!(Linear::new(4, 4).is_ok());
    }

    #[test]
    fn forward_computes_wx_plus_b() {
        let mut fc = Linear::new(3, 2).unwrap();
        fc.set_weight(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap())
            .unwrap();
        fc.set_bias(Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap())
            .unwrap();
        let out = fc
            .forward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[6.5, 14.5]);
    }

    #[test]
    fn forward_accepts_any_shape_with_matching_len() {
        let fc = Linear::new(4, 2).unwrap();
        assert!(fc.forward(&Tensor::zeros(&[2, 2])).is_ok());
        assert!(fc.forward(&Tensor::zeros(&[4])).is_ok());
        assert!(fc.forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn sparse_input_skips_zero_contributions() {
        // Functional check: zero inputs contribute nothing.
        let mut fc = Linear::new(3, 1).unwrap();
        fc.set_weight(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap())
            .unwrap();
        let out = fc
            .forward(&Tensor::from_vec(vec![0.0, 1.0, 0.0], &[3]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[20.0]);
    }

    #[test]
    fn set_weight_and_bias_validate_shapes() {
        let mut fc = Linear::new(3, 2).unwrap();
        assert!(fc.set_weight(Tensor::zeros(&[2, 3])).is_ok());
        assert!(fc.set_weight(Tensor::zeros(&[3, 2])).is_err());
        assert!(fc.set_bias(Tensor::zeros(&[2])).is_ok());
        assert!(fc.set_bias(Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn kaiming_init_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let fc = Linear::with_kaiming_init(100, 10, &mut rng).unwrap();
        let bound = (6.0_f32 / 100.0).sqrt();
        assert!(fc.weight().as_slice().iter().all(|&w| w.abs() <= bound));
        assert_eq!(fc.num_params(), 1010);
    }

    #[test]
    fn forward_spikes_rejects_analog_planes() {
        let fc = Linear::new(4, 2).unwrap();
        let analog = Tensor::from_vec(vec![0.0, 0.5, 0.0, 1.0], &[4]).unwrap();
        assert!(fc
            .forward_spikes(&SpikePlane::from_tensor(&analog))
            .is_err());
        // The dispatching entry point falls back to the dense path instead.
        let mut out = Tensor::zeros(&[0]);
        fc.forward_plane_into(&SpikePlane::from_tensor(&analog), &mut out)
            .unwrap();
        assert_eq!(out.as_slice(), fc.forward(&analog).unwrap().as_slice());
    }

    proptest! {
        /// The event-driven linear forward is bitwise-equal to the dense
        /// forward on arbitrary binary inputs, at every weight precision.
        #[test]
        fn forward_spikes_bitwise_equals_dense(
            seed in 0_u64..1000,
            bits in proptest::collection::vec(any::<bool>(), 24),
            precision_idx in 0_usize..3,
        ) {
            let precision = [Precision::Fp32, Precision::Int8, Precision::Int4][precision_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let fc = Linear::with_kaiming_init(24, 7, &mut rng)
                .unwrap()
                .to_precision(precision)
                .unwrap();
            let input = Tensor::from_fn(&[24], |i| if bits[i] { 1.0 } else { 0.0 });
            let plane = SpikePlane::from_tensor(&input);
            let dense = fc.forward(&input).unwrap();
            let sparse = fc.forward_spikes(&plane).unwrap();
            for (s, d) in sparse.as_slice().iter().zip(dense.as_slice().iter()) {
                prop_assert_eq!(s.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn quantized_copy_and_storage() {
        let mut rng = StdRng::seed_from_u64(4);
        let fc = Linear::with_kaiming_init(16, 8, &mut rng).unwrap();
        let q = fc.to_precision(Precision::Int4).unwrap();
        assert_ne!(q.weight(), fc.weight());
        assert_eq!(
            fc.storage_bits(Precision::Int4) * 8,
            fc.storage_bits(Precision::Fp32)
        );
    }
}
