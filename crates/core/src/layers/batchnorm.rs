//! Per-channel batch normalisation.
//!
//! The paper uses layer-wise batch normalisation during training to prevent
//! overfitting (Sec. V-A). At inference time the normalisation is folded into
//! the preceding convolution so the hardware never sees a separate BN layer;
//! [`BatchNorm2d::fold_into_conv`] performs that folding.

use crate::error::SnnError;
use crate::layers::Conv2d;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Batch normalisation over the channel dimension of `[C, H, W]` tensors.
///
/// Keeps running estimates of the per-channel mean and variance which are
/// updated by the training loop and used verbatim during evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    epsilon: f32,
    momentum: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with identity initialisation
    /// (`gamma = 1`, `beta = 0`, zero mean, unit variance).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `channels == 0`.
    pub fn new(channels: usize) -> Result<Self, SnnError> {
        if channels == 0 {
            return Err(SnnError::config(
                "channels",
                "channel count must be positive",
            ));
        }
        Ok(BatchNorm2d {
            channels,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            epsilon: 1e-5,
            momentum: 0.1,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Learnable scale per channel.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// Mutable learnable scale per channel.
    pub fn gamma_mut(&mut self) -> &mut Tensor {
        &mut self.gamma
    }

    /// Learnable shift per channel.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Mutable learnable shift per channel.
    pub fn beta_mut(&mut self) -> &mut Tensor {
        &mut self.beta
    }

    /// Running mean per channel.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance per channel.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Numerical stabiliser added to the variance.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Normalises a `[C, H, W]` tensor with the running statistics
    /// (evaluation-mode forward).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the channel count differs.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, SnnError> {
        let mut out = input.clone();
        self.forward_inplace(&mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`BatchNorm2d::forward`]: normalises the
    /// tensor in place. Bit-identical to [`BatchNorm2d::forward`].
    ///
    /// # Errors
    ///
    /// Same as [`BatchNorm2d::forward`].
    pub fn forward_inplace(&self, input: &mut Tensor) -> Result<(), SnnError> {
        if input.ndim() != 3 || input.shape()[0] != self.channels {
            return Err(SnnError::shape(
                &[self.channels, 0, 0],
                input.shape(),
                "BatchNorm2d::forward",
            ));
        }
        let plane = input.shape()[1] * input.shape()[2];
        let data = input.as_mut_slice();
        for c in 0..self.channels {
            let mean = self.running_mean.as_slice()[c];
            let var = self.running_var.as_slice()[c];
            let gamma = self.gamma.as_slice()[c];
            let beta = self.beta.as_slice()[c];
            let inv_std = 1.0 / (var + self.epsilon).sqrt();
            for v in &mut data[c * plane..(c + 1) * plane] {
                *v = (*v - mean) * inv_std * gamma + beta;
            }
        }
        Ok(())
    }

    /// Normalises with *batch* statistics computed over the `[H, W]` plane of
    /// the given samples and updates the running statistics. Used by the
    /// training loop; returns the normalised tensors.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if any sample has the wrong shape
    /// or [`SnnError::InvalidConfig`] if `samples` is empty.
    pub fn forward_training(&mut self, samples: &[Tensor]) -> Result<Vec<Tensor>, SnnError> {
        if samples.is_empty() {
            return Err(SnnError::config(
                "samples",
                "training batch must be non-empty",
            ));
        }
        for s in samples {
            if s.ndim() != 3 || s.shape()[0] != self.channels {
                return Err(SnnError::shape(
                    &[self.channels, 0, 0],
                    s.shape(),
                    "BatchNorm2d::forward_training",
                ));
            }
        }
        let plane = samples[0].shape()[1] * samples[0].shape()[2];
        let count = (samples.len() * plane) as f32;
        let mut mean = vec![0.0_f32; self.channels];
        let mut var = vec![0.0_f32; self.channels];
        for s in samples {
            let data = s.as_slice();
            for c in 0..self.channels {
                for &v in &data[c * plane..(c + 1) * plane] {
                    mean[c] += v;
                }
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for s in samples {
            let data = s.as_slice();
            for c in 0..self.channels {
                for &v in &data[c * plane..(c + 1) * plane] {
                    let d = v - mean[c];
                    var[c] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count;
        }
        // Update running statistics.
        for c in 0..self.channels {
            let rm = self.running_mean.as_slice()[c];
            let rv = self.running_var.as_slice()[c];
            self.running_mean.as_mut_slice()[c] =
                (1.0 - self.momentum) * rm + self.momentum * mean[c];
            self.running_var.as_mut_slice()[c] =
                (1.0 - self.momentum) * rv + self.momentum * var[c];
        }
        // Normalise with the batch statistics.
        let mut out = Vec::with_capacity(samples.len());
        for s in samples {
            let mut t = s.clone();
            let data = t.as_mut_slice();
            for c in 0..self.channels {
                let gamma = self.gamma.as_slice()[c];
                let beta = self.beta.as_slice()[c];
                let inv_std = 1.0 / (var[c] + self.epsilon).sqrt();
                for v in &mut data[c * plane..(c + 1) * plane] {
                    *v = (*v - mean[c]) * inv_std * gamma + beta;
                }
            }
            out.push(t);
        }
        Ok(out)
    }

    /// Folds this batch-norm layer into the convolution that precedes it,
    /// producing an equivalent convolution for inference:
    /// `w' = w * gamma / sqrt(var + eps)`,
    /// `b' = (b - mean) * gamma / sqrt(var + eps) + beta`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the convolution's output channel
    /// count does not match.
    pub fn fold_into_conv(&self, conv: &Conv2d) -> Result<Conv2d, SnnError> {
        if conv.out_channels() != self.channels {
            return Err(SnnError::shape(
                &[self.channels],
                &[conv.out_channels()],
                "BatchNorm2d::fold_into_conv",
            ));
        }
        let mut folded = conv.clone();
        let per_out = conv.in_channels() * conv.kernel() * conv.kernel();
        let mut weight = conv.weight().clone();
        let mut bias = conv.bias().clone();
        {
            let w = weight.as_mut_slice();
            let b = bias.as_mut_slice();
            for c in 0..self.channels {
                let scale = self.gamma.as_slice()[c]
                    / (self.running_var.as_slice()[c] + self.epsilon).sqrt();
                for v in &mut w[c * per_out..(c + 1) * per_out] {
                    *v *= scale;
                }
                b[c] = (b[c] - self.running_mean.as_slice()[c]) * scale + self.beta.as_slice()[c];
            }
        }
        folded.set_weight(weight)?;
        folded.set_bias(bias)?;
        Ok(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_channels() {
        assert!(BatchNorm2d::new(0).is_err());
        assert!(BatchNorm2d::new(4).is_ok());
    }

    #[test]
    fn identity_bn_is_near_identity() {
        let bn = BatchNorm2d::new(2).unwrap();
        let input = Tensor::from_fn(&[2, 2, 2], |i| i as f32 * 0.1);
        let out = bn.forward(&input).unwrap();
        for (a, b) in out.as_slice().iter().zip(input.as_slice().iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let bn = BatchNorm2d::new(2).unwrap();
        assert!(bn.forward(&Tensor::zeros(&[3, 2, 2])).is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn training_forward_normalises_batch() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let samples = vec![Tensor::full(&[1, 2, 2], 5.0), Tensor::full(&[1, 2, 2], 7.0)];
        let out = bn.forward_training(&samples).unwrap();
        // Mean of outputs should be ~0.
        let mean: f32 = out.iter().map(Tensor::sum).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5);
        // Running statistics should have moved towards the batch statistics.
        assert!(bn.running_mean().as_slice()[0] > 0.0);
    }

    #[test]
    fn training_forward_rejects_empty_batch() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        assert!(bn.forward_training(&[]).is_err());
    }

    #[test]
    fn folding_matches_separate_application() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let conv = Conv2d::with_kaiming_init(2, 3, 3, 1, 1, &mut rng).unwrap();
        let mut bn = BatchNorm2d::new(3).unwrap();
        // Give BN non-trivial statistics.
        bn.gamma_mut()
            .as_mut_slice()
            .copy_from_slice(&[1.2, 0.8, 1.0]);
        bn.beta_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.1, -0.2, 0.05]);
        let input = Tensor::from_fn(&[2, 6, 6], |i| ((i as f32) * 0.13).sin());
        let separate = bn.forward(&conv.forward(&input).unwrap()).unwrap();
        let folded = bn.fold_into_conv(&conv).unwrap();
        let fused = folded.forward(&input).unwrap();
        for (a, b) in separate.as_slice().iter().zip(fused.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4, "separate {a} vs fused {b}");
        }
    }

    #[test]
    fn folding_rejects_channel_mismatch() {
        let conv = Conv2d::new(2, 3, 3, 1, 1).unwrap();
        let bn = BatchNorm2d::new(4).unwrap();
        assert!(bn.fold_into_conv(&conv).is_err());
    }
}
