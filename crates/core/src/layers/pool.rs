//! Spike max-pooling.
//!
//! The paper performs max-pooling directly on binary spike maps: on a binary
//! feature map, max-pooling degenerates to an OR gate slid over the `N × N`
//! window (Sec. IV-B), which preserves SNN temporal dynamics better than
//! pooling membrane potentials. This module implements that operation on
//! `f32` spike tensors (values 0.0/1.0) and on bit-packed
//! [`crate::spike::SpikeTrain`]s.

use crate::error::SnnError;
use crate::spike::{SpikePlane, SpikeTrain};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Non-overlapping `N × N` max-pooling over spike maps.
///
/// # Example
///
/// ```
/// use snn_core::layers::SpikeMaxPool2d;
/// use snn_core::tensor::Tensor;
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let pool = SpikeMaxPool2d::new(2)?;
/// let mut input = Tensor::zeros(&[1, 4, 4]);
/// input.set(&[0, 0, 1], 1.0)?;
/// let out = pool.forward(&input)?;
/// assert_eq!(out.shape(), &[1, 2, 2]);
/// assert_eq!(out.get(&[0, 0, 0])?, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpikeMaxPool2d {
    size: usize,
}

impl SpikeMaxPool2d {
    /// Creates a pooling layer with window `size × size` and stride `size`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `size < 2`.
    pub fn new(size: usize) -> Result<Self, SnnError> {
        if size < 2 {
            return Err(SnnError::config(
                "size",
                "pooling window must be at least 2",
            ));
        }
        Ok(SpikeMaxPool2d { size })
    }

    /// Pooling window / stride.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Output shape for a `[c, h, w]` input (floor division, as in the paper's
    /// MP2 layers on even feature maps).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] for non-3-D inputs and
    /// [`SnnError::InvalidConfig`] if the input is smaller than the window.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<[usize; 3], SnnError> {
        if input_shape.len() != 3 {
            return Err(SnnError::shape(
                &[0, 0, 0],
                input_shape,
                "SpikeMaxPool2d::output_shape",
            ));
        }
        let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
        if h < self.size || w < self.size {
            return Err(SnnError::config(
                "size",
                format!("input {h}x{w} smaller than pooling window {}", self.size),
            ));
        }
        Ok([c, h / self.size, w / self.size])
    }

    /// Applies OR-pooling to a spike tensor of shape `[c, h, w]` whose values
    /// are interpreted as spikes when strictly positive.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`SpikeMaxPool2d::output_shape`].
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, SnnError> {
        let out_shape = self.output_shape(input.shape())?;
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (oh, ow) = (out_shape[1], out_shape[2]);
        let mut out = Tensor::zeros(&out_shape);
        let data = input.as_slice();
        let out_data = out.as_mut_slice();
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut fired = false;
                    'window: for ky in 0..self.size {
                        for kx in 0..self.size {
                            let iy = oy * self.size + ky;
                            let ix = ox * self.size + kx;
                            if iy < h && ix < w && data[ci * h * w + iy * w + ix] > 0.0 {
                                fired = true;
                                break 'window;
                            }
                        }
                    }
                    if fired {
                        out_data[ci * oh * ow + oy * ow + ox] = 1.0;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Event-driven OR-pooling between [`SpikePlane`]s: input spikes are
    /// word-scanned from the plane's `u64` mask words, and each spike marks
    /// its output window cell's mask bit directly (`active × O(1)` work
    /// instead of scanning every window); the output's active list is then
    /// rebuilt by word-scanning the (4×-smaller) output mask. Falls back to
    /// the dense window scan for analog planes, where "non-zero" and "spike"
    /// differ. Output values are bit-identical to [`SpikeMaxPool2d::forward`]
    /// and to the retained index-list walk
    /// ([`SpikeMaxPool2d::forward_plane_indexed`]).
    ///
    /// # Errors
    ///
    /// Same as [`SpikeMaxPool2d::forward`].
    pub fn forward_plane(&self, input: &SpikePlane, out: &mut SpikePlane) -> Result<(), SnnError> {
        let out_shape = self.output_shape(input.shape())?;
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (out_shape[1], out_shape[2]);
        out.begin(&out_shape);
        if input.is_binary() {
            for flat in input.iter_active() {
                let c = flat / (h * w);
                let rem = flat % (h * w);
                let (oy, ox) = (rem / w / self.size, rem % w / self.size);
                // Floor division drops partial windows at the bottom/right
                // edge, exactly like the dense scan.
                if oy < oh && ox < ow {
                    out.mark(c * oh * ow + oy * ow + ox);
                }
            }
        } else {
            let pooled = self.forward(input.dense())?;
            for (i, &v) in pooled.as_slice().iter().enumerate() {
                if v > 0.0 {
                    out.mark(i);
                }
            }
        }
        out.rebuild_active();
        Ok(())
    }

    /// The retained index-list event pooling: identical to
    /// [`SpikeMaxPool2d::forward_plane`] but scatters from the plane's
    /// ascending `u32` active list instead of its mask words. OR-pooling is
    /// order-insensitive, so the two paths trivially mark the same output
    /// set; the `spike_words` harness still asserts full plane equality
    /// (dense backing, active list, mask words) between them.
    ///
    /// # Errors
    ///
    /// Same as [`SpikeMaxPool2d::forward`].
    pub fn forward_plane_indexed(
        &self,
        input: &SpikePlane,
        out: &mut SpikePlane,
    ) -> Result<(), SnnError> {
        let out_shape = self.output_shape(input.shape())?;
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (out_shape[1], out_shape[2]);
        out.begin(&out_shape);
        if input.is_binary() {
            for &flat in input.active() {
                let flat = flat as usize;
                let c = flat / (h * w);
                let rem = flat % (h * w);
                let (oy, ox) = (rem / w / self.size, rem % w / self.size);
                if oy < oh && ox < ow {
                    out.mark(c * oh * ow + oy * ow + ox);
                }
            }
        } else {
            let pooled = self.forward(input.dense())?;
            for (i, &v) in pooled.as_slice().iter().enumerate() {
                if v > 0.0 {
                    out.mark(i);
                }
            }
        }
        out.rebuild_active();
        Ok(())
    }

    /// Applies OR-pooling to one bit-packed spike train describing an
    /// `height × width` feature map, returning the pooled train.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the train length does not equal
    /// `height * width`.
    pub fn forward_train(
        &self,
        train: &SpikeTrain,
        height: usize,
        width: usize,
    ) -> Result<SpikeTrain, SnnError> {
        if train.len() != height * width {
            return Err(SnnError::shape(
                &[height * width],
                &[train.len()],
                "SpikeMaxPool2d::forward_train",
            ));
        }
        let oh = height / self.size;
        let ow = width / self.size;
        let mut out = SpikeTrain::new(oh * ow);
        for idx in train.iter_ones() {
            let y = idx / width;
            let x = idx % width;
            let oy = y / self.size;
            let ox = x / self.size;
            if oy < oh && ox < ow {
                out.set(oy * ow + ox, true);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_degenerate_window() {
        assert!(SpikeMaxPool2d::new(1).is_err());
        assert!(SpikeMaxPool2d::new(0).is_err());
        assert!(SpikeMaxPool2d::new(2).is_ok());
    }

    #[test]
    fn output_shape_halves_dimensions() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        assert_eq!(pool.output_shape(&[64, 32, 32]).unwrap(), [64, 16, 16]);
        assert!(pool.output_shape(&[64, 1, 1]).is_err());
        assert!(pool.output_shape(&[64, 32]).is_err());
    }

    #[test]
    fn single_spike_survives_pooling() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let mut input = Tensor::zeros(&[1, 4, 4]);
        input.set(&[0, 3, 2], 1.0).unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.get(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(out.count_nonzero(), 1);
    }

    #[test]
    fn all_spikes_pool_to_all_ones() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let out = pool.forward(&Tensor::ones(&[2, 4, 4])).unwrap();
        assert_eq!(out.count_nonzero(), 2 * 2 * 2);
    }

    #[test]
    fn output_is_binary_even_for_analog_input() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let input = Tensor::full(&[1, 2, 2], 0.3);
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    proptest! {
        /// Event-driven plane pooling is bitwise-equal to the dense window
        /// scan, including odd feature maps with dropped partial windows.
        #[test]
        fn plane_pooling_bitwise_equals_dense(
            bits in proptest::collection::vec(any::<bool>(), 2 * 5 * 5),
            size in 2_usize..4,
        ) {
            let pool = SpikeMaxPool2d::new(size).unwrap();
            let input = Tensor::from_fn(&[2, 5, 5], |i| if bits[i] { 1.0 } else { 0.0 });
            let dense = pool.forward(&input).unwrap();
            let mut out = SpikePlane::new();
            pool.forward_plane(&SpikePlane::from_tensor(&input), &mut out).unwrap();
            prop_assert_eq!(out.dense().as_slice(), dense.as_slice());
            prop_assert_eq!(out.count_active(), dense.count_nonzero());
            prop_assert!(out.is_binary());
        }
    }

    #[test]
    fn plane_pooling_analog_fallback_matches_dense() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i as f32 - 8.0) * 0.1);
        let dense = pool.forward(&input).unwrap();
        let mut out = SpikePlane::new();
        pool.forward_plane(&SpikePlane::from_tensor(&input), &mut out)
            .unwrap();
        assert_eq!(out.dense().as_slice(), dense.as_slice());
    }

    #[test]
    fn train_pooling_matches_tensor_pooling() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let mut input = Tensor::zeros(&[1, 6, 6]);
        for &(y, x) in &[(0usize, 0usize), (1, 1), (3, 4), (5, 5)] {
            input.set(&[0, y, x], 1.0).unwrap();
        }
        let tensor_out = pool.forward(&input).unwrap();
        let train = SpikeTrain::from_activations(&input.as_slice()[..36]);
        let train_out = pool.forward_train(&train, 6, 6).unwrap();
        assert_eq!(train_out.to_activations(), tensor_out.as_slice());
    }

    #[test]
    fn forward_train_validates_length() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let train = SpikeTrain::new(10);
        assert!(pool.forward_train(&train, 4, 4).is_err());
    }

    proptest! {
        /// Pooling never creates spikes out of silence and never loses every
        /// spike when the input has at least one inside the pooled region.
        #[test]
        fn pooling_preserves_spike_presence(
            bits in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let pool = SpikeMaxPool2d::new(2).unwrap();
            let input = Tensor::from_vec(
                bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
                &[1, 8, 8],
            ).unwrap();
            let out = pool.forward(&input).unwrap();
            let in_count = input.count_nonzero();
            let out_count = out.count_nonzero();
            prop_assert!(out_count <= in_count);
            prop_assert_eq!(out_count == 0, in_count == 0);
            // Output spike count never exceeds the number of pooling windows.
            prop_assert!(out_count <= 16);
        }
    }
}
