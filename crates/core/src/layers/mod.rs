//! Network layers: spiking convolution, fully-connected, spike max-pooling
//! and batch normalisation.
//!
//! Each weight layer computes the synaptic input current for the LIF
//! population that follows it ([`crate::neuron::LifPopulation`]); the layers
//! themselves are stateless between timesteps. The spike max-pooling layer
//! operates directly on binary spike maps (an OR over the pooling window),
//! exactly as the sparse core implements it in hardware.

mod batchnorm;
mod conv;
mod linear;
mod pool;

pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, ConvScratch, SPARSE_DENSITY_CROSSOVER};
pub use linear::Linear;
pub use pool::SpikeMaxPool2d;
