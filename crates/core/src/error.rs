//! Error type shared by every fallible operation in the SNN substrate.

use std::fmt;

/// Error returned by fallible operations in [`crate`].
///
/// The variants carry enough context to diagnose shape mismatches and invalid
/// configurations without needing a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// Two tensors (or a tensor and a layer) disagree about their shapes.
    ShapeMismatch {
        /// Shape that was expected by the consumer.
        expected: Vec<usize>,
        /// Shape that was actually provided.
        actual: Vec<usize>,
        /// Human-readable description of where the mismatch happened.
        context: String,
    },
    /// A configuration value is outside its legal range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: String,
        /// Explanation of the constraint that was violated.
        message: String,
    },
    /// An index was out of bounds for the addressed structure.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the indexed structure.
        len: usize,
        /// Human-readable description of what was being indexed.
        context: String,
    },
    /// A numerical operation produced a non-finite value.
    NumericalError {
        /// Description of the operation that failed.
        context: String,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::ShapeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
            ),
            SnnError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            SnnError::IndexOutOfBounds {
                index,
                len,
                context,
            } => write!(
                f,
                "index {index} out of bounds for {context} of length {len}"
            ),
            SnnError::NumericalError { context } => {
                write!(f, "numerical error: {context}")
            }
        }
    }
}

impl std::error::Error for SnnError {}

impl SnnError {
    /// Convenience constructor for [`SnnError::ShapeMismatch`].
    pub fn shape(expected: &[usize], actual: &[usize], context: impl Into<String>) -> Self {
        SnnError::ShapeMismatch {
            expected: expected.to_vec(),
            actual: actual.to_vec(),
            context: context.into(),
        }
    }

    /// Convenience constructor for [`SnnError::InvalidConfig`].
    pub fn config(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        SnnError::InvalidConfig {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SnnError::IndexOutOfBounds`].
    pub fn index(index: usize, len: usize, context: impl Into<String>) -> Self {
        SnnError::IndexOutOfBounds {
            index,
            len,
            context: context.into(),
        }
    }

    /// Convenience constructor for [`SnnError::NumericalError`].
    pub fn numerical(context: impl Into<String>) -> Self {
        SnnError::NumericalError {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_both_shapes() {
        let err = SnnError::shape(&[1, 2], &[3, 4], "conv forward");
        let text = err.to_string();
        assert!(text.contains("[1, 2]"));
        assert!(text.contains("[3, 4]"));
        assert!(text.contains("conv forward"));
    }

    #[test]
    fn display_invalid_config_mentions_parameter() {
        let err = SnnError::config("beta", "must be in [0, 1]");
        assert!(err.to_string().contains("beta"));
        assert!(err.to_string().contains("[0, 1]"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = SnnError::index(10, 5, "spike train");
        let text = err.to_string();
        assert!(text.contains("10"));
        assert!(text.contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }

    #[test]
    fn error_implements_std_error() {
        let err = SnnError::numerical("NaN in membrane potential");
        let as_dyn: &dyn std::error::Error = &err;
        assert!(as_dyn.to_string().contains("NaN"));
    }
}
