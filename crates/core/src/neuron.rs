//! Leaky integrate-and-fire (LIF) neuron model.
//!
//! Implements Eq. 1 and Eq. 2 of the paper:
//!
//! ```text
//! u_j[t+1] = beta * u_j[t] + sum_i w_ij * s_i[t] - s_j[t] * theta     (1)
//! s_j[t]   = 1 if u_j[t] > theta else 0                               (2)
//! ```
//!
//! The membrane potential decays by `beta` each timestep, integrates the
//! weighted input current, and is reduced by `theta` whenever the neuron fired
//! on the previous step (soft reset / "subtract threshold"). This is exactly
//! the behaviour the paper's Activ units implement in both the dense and
//! sparse cores, so the accelerator simulator reuses this module to stay
//! bit-true with the functional model.

use crate::error::SnnError;
use crate::spike::SpikePlane;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the LIF neuron (shared by a whole layer).
///
/// The paper tunes `beta = 0.15` and `theta = 0.5` for every layer of the
/// VGG9 models; [`LifParams::paper_default`] returns exactly that setting.
///
/// # Example
///
/// ```
/// use snn_core::neuron::LifParams;
///
/// let params = LifParams::paper_default();
/// assert_eq!(params.beta, 0.15);
/// assert_eq!(params.threshold, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Membrane decay factor `beta` in `[0, 1]`. Higher values retain more of
    /// the previous potential (less leak), which the paper notes leads to
    /// sparser firing.
    pub beta: f32,
    /// Firing threshold `theta`. A lower threshold increases firing frequency.
    pub threshold: f32,
}

impl LifParams {
    /// Creates a new parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `beta` is outside `[0, 1]` or the
    /// threshold is not strictly positive and finite.
    pub fn new(beta: f32, threshold: f32) -> Result<Self, SnnError> {
        if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
            return Err(SnnError::config("beta", "decay factor must be in [0, 1]"));
        }
        if threshold <= 0.0 || !threshold.is_finite() {
            return Err(SnnError::config(
                "threshold",
                "firing threshold must be positive and finite",
            ));
        }
        Ok(LifParams { beta, threshold })
    }

    /// The hyper-parameters used throughout the paper's evaluation
    /// (`beta = 0.15`, `theta = 0.5`).
    pub fn paper_default() -> Self {
        LifParams {
            beta: 0.15,
            threshold: 0.5,
        }
    }
}

impl Default for LifParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A population of LIF neurons sharing one [`LifParams`], e.g. all neurons of
/// one layer's output feature maps.
///
/// The population keeps its membrane potentials between timesteps; call
/// [`LifPopulation::reset`] between input samples.
///
/// # Example
///
/// ```
/// use snn_core::neuron::{LifParams, LifPopulation};
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let mut pop = LifPopulation::new(4, LifParams::new(0.5, 1.0)?);
/// // Drive every neuron with a constant current of 0.6: first step charges
/// // to 0.6 (below threshold), second step charges to 0.9, third to 1.05 > 1.
/// let input = vec![0.6; 4];
/// assert_eq!(pop.step(&input)?.iter().filter(|&&s| s).count(), 0);
/// assert_eq!(pop.step(&input)?.iter().filter(|&&s| s).count(), 0);
/// assert_eq!(pop.step(&input)?.iter().filter(|&&s| s).count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifPopulation {
    params: LifParams,
    membrane: Vec<f32>,
    fired_last: Vec<bool>,
    spikes_emitted: u64,
    steps: u64,
}

impl LifPopulation {
    /// Creates a population of `size` neurons at rest.
    pub fn new(size: usize, params: LifParams) -> Self {
        LifPopulation {
            params,
            membrane: vec![0.0; size],
            fired_last: vec![false; size],
            spikes_emitted: 0,
            steps: 0,
        }
    }

    /// Number of neurons in the population.
    pub fn len(&self) -> usize {
        self.membrane.len()
    }

    /// Returns `true` if the population has no neurons.
    pub fn is_empty(&self) -> bool {
        self.membrane.is_empty()
    }

    /// The shared neuron hyper-parameters.
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Current membrane potentials.
    pub fn membrane(&self) -> &[f32] {
        &self.membrane
    }

    /// Total number of spikes emitted since construction or the last
    /// [`LifPopulation::reset_statistics`] call.
    pub fn spikes_emitted(&self) -> u64 {
        self.spikes_emitted
    }

    /// Number of timesteps simulated since construction or the last
    /// [`LifPopulation::reset_statistics`] call.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets membrane potentials and firing history (but not statistics).
    pub fn reset(&mut self) {
        self.membrane.iter_mut().for_each(|u| *u = 0.0);
        self.fired_last.iter_mut().for_each(|f| *f = false);
    }

    /// Clears the spike/step counters.
    pub fn reset_statistics(&mut self) {
        self.spikes_emitted = 0;
        self.steps = 0;
    }

    /// Advances the population by one timestep given the summed synaptic
    /// input current for each neuron, returning the spike mask.
    ///
    /// Implements Eq. 1 followed by Eq. 2: the soft reset subtracts `theta`
    /// from the membrane of neurons that fired on the *previous* step, then
    /// adds the decayed potential and the new input, and finally thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if `input` length differs from the
    /// population size, or [`SnnError::NumericalError`] if an input is
    /// non-finite.
    pub fn step(&mut self, input: &[f32]) -> Result<Vec<bool>, SnnError> {
        self.validate_input(input)?;
        let mut spikes = vec![false; self.membrane.len()];
        self.step_core(input, |i, fired| spikes[i] = fired);
        Ok(spikes)
    }

    /// The single membrane-update loop behind every `step*` variant: applies
    /// Eq. 1 / Eq. 2 to each neuron in index order, reporting each firing
    /// decision through `emit`, and returns the spike count. Keeping one
    /// implementation guarantees the event-driven and dense paths stay
    /// bit-identical. Callers must run [`LifPopulation::validate_input`]
    /// first.
    fn step_core(&mut self, input: &[f32], mut emit: impl FnMut(usize, bool)) -> usize {
        let LifParams { beta, threshold } = self.params;
        let mut count = 0usize;
        for (i, (&x, u)) in input.iter().zip(self.membrane.iter_mut()).enumerate() {
            let reset = if self.fired_last[i] { threshold } else { 0.0 };
            let next = beta * *u + x - reset;
            let fired = next > threshold;
            *u = next;
            // Each neuron's reset only reads its own history, so the
            // history can be updated in the same pass.
            self.fired_last[i] = fired;
            count += usize::from(fired);
            emit(i, fired);
        }
        self.spikes_emitted += count as u64;
        self.steps += 1;
        count
    }

    /// Rejects wrongly-sized and non-finite inputs up front, leaving every
    /// piece of state (membranes, history, caller output buffers) untouched
    /// on failure — and keeping the update loop free of early exits so it
    /// vectorises. Every public `step*` entry point calls this before
    /// touching its output buffer.
    fn validate_input(&self, input: &[f32]) -> Result<(), SnnError> {
        if input.len() != self.membrane.len() {
            return Err(SnnError::shape(
                &[self.membrane.len()],
                &[input.len()],
                "LifPopulation::step input",
            ));
        }
        if let Some((i, x)) = input.iter().enumerate().find(|(_, x)| !x.is_finite()) {
            return Err(SnnError::numerical(format!(
                "non-finite input current {x} at neuron {i}"
            )));
        }
        Ok(())
    }

    /// Like [`LifPopulation::step`] but takes and returns [`Tensor`]s of any
    /// shape whose element count matches the population size. The returned
    /// tensor contains 0.0/1.0 spike values in the same shape as the input.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`LifPopulation::step`].
    pub fn step_tensor(&mut self, input: &Tensor) -> Result<Tensor, SnnError> {
        let mut out = Tensor::zeros(&[0]);
        self.step_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`LifPopulation::step_tensor`]: writes the
    /// 0.0/1.0 spike frame directly into `out` (reshaped/reused in place) and
    /// returns the number of spikes emitted this step, so callers need no
    /// separate `count_nonzero` rescan.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`LifPopulation::step`].
    pub fn step_into(&mut self, input: &Tensor, out: &mut Tensor) -> Result<usize, SnnError> {
        self.validate_input(input.as_slice())?;
        out.reset_to(input.shape(), 0.0);
        let data = out.as_mut_slice();
        Ok(self.step_core(input.as_slice(), |i, fired| {
            data[i] = f32::from(fired);
        }))
    }

    /// Event-emitting variant of [`LifPopulation::step_into`]: writes the
    /// spike frame into `out`'s dense backing *and* its ascending
    /// active-index list in the same pass, producing the [`SpikePlane`] the
    /// event-driven layer forwards consume. Returns the spike count.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`LifPopulation::step`].
    pub fn step_plane(&mut self, input: &Tensor, out: &mut SpikePlane) -> Result<usize, SnnError> {
        self.validate_input(input.as_slice())?;
        out.begin(input.shape());
        Ok(self.step_core(input.as_slice(), |i, fired| {
            if fired {
                out.push(i);
            }
        }))
    }
}

/// Stateless LIF membrane update used where the caller manages the membrane
/// storage itself (e.g. the sparse-core BRAM model). Returns the new membrane
/// potential and whether the neuron fires, given the previous potential, the
/// accumulated input and whether the neuron fired on the previous step.
pub fn lif_update(params: LifParams, membrane: f32, input: f32, fired_last: bool) -> (f32, bool) {
    let reset = if fired_last { params.threshold } else { 0.0 };
    let next = params.beta * membrane + input - reset;
    (next, next > params.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn params_validate_ranges() {
        assert!(LifParams::new(0.15, 0.5).is_ok());
        assert!(LifParams::new(-0.1, 0.5).is_err());
        assert!(LifParams::new(1.1, 0.5).is_err());
        assert!(LifParams::new(0.5, 0.0).is_err());
        assert!(LifParams::new(0.5, -1.0).is_err());
        assert!(LifParams::new(f32::NAN, 0.5).is_err());
    }

    #[test]
    fn paper_default_matches_section_v() {
        let p = LifParams::paper_default();
        assert_eq!(p.beta, 0.15);
        assert_eq!(p.threshold, 0.5);
        assert_eq!(LifParams::default(), p);
    }

    #[test]
    fn neuron_fires_when_threshold_exceeded() {
        let mut pop = LifPopulation::new(1, LifParams::new(0.0, 0.5).unwrap());
        let spikes = pop.step(&[0.6]).unwrap();
        assert!(spikes[0]);
        assert_eq!(pop.spikes_emitted(), 1);
    }

    #[test]
    fn neuron_does_not_fire_below_threshold() {
        let mut pop = LifPopulation::new(1, LifParams::new(0.0, 0.5).unwrap());
        let spikes = pop.step(&[0.4]).unwrap();
        assert!(!spikes[0]);
    }

    #[test]
    fn soft_reset_subtracts_threshold_after_firing() {
        // beta = 1 (no leak), threshold = 1.0.
        let mut pop = LifPopulation::new(1, LifParams::new(1.0, 1.0).unwrap());
        // Step 1: u = 1.5 > 1.0 -> fires.
        assert!(pop.step(&[1.5]).unwrap()[0]);
        // Step 2: u = 1.5 (carried) + 0 - 1.0 (reset) = 0.5 -> no fire.
        assert!(!pop.step(&[0.0]).unwrap()[0]);
        assert!((pop.membrane()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn decay_reduces_membrane() {
        let mut pop = LifPopulation::new(1, LifParams::new(0.5, 10.0).unwrap());
        pop.step(&[1.0]).unwrap();
        assert!((pop.membrane()[0] - 1.0).abs() < 1e-6);
        pop.step(&[0.0]).unwrap();
        assert!((pop.membrane()[0] - 0.5).abs() < 1e-6);
        pop.step(&[0.0]).unwrap();
        assert!((pop.membrane()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn step_rejects_wrong_length() {
        let mut pop = LifPopulation::new(3, LifParams::paper_default());
        assert!(pop.step(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn step_rejects_non_finite_input() {
        let mut pop = LifPopulation::new(1, LifParams::paper_default());
        assert!(pop.step(&[f32::NAN]).is_err());
        assert!(pop.step(&[f32::INFINITY]).is_err());
    }

    #[test]
    fn reset_clears_membrane_and_history() {
        let mut pop = LifPopulation::new(2, LifParams::new(1.0, 0.5).unwrap());
        pop.step(&[1.0, 1.0]).unwrap();
        pop.reset();
        assert!(pop.membrane().iter().all(|&u| u == 0.0));
        // Statistics survive reset.
        assert_eq!(pop.spikes_emitted(), 2);
        pop.reset_statistics();
        assert_eq!(pop.spikes_emitted(), 0);
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    fn step_tensor_preserves_shape() {
        let mut pop = LifPopulation::new(4, LifParams::new(0.0, 0.5).unwrap());
        let input = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]).unwrap();
        let out = pop.step_tensor(&input).unwrap();
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn step_into_matches_step_tensor_and_counts_spikes() {
        let params = LifParams::new(0.4, 0.5).unwrap();
        let mut a = LifPopulation::new(6, params);
        let mut b = LifPopulation::new(6, params);
        let mut out = Tensor::zeros(&[0]);
        for t in 0..12 {
            let input = Tensor::from_fn(&[2, 3], |i| ((i + t) as f32 * 0.37).sin().abs());
            let reference = a.step_tensor(&input).unwrap();
            let count = b.step_into(&input, &mut out).unwrap();
            assert_eq!(out.as_slice(), reference.as_slice(), "step {t}");
            assert_eq!(out.shape(), reference.shape());
            assert_eq!(count, reference.count_nonzero());
            assert_eq!(a.membrane(), b.membrane());
        }
        assert_eq!(a.spikes_emitted(), b.spikes_emitted());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn step_into_leaves_output_untouched_on_invalid_input() {
        let mut pop = LifPopulation::new(3, LifParams::paper_default());
        let mut out = Tensor::from_vec(vec![1.0, 0.0, 1.0], &[3]).unwrap();
        let before = out.clone();
        assert!(pop.step_into(&Tensor::zeros(&[2]), &mut out).is_err());
        assert!(pop
            .step_into(
                &Tensor::from_vec(vec![0.0, f32::NAN, 0.0], &[3]).unwrap(),
                &mut out
            )
            .is_err());
        assert_eq!(out, before, "error paths must not clobber the out buffer");
        assert!(pop.membrane().iter().all(|&u| u == 0.0));
    }

    #[test]
    fn step_plane_emits_active_indices_in_order() {
        let params = LifParams::new(0.2, 0.5).unwrap();
        let mut a = LifPopulation::new(8, params);
        let mut b = LifPopulation::new(8, params);
        let mut plane = SpikePlane::new();
        for t in 0..10 {
            let input = Tensor::from_fn(&[8], |i| ((i * 3 + t) as f32 * 0.29).cos().abs());
            let reference = a.step_tensor(&input).unwrap();
            let count = b.step_plane(&input, &mut plane).unwrap();
            assert_eq!(plane.dense().as_slice(), reference.as_slice());
            assert_eq!(count, plane.count_active());
            assert!(plane.is_binary());
            let expected: Vec<u32> = reference
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0.0)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(plane.active(), expected.as_slice());
        }
    }

    #[test]
    fn stateless_update_matches_population() {
        let params = LifParams::new(0.3, 0.7).unwrap();
        let mut pop = LifPopulation::new(1, params);
        let mut u = 0.0;
        let mut fired = false;
        for t in 0..20 {
            let x = (t as f32 * 0.37).sin().abs();
            let spikes = pop.step(&[x]).unwrap();
            let (nu, nf) = lif_update(params, u, x, fired);
            u = nu;
            fired = nf;
            assert_eq!(spikes[0], nf, "divergence at step {t}");
            assert!((pop.membrane()[0] - u).abs() < 1e-6);
        }
    }

    proptest! {
        /// Higher thresholds never produce more spikes for the same input
        /// drive (monotonicity claimed implicitly in Sec. II-A).
        #[test]
        fn higher_threshold_never_fires_more(
            inputs in proptest::collection::vec(0.0_f32..2.0, 1..50),
            theta_low in 0.1_f32..1.0,
            delta in 0.0_f32..2.0,
        ) {
            let theta_high = theta_low + delta;
            let mut low = LifPopulation::new(1, LifParams::new(0.5, theta_low).unwrap());
            let mut high = LifPopulation::new(1, LifParams::new(0.5, theta_high).unwrap());
            for &x in &inputs {
                low.step(&[x]).unwrap();
                high.step(&[x]).unwrap();
            }
            prop_assert!(high.spikes_emitted() <= low.spikes_emitted());
        }

        /// Membrane potential stays finite for bounded inputs.
        #[test]
        fn membrane_stays_finite(
            inputs in proptest::collection::vec(-5.0_f32..5.0, 1..100),
            beta in 0.0_f32..1.0,
        ) {
            let mut pop = LifPopulation::new(1, LifParams::new(beta, 0.5).unwrap());
            for &x in &inputs {
                pop.step(&[x]).unwrap();
                prop_assert!(pop.membrane()[0].is_finite());
            }
        }

        /// With zero input the neuron never fires and the membrane decays
        /// towards zero.
        #[test]
        fn zero_input_never_fires(steps in 1_usize..100, beta in 0.0_f32..1.0) {
            let mut pop = LifPopulation::new(3, LifParams::new(beta, 0.5).unwrap());
            for _ in 0..steps {
                let spikes = pop.step(&[0.0, 0.0, 0.0]).unwrap();
                prop_assert!(spikes.iter().all(|&s| !s));
            }
            prop_assert_eq!(pop.spikes_emitted(), 0);
        }
    }
}
