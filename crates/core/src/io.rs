//! Model checkpointing.
//!
//! The training substrate needs a way to persist a trained (possibly
//! QAT-trained) network and reload it for the hardware experiments, mirroring
//! how the authors export snnTorch checkpoints into their RTL flow. Networks
//! serialise to a single JSON document containing the layer stack, the LIF
//! hyper-parameters and all weights.

use crate::error::SnnError;
use crate::network::SnnNetwork;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Container persisted to disk: the network plus free-form metadata
/// (dataset name, precision, training configuration, accuracy, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, bumped on breaking layout changes.
    pub version: u32,
    /// Free-form metadata recorded by the producer.
    pub metadata: std::collections::BTreeMap<String, String>,
    /// The network itself.
    pub network: SnnNetwork,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Wraps a network into a checkpoint.
    pub fn new(network: SnnNetwork) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            metadata: std::collections::BTreeMap::new(),
            network,
        }
    }

    /// Adds a metadata entry (builder style).
    #[must_use]
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Serialises the checkpoint to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::NumericalError`] if serialisation fails (which can
    /// only happen for non-finite floats with some serde configurations).
    pub fn to_json(&self) -> Result<String, SnnError> {
        serde_json::to_string(self)
            .map_err(|e| SnnError::numerical(format!("checkpoint serialisation failed: {e}")))
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the document is malformed or has
    /// an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, SnnError> {
        let checkpoint: Checkpoint = serde_json::from_str(json)
            .map_err(|e| SnnError::config("checkpoint", format!("malformed checkpoint: {e}")))?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(SnnError::config(
                "version",
                format!(
                    "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                    checkpoint.version
                ),
            ));
        }
        Ok(checkpoint)
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnnError> {
        let json = self.to_json()?;
        fs::write(path.as_ref(), json).map_err(|e| {
            SnnError::config(
                "path",
                format!(
                    "failed to write checkpoint {}: {e}",
                    path.as_ref().display()
                ),
            )
        })
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on I/O failure or malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnnError> {
        let json = fs::read_to_string(path.as_ref()).map_err(|e| {
            SnnError::config(
                "path",
                format!("failed to read checkpoint {}: {e}", path.as_ref().display()),
            )
        })?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::network::{vgg9, Vgg9Config};
    use crate::tensor::Tensor;

    fn sample_network() -> SnnNetwork {
        vgg9(&Vgg9Config::cifar10_small()).unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_network_behaviour() {
        let original = sample_network();
        let checkpoint = Checkpoint::new(original.clone())
            .with_metadata("dataset", "cifar10-small")
            .with_metadata("precision", "fp32");
        let json = checkpoint.to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap();
        assert_eq!(restored.metadata["dataset"], "cifar10-small");

        // The restored network must produce identical inference results.
        let restored_net = restored.network;
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.03).sin().abs());
        let a = original.run(&image, &Encoder::direct(2)).unwrap();
        let b = restored_net.run(&image, &Encoder::direct(2)).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.record.total_spikes(), b.record.total_spikes());
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_version() {
        assert!(Checkpoint::from_json("not json at all").is_err());
        let mut checkpoint = Checkpoint::new(sample_network());
        checkpoint.version = 999;
        let json = serde_json::to_string(&checkpoint).unwrap();
        assert!(Checkpoint::from_json(&json).is_err());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let checkpoint = Checkpoint::new(sample_network()).with_metadata("k", "v");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.metadata["k"], "v");
        assert_eq!(loaded.version, CHECKPOINT_VERSION);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_an_error() {
        assert!(Checkpoint::load("/nonexistent/path/model.json").is_err());
    }
}
