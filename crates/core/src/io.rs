//! Model checkpointing.
//!
//! The training substrate needs a way to persist a trained (possibly
//! QAT-trained) network and reload it for the hardware experiments, mirroring
//! how the authors export snnTorch checkpoints into their RTL flow. Networks
//! serialise to a single JSON document containing the layer stack, the LIF
//! hyper-parameters and all weights.
//!
//! # Crash safety
//!
//! [`Checkpoint::save`] is atomic and durable: the document is written to a
//! temporary file in the target directory, fsynced, and renamed over the
//! destination (with a best-effort directory fsync), so a crash or power
//! loss mid-save leaves either the complete old checkpoint or the complete
//! new one — never a torn file. The on-disk format appends a fixed-size
//! trailer (`magic | payload length | CRC-64`) over the JSON payload;
//! [`Checkpoint::load`] verifies it and returns a typed [`SnnError`] — never
//! a panic — for truncated, bit-flipped or garbage files. The trailer is
//! mandatory for `load` (a bare-JSON file cannot be told apart from a
//! trailer'd file truncated at exactly the trailer boundary); documents
//! from other sources load explicitly via [`Checkpoint::from_json`].

use crate::error::SnnError;
use crate::network::SnnNetwork;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Container persisted to disk: the network plus free-form metadata
/// (dataset name, precision, training configuration, accuracy, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, bumped on breaking layout changes.
    pub version: u32,
    /// Free-form metadata recorded by the producer.
    pub metadata: std::collections::BTreeMap<String, String>,
    /// The network itself.
    pub network: SnnNetwork,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Wraps a network into a checkpoint.
    pub fn new(network: SnnNetwork) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            metadata: std::collections::BTreeMap::new(),
            network,
        }
    }

    /// Adds a metadata entry (builder style).
    #[must_use]
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Serialises the checkpoint to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::NumericalError`] if serialisation fails (which can
    /// only happen for non-finite floats with some serde configurations).
    pub fn to_json(&self) -> Result<String, SnnError> {
        serde_json::to_string(self)
            .map_err(|e| SnnError::numerical(format!("checkpoint serialisation failed: {e}")))
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the document is malformed or has
    /// an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, SnnError> {
        let checkpoint: Checkpoint = serde_json::from_str(json)
            .map_err(|e| SnnError::config("checkpoint", format!("malformed checkpoint: {e}")))?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(SnnError::config(
                "version",
                format!(
                    "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                    checkpoint.version
                ),
            ));
        }
        Ok(checkpoint)
    }

    /// Writes the checkpoint to a file, atomically and durably.
    ///
    /// The bytes go to a temporary sibling file first, are fsynced, and the
    /// temp file is renamed over `path` (followed by a best-effort fsync of
    /// the directory). A crash at any point leaves either the previous
    /// checkpoint or the new one intact — never a partially-written file.
    /// The payload is framed with the [`TRAILER_MAGIC`] trailer carrying its
    /// length and CRC-64, which [`Checkpoint::load`] verifies.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnnError> {
        save_payload(path.as_ref(), self.to_json()?.as_bytes())
    }

    /// Reads and verifies a checkpoint from a file.
    ///
    /// Verification order: the [`TRAILER_MAGIC`] trailer is located and its
    /// declared payload length checked against the actual bytes (catching
    /// truncation), then the payload's CRC-64 is recomputed (catching any
    /// single-bit flip and virtually all larger corruptions), and only then
    /// is the JSON parsed. The trailer is mandatory: accepting bare JSON
    /// here would make a file truncated at exactly the trailer boundary
    /// undetectable. Plain JSON documents load via
    /// [`Checkpoint::from_json`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] — never panics — on I/O failure,
    /// truncation, checksum mismatch, malformed JSON or an unsupported
    /// version.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnnError> {
        let bytes = load_payload(path.as_ref())?;
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| SnnError::config("checkpoint", "checkpoint payload is not valid UTF-8"))?;
        Self::from_json(json)
    }
}

/// Writes `payload` to `path` atomically and durably, framed with the
/// [`TRAILER_MAGIC`] integrity trailer (payload length + CRC-64) that
/// [`load_payload`] verifies.
///
/// This is the shared crash-safe persistence primitive: the bytes go to a
/// unique temporary sibling file first, are fsynced, and the temp file is
/// renamed over `path` (followed by a best-effort fsync of the directory), so
/// a crash or power loss at any point leaves either the previous file or the
/// complete new one — never a torn write. [`Checkpoint::save`] (model
/// checkpoints) and the training-state checkpoints of `snn-train` both ride
/// this path; the payload encoding is the caller's business.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] on I/O failure.
pub fn save_payload(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), SnnError> {
    let path = path.as_ref();
    let mut bytes = Vec::with_capacity(payload.len() + TRAILER_LEN);
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&TRAILER_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc64(payload).to_le_bytes());
    let io_err = |what: &str, e: std::io::Error| {
        SnnError::config(
            "path",
            format!("failed to {what} checkpoint {}: {e}", path.display()),
        )
    };
    // Unique temp name in the *same directory* (rename must not cross a
    // filesystem boundary). The process id + address entropy is enough:
    // the file exists only for the duration of this call.
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let stem = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let tmp_name = format!(
        ".{}.tmp.{}",
        stem.unwrap_or_else(|| "checkpoint".to_string()),
        std::process::id(),
    );
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create temp for", e))?;
        file.write_all(&bytes).map_err(|e| io_err("write", e))?;
        // Durability point 1: the temp file's contents reach the disk
        // before the rename can make them visible under `path`.
        file.sync_all().map_err(|e| io_err("sync", e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err("commit", e))?;
        // Durability point 2 (best effort): persist the directory entry
        // so the rename itself survives power loss. Not all platforms
        // support opening a directory for sync; failure is not fatal.
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a file written by [`save_payload`] and returns its verified payload.
///
/// Verification order: the [`TRAILER_MAGIC`] trailer is located and its
/// declared payload length checked against the actual bytes (catching
/// truncation), then the payload's CRC-64 is recomputed (catching any
/// single-bit flip and virtually all larger corruptions). Only then does the
/// caller get to parse the payload.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] — never panics — on I/O failure,
/// truncation or checksum mismatch.
pub fn load_payload(path: impl AsRef<Path>) -> Result<Vec<u8>, SnnError> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| {
        SnnError::config(
            "path",
            format!("failed to read checkpoint {}: {e}", path.display()),
        )
    })?;
    let payload = verify_trailer(&bytes)?;
    Ok(payload.to_vec())
}

/// Magic of the integrity trailer appended by [`Checkpoint::save`]:
/// `"SNCKPT01"`, bumped on trailer layout changes.
pub const TRAILER_MAGIC: [u8; 8] = *b"SNCKPT01";

/// Total trailer size: magic + payload length (u64 LE) + CRC-64 (u64 LE).
const TRAILER_LEN: usize = 8 + 8 + 8;

/// Splits `magic | payload_len | crc` off `bytes`, verifies both fields and
/// returns the payload slice.
fn verify_trailer(bytes: &[u8]) -> Result<&[u8], SnnError> {
    if bytes.len() < TRAILER_LEN || bytes[bytes.len() - TRAILER_LEN..][..8] != TRAILER_MAGIC {
        return Err(SnnError::config(
            "checkpoint",
            "not a checkpoint file: integrity trailer missing (plain JSON documents load via \
             Checkpoint::from_json)",
        ));
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    let declared_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8-byte slice"));
    let declared_crc = u64::from_le_bytes(trailer[16..24].try_into().expect("8-byte slice"));
    let actual_len = (bytes.len() - TRAILER_LEN) as u64;
    if declared_len != actual_len {
        return Err(SnnError::config(
            "checkpoint",
            format!(
                "checkpoint is truncated or padded: trailer declares {declared_len} payload \
                 bytes but {actual_len} are present"
            ),
        ));
    }
    let payload = &bytes[..bytes.len() - TRAILER_LEN];
    let actual_crc = crc64(payload);
    if declared_crc != actual_crc {
        return Err(SnnError::config(
            "checkpoint",
            format!(
                "checkpoint is corrupt: CRC-64 mismatch (stored {declared_crc:#018x}, \
                 computed {actual_crc:#018x})"
            ),
        ));
    }
    Ok(payload)
}

/// CRC-64/XZ (reflected, polynomial `0xC96C5795D7870F42`): detects every
/// single-bit flip and burst errors up to 64 bits, which is exactly the
/// integrity class checkpoint corruption tests exercise. Byte-at-a-time
/// with a lazily-built 256-entry table. Public so callers can fingerprint
/// their own payloads (e.g. the trainer's dataset fingerprint) with the
/// same checksum the checkpoint trailer uses.
pub fn crc64(bytes: &[u8]) -> u64 {
    use std::sync::OnceLock;
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    // Slice-by-8: table[0] is the classic byte-at-a-time table; table[k]
    // advances a byte's contribution k extra bytes through the register, so
    // eight input bytes fold in one step. Same polynomial, same values —
    // the reference check-value test pins the equivalence.
    static TABLES: OnceLock<[[u64; 256]; 8]> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut tables = [[0u64; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
            *entry = crc;
        }
        for k in 1..8 {
            let prev_row = tables[k - 1];
            let table0 = tables[0];
            for (entry, &prev) in tables[k].iter_mut().zip(prev_row.iter()) {
                *entry = (prev >> 8) ^ table0[usize::from(prev as u8)];
            }
        }
        tables
    });
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) ^ crc;
        crc = tables[7][usize::from(word as u8)]
            ^ tables[6][usize::from((word >> 8) as u8)]
            ^ tables[5][usize::from((word >> 16) as u8)]
            ^ tables[4][usize::from((word >> 24) as u8)]
            ^ tables[3][usize::from((word >> 32) as u8)]
            ^ tables[2][usize::from((word >> 40) as u8)]
            ^ tables[1][usize::from((word >> 48) as u8)]
            ^ tables[0][usize::from((word >> 56) as u8)];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][usize::from((crc ^ u64::from(byte)) as u8)];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::network::{vgg9, Vgg9Config};
    use crate::tensor::Tensor;

    fn sample_network() -> SnnNetwork {
        vgg9(&Vgg9Config::cifar10_small()).unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_network_behaviour() {
        let original = sample_network();
        let checkpoint = Checkpoint::new(original.clone())
            .with_metadata("dataset", "cifar10-small")
            .with_metadata("precision", "fp32");
        let json = checkpoint.to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap();
        assert_eq!(restored.metadata["dataset"], "cifar10-small");

        // The restored network must produce identical inference results.
        let restored_net = restored.network;
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.03).sin().abs());
        let a = original.run(&image, &Encoder::direct(2)).unwrap();
        let b = restored_net.run(&image, &Encoder::direct(2)).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.record.total_spikes(), b.record.total_spikes());
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_version() {
        assert!(Checkpoint::from_json("not json at all").is_err());
        let mut checkpoint = Checkpoint::new(sample_network());
        checkpoint.version = 999;
        let json = serde_json::to_string(&checkpoint).unwrap();
        assert!(Checkpoint::from_json(&json).is_err());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let checkpoint = Checkpoint::new(sample_network()).with_metadata("k", "v");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.metadata["k"], "v");
        assert_eq!(loaded.version, CHECKPOINT_VERSION);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_an_error() {
        assert!(Checkpoint::load("/nonexistent/path/model.json").is_err());
    }

    #[test]
    fn crc64_matches_the_reference_check_value() {
        // CRC-64/XZ check value for the ASCII bytes "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    /// Every single bit flip anywhere in a saved checkpoint — payload or
    /// trailer — must surface as a typed error (or, for trailer-magic
    /// flips, at worst a parse error via the legacy path), never a panic
    /// and never a silently-wrong network.
    #[test]
    fn bit_flips_are_detected_not_panics() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_bitflip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        Checkpoint::new(sample_network())
            .with_metadata("k", "v")
            .save(&path)
            .unwrap();
        let pristine = std::fs::read(&path).unwrap();
        assert!(Checkpoint::load(&path).is_ok(), "pristine file loads");
        // Sample bit positions across the whole file (every byte would take
        // minutes on the large payload): front, back and a stride through
        // the middle, plus the entire trailer.
        let mut positions: Vec<usize> = (0..pristine.len()).step_by(997).collect();
        positions.extend(pristine.len().saturating_sub(TRAILER_LEN)..pristine.len());
        for pos in positions {
            for bit in [0u8, 3, 7] {
                let mut corrupt = pristine.clone();
                corrupt[pos] ^= 1 << bit;
                std::fs::write(&path, &corrupt).unwrap();
                assert!(
                    Checkpoint::load(&path).is_err(),
                    "flip at byte {pos} bit {bit} must be detected"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncation at any length — including cutting into or past the
    /// trailer — must be a typed error, never a panic.
    #[test]
    fn truncations_are_detected_not_panics() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        Checkpoint::new(sample_network()).save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let mut cuts: Vec<usize> = (0..pristine.len()).step_by(1381).collect();
        // Every boundary near the trailer, plus the empty file.
        cuts.extend(pristine.len().saturating_sub(TRAILER_LEN + 2)..pristine.len());
        cuts.push(0);
        for cut in cuts {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                Checkpoint::load(&path).is_err(),
                "truncation to {cut} bytes must be detected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_files_are_typed_errors() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        for garbage in [
            &b"\x00\xFF\x13\x37 not a checkpoint"[..],
            &[0u8; 64][..],
            b"{\"version\": 1}", // JSON, but not a checkpoint
        ] {
            std::fs::write(&path, garbage).unwrap();
            assert!(Checkpoint::load(&path).is_err());
        }
        // A forged trailer over garbage: magic right, checksum wrong.
        let mut forged = b"garbage payload".to_vec();
        forged.extend_from_slice(&TRAILER_MAGIC);
        forged.extend_from_slice(&15_u64.to_le_bytes());
        forged.extend_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("CRC"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    /// Bare JSON (no trailer) is refused by `load` with an error pointing
    /// at `from_json` — accepting it would make truncation at exactly the
    /// trailer boundary undetectable — and `from_json` still parses it.
    #[test]
    fn bare_json_needs_the_explicit_from_json_path() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let checkpoint = Checkpoint::new(sample_network()).with_metadata("era", "pre-trailer");
        std::fs::write(&path, checkpoint.to_json().unwrap()).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("trailer"), "got: {err}");
        let json = std::fs::read_to_string(&path).unwrap();
        let loaded = Checkpoint::from_json(&json).unwrap();
        assert_eq!(loaded.metadata["era"], "pre-trailer");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_files_and_overwrites_atomically() {
        let dir = std::env::temp_dir().join("snn_dse_checkpoint_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let first = Checkpoint::new(sample_network()).with_metadata("gen", "1");
        first.save(&path).unwrap();
        let second = Checkpoint::new(sample_network()).with_metadata("gen", "2");
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().metadata["gen"], "2");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }
}
