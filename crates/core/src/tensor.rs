//! A small dense tensor type used throughout the SNN substrate.
//!
//! The accelerator simulator and the training substrate only ever need
//! contiguous `f32` tensors in CHW / NCHW layout, so [`Tensor`] deliberately
//! stays simple: a flat `Vec<f32>` plus a shape vector with row-major strides.
//! Convolution layers use the [`Tensor::im2col`] helper so that both the
//! forward and backward passes reduce to matrix multiplications.

use crate::error::SnnError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Dense row-major `f32` tensor with an arbitrary number of dimensions.
///
/// # Example
///
/// ```
/// use snn_core::tensor::Tensor;
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// assert_eq!(t.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![1.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Reshapes the tensor in place to `shape` and sets every element to
    /// `value`, reusing the existing allocation when its capacity suffices.
    /// This is the buffer-recycling primitive behind the allocation-free
    /// inference loop: scratch tensors are `reset_to` the next layer's shape
    /// instead of being reallocated every timestep.
    pub fn reset_to(&mut self, shape: &[usize], value: f32) {
        let len: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.resize(len, value);
    }

    /// Copies another tensor's shape and contents into this one, reusing the
    /// existing allocations (unlike the derived `clone_from`, which clones).
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&other.shape);
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the vector length does not equal
    /// the product of the shape dimensions.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, SnnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(SnnError::shape(
                &[expected],
                &[data.len()],
                "Tensor::from_vec data length",
            ));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let len: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.shape[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::IndexOutOfBounds`] if the index rank or any
    /// component is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, SnnError> {
        if index.len() != self.shape.len() {
            return Err(SnnError::shape(
                &self.shape,
                index,
                "Tensor::offset index rank",
            ));
        }
        let mut off = 0;
        let strides = self.strides();
        for (dim, (&i, (&s, &stride))) in index
            .iter()
            .zip(self.shape.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= s {
                return Err(SnnError::index(i, s, format!("tensor dimension {dim}")));
            }
            off += i * stride;
        }
        Ok(off)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::IndexOutOfBounds`] if the index is invalid.
    pub fn get(&self, index: &[usize]) -> Result<f32, SnnError> {
        Ok(self.data[self.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), SnnError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, SnnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(SnnError::shape(shape, &self.shape, "Tensor::reshape"));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise binary operation with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, SnnError> {
        if self.shape != other.shape {
            return Err(SnnError::shape(
                &self.shape,
                &other.shape,
                "Tensor::zip_map",
            ));
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (ties resolved to the first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_val = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of elements equal to zero; 0.0 for an empty tensor.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.count_nonzero() as f64 / self.data.len() as f64
    }

    /// Returns true if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Scales every element by `factor`.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Frobenius norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product between two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, SnnError> {
        if self.data.len() != other.data.len() {
            return Err(SnnError::shape(
                &[self.data.len()],
                &[other.data.len()],
                "Tensor::dot",
            ));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Lowers a `[C, H, W]` input into an im2col matrix of shape
    /// `[C * kh * kw, out_h * out_w]` for a convolution with the given kernel,
    /// stride and (symmetric, zero) padding.
    ///
    /// Each column holds the receptive field of one output pixel, which turns
    /// convolution into a single matrix multiplication with the flattened
    /// filter bank.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the tensor is not 3-D, or
    /// [`SnnError::InvalidConfig`] if the kernel does not fit the padded input.
    pub fn im2col(
        &self,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Result<Im2Col, SnnError> {
        let mut out = Im2Col::default();
        self.im2col_into(kernel, stride, padding, &mut out)?;
        Ok(out)
    }

    /// Like [`Tensor::im2col`] but reuses the buffer of an existing [`Im2Col`],
    /// avoiding the large per-call allocation on hot inference paths. The
    /// buffer is resized as needed and its previous contents are discarded.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::im2col`].
    pub fn im2col_into(
        &self,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
        out: &mut Im2Col,
    ) -> Result<(), SnnError> {
        let (c, h, w, out_h, out_w) = im2col_geometry(&self.shape, kernel, stride, padding)?;
        let (kh, kw) = kernel;
        let rows = c * kh * kw;
        let cols = out_h * out_w;
        out.data.clear();
        out.data.resize(rows * cols, 0.0);
        out.rows = rows;
        out.cols = cols;
        out.out_h = out_h;
        out.out_w = out_w;
        if stride == 1 {
            self.im2col_rows_stride1((kh, kw), padding, out);
            return Ok(());
        }
        let data = &mut out.data;
        for ci in 0..c {
            let channel = &self.data[ci * h * w..(ci + 1) * h * w];
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = ci * kh * kw + ki * kw + kj;
                    let row_base = row * cols;
                    for oy in 0..out_h {
                        let iy = (oy * stride + ki) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let in_row = iy as usize * w;
                        for ox in 0..out_w {
                            let ix = (ox * stride + kj) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            data[row_base + oy * out_w + ox] = channel[in_row + ix as usize];
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Stride-1 fast path of [`Tensor::im2col_into`]: each `(channel, ky,
    /// kx)` matrix row is the input channel plane shifted by `(ky - padding,
    /// kx - padding)`, so the interior is a contiguous row copy instead of a
    /// bounds-checked per-element walk. Fills a bit-identical matrix.
    fn im2col_rows_stride1(&self, (kh, kw): (usize, usize), padding: usize, out: &mut Im2Col) {
        let (c, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        let (out_h, out_w) = (out.out_h, out.out_w);
        let cols = out.cols;
        let data = &mut out.data;
        for ci in 0..c {
            let channel = &self.data[ci * h * w..(ci + 1) * h * w];
            for ki in 0..kh {
                // Valid output rows: 0 <= oy + ki - padding < h.
                let oy0 = padding.saturating_sub(ki);
                let oy1 = (h + padding).saturating_sub(ki).min(out_h);
                for kj in 0..kw {
                    let row_base = (ci * kh * kw + ki * kw + kj) * cols;
                    // Valid output columns: 0 <= ox + kj - padding < w.
                    let ox0 = padding.saturating_sub(kj);
                    let ox1 = (w + padding).saturating_sub(kj).min(out_w);
                    if ox0 >= ox1 {
                        continue;
                    }
                    let ix0 = ox0 + kj - padding;
                    for oy in oy0..oy1 {
                        let iy = oy + ki - padding;
                        let src = &channel[iy * w + ix0..iy * w + ix0 + (ox1 - ox0)];
                        data[row_base + oy * out_w + ox0..row_base + oy * out_w + ox1]
                            .copy_from_slice(src);
                    }
                }
            }
        }
    }

    /// Inverse of [`Tensor::im2col`]: scatters a `[C * kh * kw, out_h * out_w]`
    /// matrix back into a `[C, H, W]` tensor, accumulating overlapping
    /// contributions. Used by the convolution backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the column matrix dimensions do
    /// not correspond to the requested output geometry.
    pub fn col2im(
        cols: &Im2Col,
        channels: usize,
        height: usize,
        width: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Result<Tensor, SnnError> {
        let mut out = Tensor::default();
        Tensor::col2im_into(
            cols, channels, height, width, kernel, stride, padding, &mut out,
        )?;
        Ok(out)
    }

    /// Like [`Tensor::col2im`] but writes into a caller-provided tensor
    /// (reshaped/reused in place), so the convolution backward pass can reuse
    /// one input-gradient buffer across timesteps. Bit-identical to
    /// [`Tensor::col2im`].
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::col2im`].
    #[allow(clippy::too_many_arguments)]
    pub fn col2im_into(
        cols: &Im2Col,
        channels: usize,
        height: usize,
        width: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
        out: &mut Tensor,
    ) -> Result<(), SnnError> {
        let (kh, kw) = kernel;
        if cols.rows != channels * kh * kw {
            return Err(SnnError::shape(
                &[channels * kh * kw],
                &[cols.rows],
                "Tensor::col2im rows",
            ));
        }
        if cols.cols != cols.out_h * cols.out_w {
            return Err(SnnError::shape(
                &[cols.out_h * cols.out_w],
                &[cols.cols],
                "Tensor::col2im cols",
            ));
        }
        out.reset_to(&[channels, height, width], 0.0);
        if stride == 1 {
            // Stride-1 fast path, mirroring `im2col_rows_stride1`: for a
            // fixed `(ci, ki, kj)` the valid output cells form contiguous
            // row runs shifted by `(ki - padding, kj - padding)`, so the
            // scatter becomes vectorizable slice adds. The `(ci, ki, kj,
            // oy, ox)` accumulation order — and therefore every f32 sum —
            // is exactly the bounds-checked loop's.
            let (out_h, out_w) = (cols.out_h, cols.out_w);
            for ci in 0..channels {
                let channel = &mut out.data[ci * height * width..(ci + 1) * height * width];
                for ki in 0..kh {
                    let oy0 = padding.saturating_sub(ki);
                    let oy1 = (height + padding).saturating_sub(ki).min(out_h);
                    for kj in 0..kw {
                        let row_base = (ci * kh * kw + ki * kw + kj) * cols.cols;
                        let ox0 = padding.saturating_sub(kj);
                        let ox1 = (width + padding).saturating_sub(kj).min(out_w);
                        if ox0 >= ox1 {
                            continue;
                        }
                        let ix0 = ox0 + kj - padding;
                        for oy in oy0..oy1 {
                            let iy = oy + ki - padding;
                            let src = &cols.data
                                [row_base + oy * out_w + ox0..row_base + oy * out_w + ox1];
                            let dst =
                                &mut channel[iy * width + ix0..iy * width + ix0 + (ox1 - ox0)];
                            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                                *d += s;
                            }
                        }
                    }
                }
            }
            return Ok(());
        }
        for ci in 0..channels {
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = ci * kh * kw + ki * kw + kj;
                    let row_base = row * cols.cols;
                    for oy in 0..cols.out_h {
                        let iy = (oy * stride + ki) as isize - padding as isize;
                        if iy < 0 || iy >= height as isize {
                            continue;
                        }
                        for ox in 0..cols.out_w {
                            let ix = (ox * stride + kj) as isize - padding as isize;
                            if ix < 0 || ix >= width as isize {
                                continue;
                            }
                            let idx = ci * height * width + iy as usize * width + ix as usize;
                            out.data[idx] += cols.data[row_base + oy * cols.out_w + ox];
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Validates a `[C, H, W]` shape against a convolution patch geometry and
/// returns `(c, h, w, out_h, out_w)`. Shared by the dense im2col lowering and
/// the event-driven gather lowering ([`crate::spike::SpikePlane`]) so the two
/// paths cannot disagree on geometry.
pub(crate) fn im2col_geometry(
    shape: &[usize],
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<(usize, usize, usize, usize, usize), SnnError> {
    if shape.len() != 3 {
        return Err(SnnError::shape(&[0, 0, 0], shape, "Tensor::im2col"));
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (kh, kw) = kernel;
    if stride == 0 {
        return Err(SnnError::config("stride", "stride must be >= 1"));
    }
    let padded_h = h + 2 * padding;
    let padded_w = w + 2 * padding;
    if kh > padded_h || kw > padded_w {
        return Err(SnnError::config(
            "kernel",
            format!("kernel {kh}x{kw} larger than padded input {padded_h}x{padded_w}"),
        ));
    }
    let out_h = (padded_h - kh) / stride + 1;
    let out_w = (padded_w - kw) / stride + 1;
    Ok((c, h, w, out_h, out_w))
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(shape={:?}, mean={:.4}, sparsity={:.3})",
            self.shape,
            self.mean(),
            self.sparsity()
        )
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
            .expect("tensor shapes must match for addition")
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
            .expect("tensor shapes must match for subtraction")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(
            self.shape, rhs.shape,
            "tensor shapes must match for +=: {:?} vs {:?}",
            self.shape, rhs.shape
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

/// Result of an [`Tensor::im2col`] lowering.
///
/// The matrix is stored row-major with `rows = C * kh * kw` and
/// `cols = out_h * out_w`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Im2Col {
    /// Row-major matrix data.
    pub data: Vec<f32>,
    /// Number of rows (`C * kh * kw`).
    pub rows: usize,
    /// Number of columns (`out_h * out_w`).
    pub cols: usize,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
}

/// Multiplies an `[m, k]` row-major matrix by a `[k, n]` row-major matrix.
///
/// This is the single matmul primitive shared by the convolution and linear
/// layers (forward and backward). It dispatches to the cache-blocked
/// [`matmul_to`] kernel.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0_f32; m * n];
    matmul_to(a, b, m, k, n, &mut out);
    out
}

/// Reference matmul kernel: a per-row triple loop over four `b`-rows at a
/// time, with no cache blocking. This is the kernel every accumulation-order
/// guarantee in the workspace is stated against — [`matmul_to`] (the blocked
/// production kernel) must stay **bitwise identical** to it, which the
/// `blocked_matmul_bitwise_equals_naive` proptest enforces. Retained for that
/// test and for the `matmul_blocked_vs_naive` bench arm.
pub fn matmul_naive_to(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs matrix has wrong length");
    assert_eq!(b.len(), k * n, "rhs matrix has wrong length");
    assert_eq!(out.len(), m * n, "out matrix has wrong length");
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        // Process four b-rows per output pass: quarters the load/store
        // traffic on the output row, which dominates the inner loop. The
        // per-element adds stay in ascending-p order (`t += a0*b0` then
        // `t += a1*b1`, never a reassociated `t += a0*b0 + a1*b1`), so
        // results are bit-identical to the single-row loop.
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                p += 4;
                continue;
            }
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for o in 0..n {
                let mut t = out_row[o];
                t += a0 * b0[o];
                t += a1 * b1[o];
                t += a2 * b2[o];
                t += a3 * b3[o];
                out_row[o] = t;
            }
            p += 4;
        }
        for (p, &a_ip) in a_row.iter().enumerate().skip(p) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pn) in b_row.iter().enumerate() {
                out_row[o] += a_ip * b_pn;
            }
        }
    }
}

/// Number of `a` rows one micro-kernel pass accumulates: each loaded `b`
/// panel row is reused across this many output rows before it leaves
/// registers/L1.
const MM_ROW_TILE: usize = 4;
/// Column width of a packed `b` panel (`NC`): output-row segments of this
/// width plus four panel rows stay L1-resident through a micro-kernel pass.
const MM_PANEL_COLS: usize = 128;
/// Depth of one `k` block (`KC`); a panel of `KC × NC` f32 is 128 KiB and
/// stays L2-resident across all row tiles. Must be a multiple of 4 so the
/// four-row quads of every block align with the reference kernel's quads
/// (same grouping ⇒ same zero-skip decisions ⇒ bitwise-equal sums even for
/// non-finite inputs).
const MM_BLOCK_K: usize = 256;
/// Tiling/packing cut-in: while `b` holds at most this many elements
/// (512 KiB of f32 — comfortably L2-resident) the kernel runs directly over
/// `b` as one whole-width panel; packing would only add a copy of data the
/// cache already serves. Every inference-scale shape in this workspace stays
/// below the threshold, so the hot run loop never packs.
const MM_PACK_THRESHOLD: usize = 128 * 1024;

/// Like [`matmul`] but writes into a caller-provided output slice of length
/// `m * n` (overwriting its contents), so hot paths can reuse one buffer
/// across calls.
///
/// The kernel is cache-blocked: `b` is processed in `KC × NC` column panels
/// packed into a contiguous scratch buffer (skipped when `n ≤ NC`, where
/// `b`'s rows already are the panel) and each panel is reused across
/// `MM_ROW_TILE` output rows per pass. Per output cell the contributions
/// still accumulate one scalar `t += a[i][p] * b[p][o]` at a time in
/// ascending `p` order — exactly the order of [`matmul_naive_to`] — so the
/// result is **bitwise identical** to the naive reference kernel.
pub fn matmul_to(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let mut panel = Vec::new();
    matmul_to_with(a, b, m, k, n, out, &mut panel);
}

/// The allocation-controlled entry point behind [`matmul_to`]: `panel` is the
/// scratch buffer `b` panels are packed into, reused across calls by the hot
/// paths (it is only touched when `n > MM_PANEL_COLS`; the inference-scale
/// shapes never pack). Bit-identical to [`matmul_naive_to`].
pub fn matmul_to_with(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    panel: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "lhs matrix has wrong length");
    assert_eq!(b.len(), k * n, "rhs matrix has wrong length");
    assert_eq!(out.len(), m * n, "out matrix has wrong length");
    out.fill(0.0);
    if b.len() <= MM_PACK_THRESHOLD {
        // Cache-resident b: run the row-tiled micro-kernel over the whole
        // matrix as one panel (pc = 0, kb = k keeps the quad grouping — and
        // therefore the accumulation order — aligned with the reference).
        for i0 in (0..m).step_by(MM_ROW_TILE) {
            let mr = MM_ROW_TILE.min(m - i0);
            micro_kernel(a, k, 0, k, i0, mr, b, n, out, n, 0);
        }
        return;
    }
    for pc in (0..k).step_by(MM_BLOCK_K) {
        let kb = MM_BLOCK_K.min(k - pc);
        for jc in (0..n).step_by(MM_PANEL_COLS) {
            let nb = MM_PANEL_COLS.min(n - jc);
            let packed: &[f32] = if nb == n {
                // Whole-width panel: b's rows are already contiguous.
                &b[pc * n..(pc + kb) * n]
            } else {
                panel.clear();
                panel.reserve(kb * nb);
                for p in pc..pc + kb {
                    panel.extend_from_slice(&b[p * n + jc..p * n + jc + nb]);
                }
                panel
            };
            for i0 in (0..m).step_by(MM_ROW_TILE) {
                let mr = MM_ROW_TILE.min(m - i0);
                micro_kernel(a, k, pc, kb, i0, mr, packed, nb, out, n, jc);
            }
        }
    }
}

/// Width of the explicit micro-kernel accumulator tile: eight named f32
/// lanes, held in locals so the autovectorizer keeps them resident in two
/// 128-bit (or one 256-bit) registers across the quad's four multiply-adds.
const MM_LANES: usize = 8;

/// Accumulates `mr` output rows against one packed `kb × nb` panel of `b`.
/// Quads of four panel rows are walked in ascending order with the same
/// per-row all-four-zero skip as the reference kernel; each loaded quad is
/// applied to every row of the tile before the next quad is touched.
///
/// Output columns are processed [`MM_LANES`] at a time through explicit
/// register accumulators. Lanes are *independent output elements* — each
/// element's scalar chain is still `(((out + a0·b0) + a1·b1) + a2·b2) + a3·b3`
/// in ascending `p` order, exactly the reference kernel's order — so the
/// unrolling changes no result bit, only how many accumulators are in flight.
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    a: &[f32],
    k: usize,
    pc: usize,
    kb: usize,
    i0: usize,
    mr: usize,
    panel: &[f32],
    nb: usize,
    out: &mut [f32],
    n: usize,
    jc: usize,
) {
    let lanes_end = nb - nb % MM_LANES;
    let mut p = 0;
    while p + 4 <= kb {
        let b0 = &panel[p * nb..(p + 1) * nb];
        let b1 = &panel[(p + 1) * nb..(p + 2) * nb];
        let b2 = &panel[(p + 2) * nb..(p + 3) * nb];
        let b3 = &panel[(p + 3) * nb..(p + 4) * nb];
        for r in 0..mr {
            let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kb];
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let base = (i0 + r) * n + jc;
            let out_row = &mut out[base..base + nb];
            let (out_lanes, out_tail) = out_row.split_at_mut(lanes_end);
            for (c, out8) in out_lanes.chunks_exact_mut(MM_LANES).enumerate() {
                let o0 = c * MM_LANES;
                let b0c = &b0[o0..o0 + MM_LANES];
                let b1c = &b1[o0..o0 + MM_LANES];
                let b2c = &b2[o0..o0 + MM_LANES];
                let b3c = &b3[o0..o0 + MM_LANES];
                let mut t = [0.0_f32; MM_LANES];
                t.copy_from_slice(out8);
                for l in 0..MM_LANES {
                    t[l] += a0 * b0c[l];
                }
                for l in 0..MM_LANES {
                    t[l] += a1 * b1c[l];
                }
                for l in 0..MM_LANES {
                    t[l] += a2 * b2c[l];
                }
                for l in 0..MM_LANES {
                    t[l] += a3 * b3c[l];
                }
                out8.copy_from_slice(&t);
            }
            for (o, slot) in (lanes_end..nb).zip(out_tail.iter_mut()) {
                let mut t = *slot;
                t += a0 * b0[o];
                t += a1 * b1[o];
                t += a2 * b2[o];
                t += a3 * b3[o];
                *slot = t;
            }
        }
        p += 4;
    }
    while p < kb {
        let b_row = &panel[p * nb..(p + 1) * nb];
        for r in 0..mr {
            let a_rp = a[(i0 + r) * k + pc + p];
            if a_rp == 0.0 {
                continue;
            }
            let base = (i0 + r) * n + jc;
            let out_row = &mut out[base..base + nb];
            let (out_lanes, out_tail) = out_row.split_at_mut(lanes_end);
            for (c, out8) in out_lanes.chunks_exact_mut(MM_LANES).enumerate() {
                let o0 = c * MM_LANES;
                let b_c = &b_row[o0..o0 + MM_LANES];
                let mut t = [0.0_f32; MM_LANES];
                t.copy_from_slice(out8);
                for l in 0..MM_LANES {
                    t[l] += a_rp * b_c[l];
                }
                out8.copy_from_slice(&t);
            }
            for (slot, &b_po) in out_tail.iter_mut().zip(b_row[lanes_end..].iter()) {
                *slot += a_rp * b_po;
            }
        }
        p += 1;
    }
}

/// Element-wise `dst[i] += src[i]` through the same 8-lane (`MM_LANES`)
/// explicit register accumulators as the micro-kernel — the "column-gather
/// add" of the event-driven paths: a spike contributes a whole weight row
/// unscaled, so the conv forward's per-tap gather and the backward's per-tap
/// weight-gradient accumulation are exactly this loop. Lanes are independent
/// elements, so the unrolling is bitwise-neutral.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_assign_lanes(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign_lanes length mismatch");
    let lanes_end = dst.len() - dst.len() % MM_LANES;
    let (dst_lanes, dst_tail) = dst.split_at_mut(lanes_end);
    for (c, d8) in dst_lanes.chunks_exact_mut(MM_LANES).enumerate() {
        let o0 = c * MM_LANES;
        let s8 = &src[o0..o0 + MM_LANES];
        let mut t = [0.0_f32; MM_LANES];
        t.copy_from_slice(d8);
        for l in 0..MM_LANES {
            t[l] += s8[l];
        }
        d8.copy_from_slice(&t);
    }
    for (d, &s) in dst_tail.iter_mut().zip(src[lanes_end..].iter()) {
        *d += s;
    }
}

/// Multiplies the transpose of an `[k, m]` row-major matrix by a `[k, n]`
/// row-major matrix, producing `[m, n]`. Used in backward passes to avoid
/// materialising explicit transposes.
pub fn matmul_at_b(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0_f32; m * n];
    matmul_at_b_to(a, b, k, m, n, &mut out);
    out
}

/// Like [`matmul_at_b`] but writes into a caller-provided output slice of
/// length `m * n` (overwriting its contents), so the backward pass can reuse
/// one gradient buffer across timesteps. Bit-identical to [`matmul_at_b`].
pub fn matmul_at_b_to(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "lhs matrix has wrong length");
    assert_eq!(b.len(), k * n, "rhs matrix has wrong length");
    assert_eq!(out.len(), m * n, "out matrix has wrong length");
    out.fill(0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pn) in b_row.iter().enumerate() {
                out_row[o] += a_pi * b_pn;
            }
        }
    }
}

/// Multiplies an `[m, k]` row-major matrix by the transpose of an `[n, k]`
/// row-major matrix, producing `[m, n]`. This is the weight-gradient matmul
/// of the convolution backward pass (`grad_w = grad_out · colsᵀ`), a per-step
/// hot spot of BPTT training.
///
/// `b` is transposed once into a `[k, n]` layout and the product delegated to
/// the blocked [`matmul_to`] kernel, so the inner loops run contiguously in
/// the output direction and vectorise — the naive formulation is a sequential
/// scalar dot product per output cell, which strict (non-reassociating) f32
/// semantics cannot vectorise. Per output cell the contributions still
/// accumulate one scalar at a time in ascending-`p` order; as long as every
/// input is finite (true for the training path, whose inputs are
/// finiteness-validated by the LIF layers), the result is bitwise identical
/// to the dot-product formulation — enforced by the
/// `matmul_a_bt_bitwise_equals_dot_product_reference` proptest. The two can
/// diverge only on non-finite data, where the blocked kernel's zero-skip
/// drops `0.0 × ∞`/`0.0 × NaN` terms the dot product would keep.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0_f32; m * n];
    let mut bt = Vec::new();
    let mut panel = Vec::new();
    matmul_a_bt_to_with(a, b, m, k, n, &mut out, &mut bt, &mut panel);
    out
}

/// The allocation-controlled entry point behind [`matmul_a_bt`]: `bt` is the
/// scratch the `[k, n]` repack of `b` lands in and `panel` the blocked
/// kernel's packing scratch, both reused across calls by the backward hot
/// path. Bit-identical to [`matmul_a_bt`].
#[allow(clippy::too_many_arguments)]
pub fn matmul_a_bt_to_with(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    bt: &mut Vec<f32>,
    panel: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "lhs matrix has wrong length");
    assert_eq!(b.len(), n * k, "rhs matrix has wrong length");
    bt.clear();
    bt.resize(k * n, 0.0);
    for (o, b_row) in b.chunks_exact(k).enumerate() {
        for (p, &v) in b_row.iter().enumerate() {
            bt[p * n + o] = v;
        }
    }
    matmul_to_with(a, bt, m, k, n, out, panel);
}

/// Fused transposed-weight matmul + col2im scatter over the **active**
/// columns only — the input-gradient kernel of the event-aware convolution
/// backward pass.
///
/// Computes `grad_input = col2im(Wᵀ · grad_out)` without materialising the
/// `[rows, n]` gradient-column matrix: `wt` is the pre-transposed `[rows, k]`
/// filter bank (`rows = channels · kh · kw`, `k` output channels — the
/// layout `Conv2d::transposed_weight` caches), `b` the `[k, n]` output
/// gradient (`n = out_h · out_w`), and `active` the ascending indices of the
/// columns of `b` that contain at least one non-zero — the caller detects
/// them from the gradient frame and every skipped column must be entirely
/// `±0.0`. The active columns are packed once into a contiguous panel, the
/// product is computed four rows at a time with the same micro-kernel as
/// [`matmul_to_with`] (each loaded panel-row quad is reused across four
/// weight rows), and each finished row tile is scattered straight into the
/// `[channels, height, width]` input-gradient plane.
///
/// **Bitwise identical** to [`matmul_at_b_to`] (over the un-transposed
/// weights) followed by [`Tensor::col2im_into`] on finite inputs, enforced
/// by proptest:
///
/// * per gradient-column cell the contributions accumulate one scalar at a
///   time in ascending output-channel order — the reference matmul's exact
///   order; dropping the products of an all-zero column removes only `±0.0`
///   terms, which cannot change an IEEE-754 sum accumulated from `+0.0`
///   in round-to-nearest (the two kernels' zero-*skip* decisions differ,
///   which matters only for non-finite data, exactly like [`matmul_a_bt`]);
/// * the scatter visits `(channel, ky, kx, oy, ox)` in ascending order —
///   col2im's exact accumulation order — and a skipped column's
///   contribution is `+0.0` into an accumulator that is never `-0.0`.
///
/// `packed`, `pos` and `tile` are caller-owned scratch buffers (the backward
/// pass threads them through its `GradScratch`), so the kernel allocates
/// nothing once they are warm. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with the geometry, or (in
/// debug builds) if `active` is not strictly ascending and in range.
#[allow(clippy::too_many_arguments)]
pub fn matmul_scatter_col2im(
    wt: &[f32],
    b: &[f32],
    active: &[u32],
    k: usize,
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
    out_w: usize,
    packed: &mut Vec<f32>,
    pos: &mut Vec<(u32, u32)>,
    tile: &mut Vec<f32>,
    out: &mut [f32],
) {
    let (kh, kw) = kernel;
    let rows = channels * kh * kw;
    assert_eq!(
        wt.len(),
        rows * k,
        "transposed filter bank has wrong length"
    );
    assert_eq!(b.len(), k * n, "rhs matrix has wrong length");
    assert_eq!(out.len(), channels * height * width, "out has wrong length");
    debug_assert!(
        active.windows(2).all(|w| w[0] < w[1]) && active.last().is_none_or(|&s| (s as usize) < n),
        "active columns must be strictly ascending and in range"
    );
    out.fill(0.0);
    let na = active.len();
    if na == 0 {
        return; // every column is zero: the gradient plane stays +0.0
    }
    // Pack the active columns of `b` into a contiguous [k, na] panel; when
    // every column is active, `b` already is that panel.
    let panel: &[f32] = if na == n {
        b
    } else {
        packed.clear();
        packed.reserve(k * na);
        for b_row in b.chunks_exact(n) {
            packed.extend(active.iter().map(|&s| b_row[s as usize]));
        }
        packed
    };
    // Resolve each active column's stretched base coordinates once; the
    // per-row scatter then only adds the (ki - padding, kj - padding) shift
    // instead of re-deriving (oy, ox) by division for every (row, column).
    pos.clear();
    pos.extend(active.iter().map(|&s| {
        let s = s as usize;
        ((s / out_w * stride) as u32, (s % out_w * stride) as u32)
    }));
    tile.clear();
    tile.resize(MM_ROW_TILE * na, 0.0);
    for r0 in (0..rows).step_by(MM_ROW_TILE) {
        let mr = MM_ROW_TILE.min(rows - r0);
        let t = &mut tile[..mr * na];
        t.fill(0.0);
        micro_kernel(
            &wt[r0 * k..(r0 + mr) * k],
            k,
            0,
            k,
            0,
            mr,
            panel,
            na,
            t,
            na,
            0,
        );
        // Scatter the finished rows in ascending row order, each over the
        // active columns in ascending order — col2im's accumulation order
        // minus the all-zero columns.
        for (r, vals) in t.chunks_exact(na).enumerate() {
            let row = r0 + r;
            let ci = row / (kh * kw);
            let rem = row % (kh * kw);
            let dy = (rem / kw) as isize - padding as isize;
            let dx = (rem % kw) as isize - padding as isize;
            let chan = &mut out[ci * height * width..(ci + 1) * height * width];
            for (&(y0, x0), &v) in pos.iter().zip(vals.iter()) {
                let iy = y0 as isize + dy;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                let ix = x0 as isize + dx;
                if ix < 0 || ix >= width as isize {
                    continue;
                }
                chan[iy as usize * width + ix as usize] += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones_have_expected_contents() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones(&[2, 3]);
        assert_eq!(o.sum(), 6.0);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.5).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn get_rejects_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.get(&[2, 0]).is_err());
        assert!(t.get(&[0]).is_err());
    }

    #[test]
    fn strides_are_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn sparsity_counts_zeros() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 2.0], &[4]).unwrap();
        assert_eq!(t.count_nonzero(), 2);
        assert!((t.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn argmax_finds_first_maximum() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn matmul_matches_manual_result() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let c = matmul(&a, &b, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_to_matches_matmul_and_reuses_buffer() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![f32::NAN; 4];
        matmul_to(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, matmul(&a, &b, 2, 2, 2));
        // A second call fully overwrites stale contents.
        matmul_to(&b, &a, 2, 2, 2, &mut out);
        assert_eq!(out, matmul(&b, &a, 2, 2, 2));
    }

    /// Deterministic pseudo-random matrix whose entries include exact zeros,
    /// so the kernels' zero-skip paths are exercised.
    fn test_matrix(rows: usize, cols: usize, seed: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let h = (i + seed).wrapping_mul(2_654_435_761) % 1000;
                if h < 250 {
                    0.0
                } else {
                    (h as f32 - 500.0) * 1e-3
                }
            })
            .collect()
    }

    fn assert_bitwise_eq(blocked: &[f32], naive: &[f32], ctx: &str) {
        assert_eq!(blocked.len(), naive.len(), "{ctx}: length");
        for (i, (x, y)) in blocked.iter().zip(naive.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: cell {i} diverges: blocked {x} vs naive {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_crosses_panel_and_k_block_boundaries() {
        // Shapes straddling MM_PANEL_COLS (128), MM_BLOCK_K (256) and the
        // 4-row tile, including exact multiples and off-by-one sizes.
        for &(m, k, n) in &[
            (5, 517, 260),
            (4, 256, 128),
            (3, 257, 129),
            (9, 255, 127),
            (1, 300, 131),
            (6, 260, 256),
        ] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            let mut blocked = vec![f32::NAN; m * n];
            let mut naive = vec![f32::NAN; m * n];
            let mut panel = Vec::new();
            matmul_to_with(&a, &b, m, k, n, &mut blocked, &mut panel);
            matmul_naive_to(&a, &b, m, k, n, &mut naive);
            assert_bitwise_eq(&blocked, &naive, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_matmul_reuses_panel_scratch_across_shapes() {
        let mut panel = Vec::new();
        for &(m, k, n) in &[(7, 40, 300), (2, 600, 140), (3, 3, 3)] {
            let a = test_matrix(m, k, 3);
            let b = test_matrix(k, n, 4);
            let mut blocked = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            matmul_to_with(&a, &b, m, k, n, &mut blocked, &mut panel);
            matmul_naive_to(&a, &b, m, k, n, &mut naive);
            assert_bitwise_eq(&blocked, &naive, &format!("reused panel {m}x{k}x{n}"));
        }
    }

    proptest! {
        /// The repacked [`matmul_a_bt`] is bitwise-equal to the dot-product
        /// formulation it replaced (inlined here as the reference) on finite
        /// inputs with exact zeros — the doc's guarantee, kept enforceable.
        #[test]
        fn matmul_a_bt_bitwise_equals_dot_product_reference(
            m in 1_usize..24,
            k in 1_usize..40,
            n in 1_usize..24,
            seed in 0_usize..1000,
        ) {
            let a = test_matrix(m, k, seed);
            let b = test_matrix(n, k, seed + 29);
            let repacked = matmul_a_bt(&a, &b, m, k, n);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for o in 0..n {
                    let b_row = &b[o * k..(o + 1) * k];
                    let mut acc = 0.0_f32;
                    for p in 0..k {
                        acc += a_row[p] * b_row[p];
                    }
                    prop_assert_eq!(repacked[i * n + o].to_bits(), acc.to_bits());
                }
            }
        }

        /// The cache-blocked production kernel is bitwise-equal to the naive
        /// reference kernel across ragged shapes (including the 4-wide quad
        /// tail in every residue class) and inputs with exact zeros.
        #[test]
        fn blocked_matmul_bitwise_equals_naive(
            m in 1_usize..40,
            k in 1_usize..40,
            n in 1_usize..40,
            seed in 0_usize..1000,
            zeros in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let mut a = test_matrix(m, k, seed);
            // Plant extra zero runs so whole quads get skipped.
            for (i, v) in a.iter_mut().enumerate() {
                if zeros[i % zeros.len()] {
                    *v = 0.0;
                }
            }
            let b = test_matrix(k, n, seed + 17);
            let mut blocked = vec![f32::NAN; m * n];
            let mut naive = vec![f32::NAN; m * n];
            matmul_to(&a, &b, m, k, n, &mut blocked);
            matmul_naive_to(&a, &b, m, k, n, &mut naive);
            for (x, y) in blocked.iter().zip(naive.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn reset_to_reshapes_and_refills() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        t.reset_to(&[3], 0.5);
        assert_eq!(t.shape(), &[3]);
        assert_eq!(t.as_slice(), &[0.5; 3]);
        t.reset_to(&[2, 3], 0.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        // A is [k=3, m=2], B is [k=3, n=2].
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        // A^T = [1 3 5; 2 4 6]; A^T * B = [1*7+3*9+5*11, ...]
        let c = matmul_at_b(&a, &b, 3, 2, 2);
        assert_eq!(c, vec![89.0, 98.0, 116.0, 128.0]);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        // A is [m=2, k=3], B is [n=2, k=3].
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let c = matmul_a_bt(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![50.0, 68.0, 122.0, 167.0]);
    }

    #[test]
    fn into_variants_match_allocating_kernels_across_reused_buffers() {
        // One shared set of scratch/output buffers driven through differently
        // sized products must reproduce the allocating entry points exactly.
        let mut bt = Vec::new();
        let mut panel = Vec::new();
        for &(m, k, n, seed) in &[
            (3_usize, 5_usize, 4_usize, 0_usize),
            (6, 2, 7, 9),
            (1, 9, 1, 3),
        ] {
            let a = test_matrix(m, k, seed);
            let b_kn = test_matrix(k, n, seed + 1);
            let b_nk = test_matrix(n, k, seed + 2);
            let a_km = test_matrix(k, m, seed + 3);

            let mut out = vec![f32::NAN; m * n];
            matmul_a_bt_to_with(&a, &b_nk, m, k, n, &mut out, &mut bt, &mut panel);
            assert_bitwise_eq(&out, &matmul_a_bt(&a, &b_nk, m, k, n), "a_bt");

            let mut out = vec![f32::NAN; m * n];
            matmul_at_b_to(&a_km, &b_kn, k, m, n, &mut out);
            assert_bitwise_eq(&out, &matmul_at_b(&a_km, &b_kn, k, m, n), "at_b");
        }
    }

    #[test]
    fn col2im_into_reuses_buffer_and_matches_col2im() {
        let t = Tensor::from_fn(&[2, 5, 4], |i| (i as f32) * 0.3 - 2.0);
        let mut out = Tensor::from_vec(vec![f32::NAN; 3], &[3]).unwrap();
        for &(stride, padding) in &[(1_usize, 1_usize), (2, 0)] {
            let cols = t.im2col((3, 3), stride, padding).unwrap();
            Tensor::col2im_into(&cols, 2, 5, 4, (3, 3), stride, padding, &mut out).unwrap();
            let fresh = Tensor::col2im(&cols, 2, 5, 4, (3, 3), stride, padding).unwrap();
            assert_eq!(out, fresh);
        }
    }

    #[test]
    fn im2col_identity_kernel_reproduces_input() {
        let t = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[1, 3, 3]).unwrap();
        let cols = t.im2col((1, 1), 1, 0).unwrap();
        assert_eq!(cols.rows, 1);
        assert_eq!(cols.cols, 9);
        assert_eq!(cols.data, t.as_slice());
    }

    #[test]
    fn im2col_3x3_same_padding_geometry() {
        let t = Tensor::ones(&[3, 32, 32]);
        let cols = t.im2col((3, 3), 1, 1).unwrap();
        assert_eq!(cols.rows, 3 * 9);
        assert_eq!(cols.out_h, 32);
        assert_eq!(cols.out_w, 32);
    }

    #[test]
    fn im2col_rejects_non_3d() {
        let t = Tensor::zeros(&[4, 4]);
        assert!(t.im2col((3, 3), 1, 1).is_err());
    }

    proptest! {
        /// The stride-1 row-run col2im fast path accumulates bitwise
        /// identically to the bounds-checked reference scatter (inlined
        /// here), across paddings, kernel sizes and ragged maps.
        #[test]
        fn col2im_stride1_fast_path_bitwise_equals_reference(
            h in 3_usize..8,
            w in 3_usize..8,
            k in 1_usize..4,
            padding in 0_usize..2,
            seed in 0_usize..1000,
        ) {
            let channels = 2;
            let (_, _, _, out_h, out_w) =
                im2col_geometry(&[channels, h, w], (k, k), 1, padding).unwrap();
            let cols = Im2Col {
                data: test_matrix(channels * k * k, out_h * out_w, seed),
                rows: channels * k * k,
                cols: out_h * out_w,
                out_h,
                out_w,
            };
            let mut fast = Tensor::default();
            Tensor::col2im_into(&cols, channels, h, w, (k, k), 1, padding, &mut fast).unwrap();
            // Reference: the general bounds-checked scatter.
            let mut reference = Tensor::zeros(&[channels, h, w]);
            for ci in 0..channels {
                for ki in 0..k {
                    for kj in 0..k {
                        let row_base = (ci * k * k + ki * k + kj) * cols.cols;
                        for oy in 0..out_h {
                            let iy = (oy + ki) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for ox in 0..out_w {
                                let ix = (ox + kj) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let idx = ci * h * w + iy as usize * w + ix as usize;
                                reference.data[idx] += cols.data[row_base + oy * out_w + ox];
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(fast.shape(), reference.shape());
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    proptest! {
        /// The fused matmul + col2im scatter is bitwise identical to the
        /// unfused reference (`matmul_at_b_to` over the un-transposed weights
        /// followed by `col2im_into`) across ragged geometries, strides,
        /// paddings and gradient matrices whose inactive columns hold planted
        /// exact `±0.0` — with the scratch buffers reused across cases.
        #[test]
        fn matmul_scatter_col2im_bitwise_equals_unfused_reference(
            h in 3_usize..8,
            w in 3_usize..8,
            kk in 1_usize..4,
            stride in 1_usize..3,
            padding in 0_usize..2,
            oc in 1_usize..6,
            seed in 0_usize..1000,
            keep in proptest::collection::vec(any::<bool>(), 64),
            negzero in any::<bool>(),
        ) {
            let channels = 2;
            let (_, _, _, out_h, out_w) =
                im2col_geometry(&[channels, h, w], (kk, kk), stride, padding).unwrap();
            let n = out_h * out_w;
            let rows = channels * kk * kk;
            // Weights [oc, rows] with exact zeros, and their transpose.
            let weight = test_matrix(oc, rows, seed);
            let mut wt = vec![0.0_f32; rows * oc];
            for (o, w_row) in weight.chunks_exact(rows).enumerate() {
                for (p, &v) in w_row.iter().enumerate() {
                    wt[p * oc + o] = v;
                }
            }
            // Gradient [oc, n]: inactive columns are forced to exact ±0.0.
            let mut go = test_matrix(oc, n, seed + 3);
            let active: Vec<u32> = (0..n).filter(|s| keep[s % keep.len()]).map(|s| s as u32).collect();
            for (s, row_s) in (0..n).flat_map(|s| (0..oc).map(move |o| (s, o * n + s))) {
                if !keep[s % keep.len()] {
                    go[row_s] = if negzero { -0.0 } else { 0.0 };
                }
            }
            // Unfused reference: full matmul + col2im over every column.
            let mut grad_cols = Im2Col {
                data: vec![0.0; rows * n],
                rows,
                cols: n,
                out_h,
                out_w,
            };
            matmul_at_b_to(&weight, &go, oc, rows, n, &mut grad_cols.data);
            let mut reference = Tensor::default();
            Tensor::col2im_into(
                &grad_cols, channels, h, w, (kk, kk), stride, padding, &mut reference,
            ).unwrap();
            // Fused kernel over the active columns only.
            let mut packed = Vec::new();
            let mut pos = Vec::new();
            let mut tile = Vec::new();
            let mut fused = vec![f32::NAN; channels * h * w];
            matmul_scatter_col2im(
                &wt, &go, &active, oc, n, channels, h, w, (kk, kk), stride, padding,
                out_w, &mut packed, &mut pos, &mut tile, &mut fused,
            );
            for (i, (x, y)) in fused.iter().zip(reference.as_slice().iter()).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "cell {} diverges: {} vs {}", i, x, y);
            }
            // A fully-active column list goes down the no-pack fast path and
            // must agree too (the planted zero columns are then computed,
            // not skipped).
            let all: Vec<u32> = (0..n as u32).collect();
            let mut dense = vec![f32::NAN; channels * h * w];
            matmul_scatter_col2im(
                &wt, &go, &all, oc, n, channels, h, w, (kk, kk), stride, padding,
                out_w, &mut packed, &mut pos, &mut tile, &mut dense,
            );
            for (x, y) in dense.iter().zip(reference.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn matmul_scatter_col2im_empty_active_zeroes_output() {
        let wt = vec![1.0_f32; 4 * 2]; // channels=1, 2x2 kernel, oc=2
        let go = vec![0.0_f32; 2 * 4]; // 2x2 output map
        let mut packed = Vec::new();
        let mut pos = Vec::new();
        let mut tile = Vec::new();
        let mut out = vec![f32::NAN; 9]; // 1x3x3 input
        matmul_scatter_col2im(
            &wt,
            &go,
            &[],
            2,
            4,
            1,
            3,
            3,
            (2, 2),
            1,
            0,
            2,
            &mut packed,
            &mut pos,
            &mut tile,
            &mut out,
        );
        assert!(out.iter().all(|v| v.to_bits() == 0.0_f32.to_bits()));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_counting() {
        // col2im(im2col(x)) with an all-ones input counts how many receptive
        // fields each pixel participates in.
        let t = Tensor::ones(&[1, 4, 4]);
        let cols = t.im2col((3, 3), 1, 1).unwrap();
        let back = Tensor::col2im(&cols, 1, 4, 4, (3, 3), 1, 1).unwrap();
        // The centre pixels participate in 9 receptive fields.
        assert_eq!(back.get(&[0, 1, 1]).unwrap(), 9.0);
        // Corner pixels participate in 4.
        assert_eq!(back.get(&[0, 0, 0]).unwrap(), 4.0);
    }

    #[test]
    fn add_and_sub_operators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(!format!("{t}").is_empty());
    }
}
