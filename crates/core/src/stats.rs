//! Sparsity statistics and the layer-wise workload model (Eq. 3).
//!
//! The paper sizes its heterogeneous hardware from a per-layer workload model
//! derived from an empirical run of the trained network:
//!
//! ```text
//! W_CONV = F × C_out × Σ_i S_i          (Eq. 3)
//! W_FC   = N × S
//! ```
//!
//! where `F` is the number of filter coefficients per input channel position
//! (9 for 3×3 kernels), `C_out` the number of output channels, `S_i` the
//! number of spikes arriving from input feature map `i`, `N` the number of FC
//! output neurons and `S` the total number of input spikes. This module
//! computes those workloads from a [`crate::network::LayerTrace`]
//! collection and offers the quantization-vs-sparsity comparisons used in
//! Fig. 1.

use crate::network::LayerTrace;
use crate::spike::SpikeRecord;
use serde::{Deserialize, Serialize};

/// Workload of one weight layer as defined by Eq. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer name.
    pub name: String,
    /// `true` for convolution layers.
    pub is_conv: bool,
    /// Filter coefficients per spike event (`F` for conv, fan-out for FC).
    pub coefficients: u64,
    /// Output channels (conv) or output neurons (FC).
    pub out_channels: u64,
    /// Total input spikes / events across all timesteps (`Σ S_i`).
    pub input_events: u64,
    /// The resulting workload in accumulate operations.
    pub operations: u64,
}

/// Computes the Eq. 3 workload of every weight layer from its run trace.
///
/// Layers without geometry (pooling) are skipped, matching the paper which
/// implements pooling as a free OR over spikes.
pub fn layer_workloads(traces: &[LayerTrace]) -> Vec<LayerWorkload> {
    traces
        .iter()
        .filter_map(|trace| {
            let geo = trace.geometry.as_ref()?;
            let input_events = trace.total_input_events();
            let (coefficients, operations) = if geo.is_conv {
                // Each input spike updates kernel×kernel neurons in each of the
                // C_out output feature maps.
                let f = (geo.kernel * geo.kernel) as u64;
                (f, f * geo.out_channels as u64 * input_events)
            } else {
                let n = geo.out_channels as u64;
                (n, n * input_events)
            };
            Some(LayerWorkload {
                name: trace.name.clone(),
                is_conv: geo.is_conv,
                coefficients,
                out_channels: geo.out_channels as u64,
                input_events,
                operations,
            })
        })
        .collect()
}

/// Total workload (sum of per-layer operations).
pub fn total_workload(workloads: &[LayerWorkload]) -> u64 {
    workloads.iter().map(|w| w.operations).sum()
}

/// Comparison of the spiking activity of two runs of the same network, used
/// to quantify the quantization-sparsity interplay of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityComparison {
    /// Name of the baseline run (e.g. `fp32`).
    pub baseline_name: String,
    /// Name of the comparison run (e.g. `int4`).
    pub variant_name: String,
    /// Total spikes in the baseline run.
    pub baseline_spikes: u64,
    /// Total spikes in the comparison run.
    pub variant_spikes: u64,
    /// Per-layer spike counts of the baseline run.
    pub baseline_per_layer: Vec<u64>,
    /// Per-layer spike counts of the comparison run.
    pub variant_per_layer: Vec<u64>,
    /// Layer names.
    pub layer_names: Vec<String>,
}

impl SparsityComparison {
    /// Builds a comparison from two spike records of the same network.
    pub fn new(
        baseline_name: impl Into<String>,
        baseline: &SpikeRecord,
        variant_name: impl Into<String>,
        variant: &SpikeRecord,
    ) -> Self {
        SparsityComparison {
            baseline_name: baseline_name.into(),
            variant_name: variant_name.into(),
            baseline_spikes: baseline.total_spikes(),
            variant_spikes: variant.total_spikes(),
            baseline_per_layer: baseline.output_spikes.clone(),
            variant_per_layer: variant.output_spikes.clone(),
            layer_names: baseline.layer_names.clone(),
        }
    }

    /// Relative spike reduction of the variant vs. the baseline, in percent.
    /// Positive values mean the variant spikes *less* (the paper reports
    /// 6.1% / 10.1% / 15.2% for int4 vs fp32).
    pub fn spike_reduction_percent(&self) -> f64 {
        if self.baseline_spikes == 0 {
            return 0.0;
        }
        (1.0 - self.variant_spikes as f64 / self.baseline_spikes as f64) * 100.0
    }

    /// Ratio of baseline to variant spikes (> 1 when the variant is sparser).
    pub fn spike_ratio(&self) -> f64 {
        if self.variant_spikes == 0 {
            return f64::INFINITY;
        }
        self.baseline_spikes as f64 / self.variant_spikes as f64
    }
}

/// Aggregated spike statistics over a set of inference runs (e.g. a test set),
/// as used to produce the Fig. 1 bars.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpikeStats {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Total spikes summed over runs.
    pub total_spikes: u64,
    /// Per-layer totals (index-aligned with `layer_names`).
    pub per_layer_spikes: Vec<u64>,
    /// Layer names.
    pub layer_names: Vec<String>,
    /// Number of correct predictions (for accuracy).
    pub correct: usize,
}

impl AggregateSpikeStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's record into the aggregate.
    pub fn add_run(&mut self, record: &SpikeRecord, correct: bool) {
        if self.layer_names.is_empty() {
            self.layer_names = record.layer_names.clone();
            self.per_layer_spikes = vec![0; record.num_layers()];
        }
        for (acc, &s) in self
            .per_layer_spikes
            .iter_mut()
            .zip(record.output_spikes.iter())
        {
            *acc += s;
        }
        self.total_spikes += record.total_spikes();
        self.runs += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Mean spikes per run.
    pub fn mean_spikes_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_spikes as f64 / self.runs as f64
        }
    }

    /// Classification accuracy over the aggregated runs, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.correct as f64 / self.runs as f64
        }
    }

    /// Mean per-layer spikes per run.
    pub fn mean_per_layer(&self) -> Vec<f64> {
        self.per_layer_spikes
            .iter()
            .map(|&s| {
                if self.runs == 0 {
                    0.0
                } else {
                    s as f64 / self.runs as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::network::{vgg9, Vgg9Config};
    use crate::tensor::Tensor;

    fn sample_traces() -> Vec<LayerTrace> {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.05).sin().abs());
        net.run(&image, &Encoder::direct(2)).unwrap().traces
    }

    #[test]
    fn workloads_cover_all_weight_layers() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        assert_eq!(w.len(), 9);
        assert!(w.iter().take(7).all(|l| l.is_conv));
        assert!(w.iter().skip(7).all(|l| !l.is_conv));
    }

    #[test]
    fn conv_workload_follows_eq3() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        for lw in w.iter().filter(|l| l.is_conv) {
            assert_eq!(
                lw.operations,
                lw.coefficients * lw.out_channels * lw.input_events
            );
            assert_eq!(lw.coefficients, 9);
        }
    }

    #[test]
    fn fc_workload_follows_eq3() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        for lw in w.iter().filter(|l| !l.is_conv) {
            assert_eq!(lw.operations, lw.out_channels * lw.input_events);
        }
    }

    #[test]
    fn total_workload_is_sum() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        assert_eq!(
            total_workload(&w),
            w.iter().map(|l| l.operations).sum::<u64>()
        );
    }

    #[test]
    fn sparsity_comparison_reports_reduction() {
        let mut base = SpikeRecord::new(2);
        base.push_layer("l1", 0, 1000, 2048);
        base.push_layer("l2", 0, 500, 1024);
        let mut variant = SpikeRecord::new(2);
        variant.push_layer("l1", 0, 850, 2048);
        variant.push_layer("l2", 0, 425, 1024);
        let cmp = SparsityComparison::new("fp32", &base, "int4", &variant);
        assert!((cmp.spike_reduction_percent() - 15.0).abs() < 1e-9);
        assert!((cmp.spike_ratio() - 1500.0 / 1275.0).abs() < 1e-9);
    }

    #[test]
    fn sparsity_comparison_handles_zero_baseline() {
        let base = SpikeRecord::new(1);
        let variant = SpikeRecord::new(1);
        let cmp = SparsityComparison::new("a", &base, "b", &variant);
        assert_eq!(cmp.spike_reduction_percent(), 0.0);
    }

    #[test]
    fn aggregate_accumulates_runs_and_accuracy() {
        let mut agg = AggregateSpikeStats::new();
        let mut rec = SpikeRecord::new(2);
        rec.push_layer("l1", 0, 100, 256);
        agg.add_run(&rec, true);
        agg.add_run(&rec, false);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.total_spikes, 200);
        assert_eq!(agg.accuracy(), 0.5);
        assert_eq!(agg.mean_spikes_per_run(), 100.0);
        assert_eq!(agg.mean_per_layer(), vec![100.0]);
    }
}
