//! Sparsity statistics and the layer-wise workload model (Eq. 3).
//!
//! The paper sizes its heterogeneous hardware from a per-layer workload model
//! derived from an empirical run of the trained network:
//!
//! ```text
//! W_CONV = F × C_out × Σ_i S_i          (Eq. 3)
//! W_FC   = N × S
//! ```
//!
//! where `F` is the number of filter coefficients per input channel position
//! (9 for 3×3 kernels), `C_out` the number of output channels, `S_i` the
//! number of spikes arriving from input feature map `i`, `N` the number of FC
//! output neurons and `S` the total number of input spikes. This module
//! computes those workloads from a [`crate::network::LayerTrace`]
//! collection and offers the quantization-vs-sparsity comparisons used in
//! Fig. 1.
//!
//! It also hosts [`LogHistogram`], a streaming fixed-log-bucket quantile
//! tracker shared by the serving layer (p50/p99 request latency) and, by
//! design, future per-session distribution-drift trackers.

use crate::network::LayerTrace;
use crate::spike::SpikeRecord;
use serde::{Deserialize, Serialize};

/// Sub-bucket resolution of [`LogHistogram`]: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `2^-SUB_BITS` (≈3.2%).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: the exact region
/// (`v < 2^SUB_BITS`) plus `64 - SUB_BITS` octaves of `SUB_BUCKETS` each.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// A streaming log-bucketed histogram with bounded-relative-error quantiles.
///
/// Values (typically latencies in nanoseconds or microseconds — the unit is
/// the caller's) are folded into a fixed array of `~1.9k` buckets: values
/// below `2^5` land in exact unit buckets, larger values in one of 32 linear
/// sub-buckets per power-of-two octave. Recording is an index computation
/// plus a counter increment — **no allocation, no branching on data size** —
/// so it is safe inside a serving hot path, and [`LogHistogram::quantile`]
/// is within a `2^-5` relative error of the true order statistic (proven
/// against a sorted-vector oracle in this module's tests).
///
/// Two histograms fold together with [`LogHistogram::merge`], so per-worker
/// trackers can be aggregated without locking the hot path. The same
/// structure is intended for distribution-drift tracking (per-layer
/// spike-rate distributions) as much as for latency.
///
/// # Example
///
/// ```
/// use snn_core::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for us in [120_u64, 80, 95, 3000, 110] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 3000);
/// // p50 is within 3.2% of the true median (110):
/// let p50 = h.quantile(0.5);
/// assert!((p50 as f64 - 110.0).abs() <= 110.0 / 32.0 + 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram. The one-off bucket-array allocation
    /// happens here; recording never allocates.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= SUB_BITS here
        let sub = (value >> (octave - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
        (octave - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
    }

    /// Inclusive upper bound of the values mapping to bucket `index`.
    fn bucket_upper(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (index % SUB_BUCKETS) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        (SUB_BUCKETS as u64 + sub)
            .saturating_mul(width)
            .saturating_add(width - 1)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`std::time::Duration`] in whole nanoseconds (saturating at
    /// `u64::MAX`, i.e. after ~584 years).
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (`0.0` when empty). Exact — the running
    /// sum is kept outside the buckets.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): an upper bound on the
    /// smallest recorded value `v` such that at least `ceil(q · count)`
    /// recorded values are `≤ v`, within one bucket width (relative error
    /// `≤ 2^-5`). Returns `0` when empty; `quantile(1.0)` is the exact
    /// maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (equivalent to having recorded
    /// both value streams into a single histogram).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded values without releasing the bucket array.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Removes one previously [`record`](LogHistogram::record)ed value,
    /// making the histogram a *sliding-window* structure when paired with a
    /// ring buffer of the values currently in the window (the drift tracker
    /// does exactly this). The bucket count, total count and sum are
    /// adjusted exactly; `min`/`max` keep **high-watermark semantics** (they
    /// are not recomputed — they still bound everything ever recorded).
    ///
    /// Forgetting a value that was never recorded saturates at zero instead
    /// of underflowing; the histogram stays internally consistent either
    /// way.
    pub fn forget(&mut self, value: u64) {
        let bucket = &mut self.counts[Self::index(value)];
        if *bucket == 0 || self.count == 0 {
            return;
        }
        *bucket -= 1;
        self.count -= 1;
        self.sum = self.sum.saturating_sub(value as u128);
    }

    /// Jeffreys pseudo-count added to every octave group by
    /// [`LogHistogram::kl_divergence`], so no probability is ever zero and
    /// the divergence is always finite.
    const KL_PSEUDO_COUNT: f64 = 0.5;

    /// Kullback–Leibler divergence `KL(self ‖ baseline)` in nats between
    /// the two histograms' value distributions, compared at **octave
    /// granularity**.
    ///
    /// Sub-buckets are folded into their power-of-two octave (60 groups
    /// over the full `u64` range) before comparing. The fine 3% sub-bucket
    /// resolution is right for quantiles but wrong for drift: with small
    /// sample windows, mass landing one sub-bucket away from where the
    /// baseline sampled would register as spurious divergence, while the
    /// distribution shifts that actually invalidate the accelerator's
    /// activity-calibrated estimates are ≥2× — a whole octave or more.
    ///
    /// Each group is smoothed with a Jeffreys pseudo-count
    /// (`KL_PSEUDO_COUNT`, 0.5) before normalisation, so the
    /// result is **always finite and never NaN** — including when one or
    /// both histograms are empty, when all mass sits in a single bucket
    /// (e.g. a layer with a zero spike rate recording only zeros), or when
    /// the supports are disjoint. Two empty histograms diverge by exactly
    /// `0.0`, and any histogram against itself by ~`0.0` (floating-point
    /// rounding only). Both guarantees are proptested.
    ///
    /// The drift tracker compares a sliding window of recent per-layer
    /// spike rates against a calibration baseline with this; a divergence
    /// above its threshold marks the model Degraded.
    pub fn kl_divergence(&self, baseline: &LogHistogram) -> f64 {
        if self.count == 0 && baseline.count == 0 {
            return 0.0;
        }
        const GROUPS: usize = BUCKETS / SUB_BUCKETS;
        let eps = Self::KL_PSEUDO_COUNT;
        let p_total = self.count as f64 + eps * GROUPS as f64;
        let q_total = baseline.count as f64 + eps * GROUPS as f64;
        let mut kl = 0.0;
        for (p_chunk, q_chunk) in self
            .counts
            .chunks_exact(SUB_BUCKETS)
            .zip(baseline.counts.chunks_exact(SUB_BUCKETS))
        {
            let p_count: u64 = p_chunk.iter().sum();
            let q_count: u64 = q_chunk.iter().sum();
            let p = (p_count as f64 + eps) / p_total;
            let q = (q_count as f64 + eps) / q_total;
            kl += p * (p / q).ln();
        }
        // Smoothing keeps every term finite; rounding can leave the sum a
        // hair below zero, which the clamp removes (KL is non-negative).
        kl.max(0.0)
    }
}

// ---------------------------------------------------------------------------
// Streaming spike-rate drift tracking
// ---------------------------------------------------------------------------

/// Fixed-point scale of a spike *rate* (spikes per neuron per timestep,
/// a fraction in `[0, 1]`) as recorded into a [`LogHistogram`]:
/// `rate_q = spikes * RATE_SCALE / (neurons * timesteps)`, i.e. spikes per
/// mebi-neuron-timestep. The log-bucketed histogram then resolves rates
/// down to ~1e-6 with bounded relative error.
pub const RATE_SCALE: u64 = 1 << 20;

/// Configuration of a [`DriftTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Runs folded into the calibration baseline before monitoring starts
    /// (default 32). The baseline freezes after this many observations.
    pub calibration: usize,
    /// Sliding-window length in runs compared against the baseline
    /// (default 64).
    pub window: usize,
    /// Minimum window fill before a drift verdict is rendered (default 16):
    /// below this, [`DriftStatus::drifted`] is always `false` so a couple
    /// of outlier runs cannot flap the health state.
    pub min_window: usize,
    /// KL-divergence threshold in nats above which a layer counts as
    /// drifted (default 0.5).
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            calibration: 32,
            window: 64,
            min_window: 16,
            threshold: 0.5,
        }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`crate::SnnError::InvalidConfig`] for a zero calibration, window or
    /// `min_window`, a `min_window` above the window, or a non-positive /
    /// non-finite threshold.
    pub fn validated(&self) -> Result<(), crate::SnnError> {
        if self.calibration == 0 {
            return Err(crate::SnnError::config(
                "calibration",
                "the drift baseline needs at least one calibration run",
            ));
        }
        if self.window == 0 || self.min_window == 0 || self.min_window > self.window {
            return Err(crate::SnnError::config(
                "window",
                format!(
                    "drift window must satisfy 1 <= min_window <= window, got min_window {} \
                     window {}",
                    self.min_window, self.window
                ),
            ));
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return Err(crate::SnnError::config(
                "threshold",
                format!(
                    "drift threshold must be a positive finite KL, got {}",
                    self.threshold
                ),
            ));
        }
        Ok(())
    }
}

/// Per-layer state of a [`DriftTracker`]: the frozen calibration histogram,
/// the sliding-window histogram, and the ring of quantized rates currently
/// in the window (so the oldest can be forgotten exactly).
#[derive(Debug, Clone)]
struct LayerDrift {
    name: String,
    baseline: LogHistogram,
    window: LogHistogram,
    /// Ring buffer of the window's quantized rates; capacity fixed at
    /// construction, so steady-state observation never allocates.
    ring: std::collections::VecDeque<u64>,
}

/// Drift verdict snapshot of a [`DriftTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftStatus {
    /// Whether the calibration baseline has frozen (monitoring is active).
    pub calibrated: bool,
    /// Total runs observed (calibration + monitored).
    pub observed: u64,
    /// Runs currently in the sliding window.
    pub window_fill: usize,
    /// Largest per-layer KL divergence of the window against the baseline
    /// (0.0 until the window holds `min_window` runs).
    pub max_kl: f64,
    /// Name of the layer with the largest divergence, when monitoring has
    /// a verdict.
    pub worst_layer: Option<String>,
    /// Whether `max_kl` exceeds the configured threshold.
    pub drifted: bool,
}

impl DriftStatus {
    fn idle(calibrated: bool, observed: u64, window_fill: usize) -> Self {
        DriftStatus {
            calibrated,
            observed,
            window_fill,
            max_kl: 0.0,
            worst_layer: None,
            drifted: false,
        }
    }
}

/// A streaming per-layer spike-rate drift tracker: the fidelity guard the
/// accelerator's latency/energy estimates need.
///
/// The hardware model folds per-layer spike counts into cycle and energy
/// estimates that were calibrated against a *particular* activity
/// distribution; if the serving traffic drifts (different input statistics,
/// a mis-trained hot-swapped model), those estimates silently stop meaning
/// anything. The tracker makes the drift observable:
///
/// 1. The first [`DriftConfig::calibration`] observed runs freeze a
///    per-layer **baseline** histogram of quantized spike rates
///    (spikes per neuron-timestep, scaled by [`RATE_SCALE`]).
/// 2. Every later run is folded into a per-layer **sliding window**
///    (ring-buffered, [`LogHistogram::forget`]ting the oldest run — no
///    allocation in steady state).
/// 3. [`DriftTracker::status`] reports the largest per-layer
///    [`LogHistogram::kl_divergence`] of window vs. baseline; above
///    [`DriftConfig::threshold`] the run stream counts as **drifted** and
///    the serving registry flips the model's health to Degraded.
///
/// Layer topology is learned from the first observation; later records with
/// a different layer count are ignored (a swapped model gets a fresh
/// tracker via [`DriftTracker::reset`]).
///
/// # Example
///
/// ```
/// use snn_core::spike::SpikeRecord;
/// use snn_core::stats::{DriftConfig, DriftTracker};
///
/// let config = DriftConfig { calibration: 4, window: 8, min_window: 4, threshold: 0.5 };
/// let mut tracker = DriftTracker::new(config).unwrap();
/// let mut record = SpikeRecord::new(2);
/// record.push_layer("conv1", 0, 100, 1024);
/// for _ in 0..4 {
///     tracker.observe(&record); // calibration
/// }
/// for _ in 0..8 {
///     tracker.observe(&record); // monitored window, same distribution
/// }
/// let status = tracker.status();
/// assert!(status.calibrated);
/// assert!(!status.drifted);
/// assert!(status.max_kl < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct DriftTracker {
    config: DriftConfig,
    layers: Vec<LayerDrift>,
    observed: u64,
    calibrating_seen: usize,
    /// Cached verdict, recomputed on observe (so health transitions happen
    /// on the serving path, not only when somebody polls `/v1/stats`).
    current: DriftStatus,
}

impl DriftTracker {
    /// Creates a tracker in the calibrating state.
    ///
    /// # Errors
    ///
    /// Propagates [`DriftConfig::validated`].
    pub fn new(config: DriftConfig) -> Result<Self, crate::SnnError> {
        config.validated()?;
        Ok(DriftTracker {
            current: DriftStatus::idle(false, 0, 0),
            config,
            layers: Vec::new(),
            observed: 0,
            calibrating_seen: 0,
        })
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Quantizes one layer's spike rate for histogram recording.
    fn rate_q(spikes: u64, neurons: u64, timesteps: usize) -> u64 {
        let slots = neurons.saturating_mul(timesteps as u64).max(1);
        spikes.saturating_mul(RATE_SCALE) / slots
    }

    /// Folds one run's per-layer spike record into the tracker. Records
    /// with no layers (stub models) or a layer count different from the
    /// calibrated topology are ignored.
    pub fn observe(&mut self, record: &SpikeRecord) {
        if record.num_layers() == 0 {
            return;
        }
        if self.layers.is_empty() {
            self.layers = record
                .layer_names
                .iter()
                .map(|name| LayerDrift {
                    name: name.clone(),
                    baseline: LogHistogram::new(),
                    window: LogHistogram::new(),
                    ring: std::collections::VecDeque::with_capacity(self.config.window),
                })
                .collect();
        } else if self.layers.len() != record.num_layers() {
            return;
        }
        self.observed += 1;
        let calibrating = self.calibrating_seen < self.config.calibration;
        for (layer, ((&spikes, &neurons), _)) in self.layers.iter_mut().zip(
            record
                .output_spikes
                .iter()
                .zip(record.output_neurons.iter())
                .zip(record.layer_names.iter()),
        ) {
            let rate = Self::rate_q(spikes, neurons, record.timesteps);
            if calibrating {
                layer.baseline.record(rate);
            } else {
                if layer.ring.len() == self.config.window {
                    if let Some(oldest) = layer.ring.pop_front() {
                        layer.window.forget(oldest);
                    }
                }
                layer.ring.push_back(rate);
                layer.window.record(rate);
            }
        }
        if calibrating {
            self.calibrating_seen += 1;
        }
        self.current = self.compute_status();
    }

    fn compute_status(&self) -> DriftStatus {
        let calibrated = self.calibrating_seen >= self.config.calibration;
        let window_fill = self.layers.first().map_or(0, |l| l.ring.len());
        if !calibrated || window_fill < self.config.min_window {
            return DriftStatus::idle(calibrated, self.observed, window_fill);
        }
        let mut max_kl = 0.0_f64;
        let mut worst: Option<&str> = None;
        for layer in &self.layers {
            let kl = layer.window.kl_divergence(&layer.baseline);
            if kl > max_kl || worst.is_none() {
                max_kl = kl;
                worst = Some(&layer.name);
            }
        }
        DriftStatus {
            calibrated,
            observed: self.observed,
            window_fill,
            max_kl,
            worst_layer: worst.map(str::to_string),
            drifted: max_kl > self.config.threshold,
        }
    }

    /// The current drift verdict (cached from the last
    /// [`DriftTracker::observe`]).
    pub fn status(&self) -> DriftStatus {
        self.current.clone()
    }

    /// Forgets everything — baseline, window and topology — returning the
    /// tracker to the calibrating state. The serving registry calls this on
    /// every hot-swap and rollback: the baseline describes one deployed
    /// version's steady state, so a new (or restored) version recalibrates
    /// against its own traffic rather than inheriting a stale baseline.
    pub fn reset(&mut self) {
        self.layers.clear();
        self.observed = 0;
        self.calibrating_seen = 0;
        self.current = DriftStatus::idle(false, 0, 0);
    }
}

/// Workload of one weight layer as defined by Eq. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer name.
    pub name: String,
    /// `true` for convolution layers.
    pub is_conv: bool,
    /// Filter coefficients per spike event (`F` for conv, fan-out for FC).
    pub coefficients: u64,
    /// Output channels (conv) or output neurons (FC).
    pub out_channels: u64,
    /// Total input spikes / events across all timesteps (`Σ S_i`).
    pub input_events: u64,
    /// The resulting workload in accumulate operations.
    pub operations: u64,
}

/// Computes the Eq. 3 workload of every weight layer from its run trace.
///
/// Layers without geometry (pooling) are skipped, matching the paper which
/// implements pooling as a free OR over spikes.
pub fn layer_workloads(traces: &[LayerTrace]) -> Vec<LayerWorkload> {
    traces
        .iter()
        .filter_map(|trace| {
            let geo = trace.geometry.as_ref()?;
            let input_events = trace.total_input_events();
            let (coefficients, operations) = if geo.is_conv {
                // Each input spike updates kernel×kernel neurons in each of the
                // C_out output feature maps.
                let f = (geo.kernel * geo.kernel) as u64;
                (f, f * geo.out_channels as u64 * input_events)
            } else {
                let n = geo.out_channels as u64;
                (n, n * input_events)
            };
            Some(LayerWorkload {
                name: trace.name.clone(),
                is_conv: geo.is_conv,
                coefficients,
                out_channels: geo.out_channels as u64,
                input_events,
                operations,
            })
        })
        .collect()
}

/// Total workload (sum of per-layer operations).
pub fn total_workload(workloads: &[LayerWorkload]) -> u64 {
    workloads.iter().map(|w| w.operations).sum()
}

/// Comparison of the spiking activity of two runs of the same network, used
/// to quantify the quantization-sparsity interplay of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityComparison {
    /// Name of the baseline run (e.g. `fp32`).
    pub baseline_name: String,
    /// Name of the comparison run (e.g. `int4`).
    pub variant_name: String,
    /// Total spikes in the baseline run.
    pub baseline_spikes: u64,
    /// Total spikes in the comparison run.
    pub variant_spikes: u64,
    /// Per-layer spike counts of the baseline run.
    pub baseline_per_layer: Vec<u64>,
    /// Per-layer spike counts of the comparison run.
    pub variant_per_layer: Vec<u64>,
    /// Layer names.
    pub layer_names: Vec<String>,
}

impl SparsityComparison {
    /// Builds a comparison from two spike records of the same network.
    pub fn new(
        baseline_name: impl Into<String>,
        baseline: &SpikeRecord,
        variant_name: impl Into<String>,
        variant: &SpikeRecord,
    ) -> Self {
        SparsityComparison {
            baseline_name: baseline_name.into(),
            variant_name: variant_name.into(),
            baseline_spikes: baseline.total_spikes(),
            variant_spikes: variant.total_spikes(),
            baseline_per_layer: baseline.output_spikes.clone(),
            variant_per_layer: variant.output_spikes.clone(),
            layer_names: baseline.layer_names.clone(),
        }
    }

    /// Relative spike reduction of the variant vs. the baseline, in percent.
    /// Positive values mean the variant spikes *less* (the paper reports
    /// 6.1% / 10.1% / 15.2% for int4 vs fp32).
    pub fn spike_reduction_percent(&self) -> f64 {
        if self.baseline_spikes == 0 {
            return 0.0;
        }
        (1.0 - self.variant_spikes as f64 / self.baseline_spikes as f64) * 100.0
    }

    /// Ratio of baseline to variant spikes (> 1 when the variant is sparser).
    pub fn spike_ratio(&self) -> f64 {
        if self.variant_spikes == 0 {
            return f64::INFINITY;
        }
        self.baseline_spikes as f64 / self.variant_spikes as f64
    }
}

/// Aggregated spike statistics over a set of inference runs (e.g. a test set),
/// as used to produce the Fig. 1 bars.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpikeStats {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Total spikes summed over runs.
    pub total_spikes: u64,
    /// Per-layer totals (index-aligned with `layer_names`).
    pub per_layer_spikes: Vec<u64>,
    /// Layer names.
    pub layer_names: Vec<String>,
    /// Number of correct predictions (for accuracy).
    pub correct: usize,
}

impl AggregateSpikeStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's record into the aggregate.
    pub fn add_run(&mut self, record: &SpikeRecord, correct: bool) {
        if self.layer_names.is_empty() {
            self.layer_names = record.layer_names.clone();
            self.per_layer_spikes = vec![0; record.num_layers()];
        }
        for (acc, &s) in self
            .per_layer_spikes
            .iter_mut()
            .zip(record.output_spikes.iter())
        {
            *acc += s;
        }
        self.total_spikes += record.total_spikes();
        self.runs += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Mean spikes per run.
    pub fn mean_spikes_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_spikes as f64 / self.runs as f64
        }
    }

    /// Classification accuracy over the aggregated runs, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.correct as f64 / self.runs as f64
        }
    }

    /// Mean per-layer spikes per run.
    pub fn mean_per_layer(&self) -> Vec<f64> {
        self.per_layer_spikes
            .iter()
            .map(|&s| {
                if self.runs == 0 {
                    0.0
                } else {
                    s as f64 / self.runs as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::network::{vgg9, Vgg9Config};
    use crate::tensor::Tensor;
    use proptest::prelude::*;

    fn sample_traces() -> Vec<LayerTrace> {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.05).sin().abs());
        net.run(&image, &Encoder::direct(2)).unwrap().traces
    }

    #[test]
    fn workloads_cover_all_weight_layers() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        assert_eq!(w.len(), 9);
        assert!(w.iter().take(7).all(|l| l.is_conv));
        assert!(w.iter().skip(7).all(|l| !l.is_conv));
    }

    #[test]
    fn conv_workload_follows_eq3() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        for lw in w.iter().filter(|l| l.is_conv) {
            assert_eq!(
                lw.operations,
                lw.coefficients * lw.out_channels * lw.input_events
            );
            assert_eq!(lw.coefficients, 9);
        }
    }

    #[test]
    fn fc_workload_follows_eq3() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        for lw in w.iter().filter(|l| !l.is_conv) {
            assert_eq!(lw.operations, lw.out_channels * lw.input_events);
        }
    }

    #[test]
    fn total_workload_is_sum() {
        let traces = sample_traces();
        let w = layer_workloads(&traces);
        assert_eq!(
            total_workload(&w),
            w.iter().map(|l| l.operations).sum::<u64>()
        );
    }

    #[test]
    fn sparsity_comparison_reports_reduction() {
        let mut base = SpikeRecord::new(2);
        base.push_layer("l1", 0, 1000, 2048);
        base.push_layer("l2", 0, 500, 1024);
        let mut variant = SpikeRecord::new(2);
        variant.push_layer("l1", 0, 850, 2048);
        variant.push_layer("l2", 0, 425, 1024);
        let cmp = SparsityComparison::new("fp32", &base, "int4", &variant);
        assert!((cmp.spike_reduction_percent() - 15.0).abs() < 1e-9);
        assert!((cmp.spike_ratio() - 1500.0 / 1275.0).abs() < 1e-9);
    }

    #[test]
    fn sparsity_comparison_handles_zero_baseline() {
        let base = SpikeRecord::new(1);
        let variant = SpikeRecord::new(1);
        let cmp = SparsityComparison::new("a", &base, "b", &variant);
        assert_eq!(cmp.spike_reduction_percent(), 0.0);
    }

    /// Sorted-vector oracle for the `q`-quantile under the histogram's
    /// definition (smallest value with at least `ceil(q·n)` values ≤ it).
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    fn assert_quantiles_close(h: &LogHistogram, sorted: &[u64]) {
        for &q in &[0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let got = h.quantile(q);
            let want = oracle_quantile(sorted, q);
            // One log-bucket of relative slack (2^-5), plus 1 for the
            // exact-integer region.
            let slack = want / 32 + 1;
            assert!(
                got >= want.saturating_sub(slack) && got <= want + slack,
                "q={q}: histogram {got} vs oracle {want} (slack {slack})"
            );
        }
    }

    #[test]
    fn log_histogram_matches_oracle_on_log_uniform_values() {
        // Deterministic SplitMix-style stream spanning ~9 decades.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut h = LogHistogram::new();
        let mut values = Vec::new();
        for _ in 0..10_000 {
            let magnitude = next() % 30; // exponent in [0, 30)
            let v = (next() % 1000) << magnitude;
            h.record(v);
            values.push(v);
        }
        values.sort_unstable();
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), values[0]);
        assert_eq!(h.max(), *values.last().unwrap());
        let exact_mean = values.iter().map(|&v| v as u128).sum::<u128>() as f64 / 10_000.0;
        assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        assert_quantiles_close(&h, &values);
    }

    #[test]
    fn log_histogram_is_exact_below_32() {
        let mut h = LogHistogram::new();
        let values: Vec<u64> = (0..32).flat_map(|v| std::iter::repeat_n(v, 3)).collect();
        for &v in &values {
            h.record(v);
        }
        for &q in &[0.1, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), oracle_quantile(&values, q), "q={q}");
        }
    }

    #[test]
    fn log_histogram_merge_equals_combined_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * i * 37 + 11;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn log_histogram_empty_and_reset() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(42);
        h.record_duration(std::time::Duration::from_nanos(7));
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 7);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h, LogHistogram::new());
    }

    #[test]
    fn log_histogram_handles_extreme_values() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn forget_round_trips_record() {
        let mut h = LogHistogram::new();
        let values = [0u64, 3, 31, 32, 1000, u64::MAX];
        for &v in &values {
            h.record(v);
        }
        let snapshot = h.clone();
        h.record(77);
        h.forget(77);
        assert_eq!(h.count(), snapshot.count());
        assert_eq!(h.sum, snapshot.sum);
        assert_eq!(h.counts, snapshot.counts);
        // Forgetting a value that was never recorded is a no-op.
        h.forget(12345);
        assert_eq!(h.counts, snapshot.counts);
        for &v in &values {
            h.forget(v);
        }
        assert!(h.is_empty());
        assert_eq!(h.sum, 0);
    }

    #[test]
    fn kl_divergence_zero_for_identical_and_empty() {
        let empty = LogHistogram::new();
        assert_eq!(empty.kl_divergence(&empty), 0.0);
        let mut h = LogHistogram::new();
        for v in [5u64, 9, 9, 1000, 4096] {
            h.record(v);
        }
        let kl = h.kl_divergence(&h.clone());
        assert!(kl.abs() < 1e-9, "self-KL should be ~0, got {kl}");
    }

    #[test]
    fn kl_divergence_finite_on_disjoint_and_one_empty() {
        let mut low = LogHistogram::new();
        let mut high = LogHistogram::new();
        for _ in 0..100 {
            low.record(1);
            high.record(1 << 40);
        }
        let kl = low.kl_divergence(&high);
        assert!(
            kl.is_finite() && kl > 0.0,
            "disjoint KL should be finite positive, got {kl}"
        );
        let empty = LogHistogram::new();
        assert!(low.kl_divergence(&empty).is_finite());
        assert!(empty.kl_divergence(&low).is_finite());
        assert!(empty.kl_divergence(&low) >= 0.0);
    }

    #[test]
    fn kl_divergence_separates_shifted_from_matching() {
        let mut baseline = LogHistogram::new();
        let mut same = LogHistogram::new();
        let mut shifted = LogHistogram::new();
        for i in 0..200u64 {
            baseline.record(1000 + i % 50);
            same.record(1000 + (i * 7) % 50);
            shifted.record(8000 + i % 50);
        }
        let kl_same = same.kl_divergence(&baseline);
        let kl_shifted = shifted.kl_divergence(&baseline);
        assert!(
            kl_same < kl_shifted,
            "same {kl_same} vs shifted {kl_shifted}"
        );
        assert!(kl_shifted > 0.5);
    }

    fn drift_record(timesteps: usize, spikes: &[u64]) -> SpikeRecord {
        let mut rec = SpikeRecord::new(timesteps);
        for (i, &s) in spikes.iter().enumerate() {
            rec.push_layer(format!("layer{i}"), 0, s, 1024);
        }
        rec
    }

    fn small_drift_config() -> DriftConfig {
        DriftConfig {
            calibration: 8,
            window: 16,
            min_window: 8,
            threshold: 0.5,
        }
    }

    #[test]
    fn drift_config_rejects_degenerate_values() {
        assert!(DriftConfig::default().validated().is_ok());
        let bad = |f: fn(&mut DriftConfig)| {
            let mut c = DriftConfig::default();
            f(&mut c);
            c.validated().is_err()
        };
        assert!(bad(|c| c.calibration = 0));
        assert!(bad(|c| c.window = 0));
        assert!(bad(|c| c.min_window = 0));
        assert!(bad(|c| c.min_window = c.window + 1));
        assert!(bad(|c| c.threshold = 0.0));
        assert!(bad(|c| c.threshold = f64::NAN));
        assert!(bad(|c| c.threshold = -1.0));
    }

    #[test]
    fn drift_tracker_stays_healthy_on_stationary_traffic() {
        let mut tracker = DriftTracker::new(small_drift_config()).unwrap();
        for i in 0..64u64 {
            tracker.observe(&drift_record(4, &[400 + i % 16, 90 + i % 8]));
        }
        let status = tracker.status();
        assert!(status.calibrated);
        assert_eq!(status.observed, 64);
        assert!(!status.drifted, "stationary traffic flagged: {status:?}");
        assert!(status.max_kl.is_finite());
        assert!(status.worst_layer.is_some());
    }

    #[test]
    fn drift_tracker_flags_shift_and_names_layer_then_reset_clears() {
        let mut tracker = DriftTracker::new(small_drift_config()).unwrap();
        // Calibrate + settle on a stationary distribution.
        for i in 0..32u64 {
            tracker.observe(&drift_record(4, &[400 + i % 16, 90 + i % 8]));
        }
        assert!(!tracker.status().drifted);
        // Layer 1's rate collapses by 10x — within one window, flagged.
        for i in 0..16u64 {
            tracker.observe(&drift_record(4, &[400 + i % 16, 9 + i % 2]));
        }
        let status = tracker.status();
        assert!(status.drifted, "shift not flagged: {status:?}");
        assert!(status.max_kl > 0.5);
        assert_eq!(status.worst_layer.as_deref(), Some("layer1"));
        // Reset (swap/rollback semantics) returns to calibrating, undrifted.
        tracker.reset();
        let status = tracker.status();
        assert!(!status.calibrated);
        assert!(!status.drifted);
        assert_eq!(status.observed, 0);
    }

    #[test]
    fn drift_tracker_ignores_empty_and_mismatched_records() {
        let mut tracker = DriftTracker::new(small_drift_config()).unwrap();
        tracker.observe(&SpikeRecord::new(4));
        assert_eq!(tracker.status().observed, 0);
        tracker.observe(&drift_record(4, &[100, 50]));
        tracker.observe(&drift_record(4, &[100])); // topology mismatch
        assert_eq!(tracker.status().observed, 1);
    }

    #[test]
    fn drift_tracker_zero_rate_layers_never_nan() {
        // An entirely silent layer (zero spikes) through calibration and
        // monitoring must never produce a NaN/∞ KL — the epsilon floor at
        // the histogram level guarantees it.
        let mut tracker = DriftTracker::new(small_drift_config()).unwrap();
        for _ in 0..64 {
            tracker.observe(&drift_record(4, &[0, 0]));
        }
        let status = tracker.status();
        assert!(status.max_kl.is_finite());
        assert!(!status.max_kl.is_nan());
        assert!(!status.drifted);
    }

    proptest! {
        /// KL divergence between any two histograms built from arbitrary
        /// value streams — including empty streams and all-zero (silent
        /// layer) streams — is always finite, never NaN, and non-negative:
        /// the epsilon floor's contract for the drift path.
        #[test]
        fn kl_divergence_always_finite_nonnegative(
            p_values in proptest::collection::vec(0u64..u64::MAX, 0..64),
            q_values in proptest::collection::vec(0u64..u64::MAX, 0..64),
        ) {
            let mut p = LogHistogram::new();
            let mut q = LogHistogram::new();
            for &v in &p_values {
                p.record(v);
            }
            for &v in &q_values {
                q.record(v);
            }
            for (a, b) in [(&p, &q), (&q, &p), (&p, &p), (&q, &q)] {
                let kl = a.kl_divergence(b);
                prop_assert!(kl.is_finite(), "KL not finite: {kl}");
                prop_assert!(!kl.is_nan(), "KL is NaN");
                prop_assert!(kl >= 0.0, "KL negative: {kl}");
            }
        }

        /// Recording then forgetting a batch of values restores the exact
        /// bucket state, making the ring-buffered sliding window exact.
        #[test]
        fn forget_is_exact_inverse_of_record(
            base in proptest::collection::vec(0u64..u64::MAX, 0..32),
            transient in proptest::collection::vec(0u64..u64::MAX, 1..32),
        ) {
            let mut h = LogHistogram::new();
            for &v in &base {
                h.record(v);
            }
            let counts_before = h.counts.clone();
            let count_before = h.count();
            for &v in &transient {
                h.record(v);
            }
            for &v in &transient {
                h.forget(v);
            }
            prop_assert_eq!(h.counts, counts_before);
            prop_assert_eq!(h.count(), count_before);
        }
    }

    #[test]
    fn aggregate_accumulates_runs_and_accuracy() {
        let mut agg = AggregateSpikeStats::new();
        let mut rec = SpikeRecord::new(2);
        rec.push_layer("l1", 0, 100, 256);
        agg.add_run(&rec, true);
        agg.add_run(&rec, false);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.total_spikes, 200);
        assert_eq!(agg.accuracy(), 0.5);
        assert_eq!(agg.mean_spikes_per_run(), 100.0);
        assert_eq!(agg.mean_per_layer(), vec![100.0]);
    }
}
