//! Adversarial spike-pattern generators and bitwise assertion helpers shared
//! by the differential-oracle test harnesses.
//!
//! The word-scan kernels ([`SpikePlane::iter_active`], the event paths of
//! `Conv2d`/`Linear`/`SpikeMaxPool2d`) are proven against two retained
//! oracles — the index-list walk and the dense f32 reference — by asserting
//! **bit-for-bit** equality on planes engineered to hit every mask-word edge
//! case: empty and full words, a single bit per word, runs straddling the
//! 63/64 and 127/128 word boundaries, ragged tails (`len % 64 != 0`) and
//! planted `±0.0` activations (nonzero to the sparse views, invisible to a
//! sum accumulated from `+0.0`).
//!
//! This module is part of the library (not `#[cfg(test)]`) so integration
//! tests of downstream crates — `snn-train`'s backward harness, the engine's
//! end-to-end suite — generate the *same* corpus instead of each hand-rolling
//! a weaker one. It is deliberately dependency-free: deterministic closures
//! over [`splitmix64`], no proptest. Proptest harnesses
//! layer random shapes/seeds *on top of* these generators.

use crate::spike::{scan_words, SpikePlane};
use crate::splitmix64;
use crate::tensor::Tensor;

/// A named binary mask over `len` cells — one adversarial spike pattern.
#[derive(Debug, Clone)]
pub struct MaskCase {
    /// What the pattern stresses (shows up in assertion messages).
    pub name: &'static str,
    /// One entry per cell; `true` = spike.
    pub mask: Vec<bool>,
}

/// The adversarial mask corpus for a plane of `len` cells.
///
/// Deterministic — same `len` and `seed` always yield the same corpus; vary
/// `seed` (e.g. from a proptest strategy) to move the pseudorandom members.
///
/// # Examples
///
/// ```
/// use snn_core::test_support::adversarial_masks;
/// let corpus = adversarial_masks(100, 0);
/// assert!(corpus.iter().any(|c| c.name == "straddle-63-64"));
/// assert!(corpus.iter().all(|c| c.mask.len() == 100));
/// ```
pub fn adversarial_masks(len: usize, seed: u64) -> Vec<MaskCase> {
    let mut corpus = Vec::new();
    let mut push = |name: &'static str, f: &dyn Fn(usize) -> bool| {
        corpus.push(MaskCase {
            name,
            mask: (0..len).map(f).collect(),
        });
    };
    push("empty", &|_| false);
    push("full", &|_| true);
    push("first-and-last", &|i| i == 0 || i + 1 == len);
    // Exactly one bit per mask word, alternating between the word's lowest
    // and highest in-range bit.
    push("single-bit-per-word", &|i| {
        if (i / 64) % 2 == 0 {
            i % 64 == 0
        } else {
            i % 64 == 63 || i + 1 == len
        }
    });
    // Dense runs straddling the first and second word boundaries.
    push("straddle-63-64", &|i| (62..=65).contains(&i));
    push("straddle-127-128", &|i| (126..=129).contains(&i));
    // Every bit of the final (possibly partial) word: the ragged tail.
    push("ragged-tail", &|i| i >= (len.saturating_sub(1) / 64) * 64);
    push("alternating", &|i| i % 2 == 0);
    // Pseudorandom fills at sparse / balanced / near-full densities.
    for (name, thresh) in [
        ("hash-5pct", 50_u64),
        ("hash-50pct", 500),
        ("hash-95pct", 950),
    ] {
        corpus.push(MaskCase {
            name,
            mask: (0..len)
                .map(|i| splitmix64(seed ^ (i as u64).wrapping_mul(0x9e37)) % 1000 < thresh)
                .collect(),
        });
    }
    corpus
}

/// Builds a binary [`SpikePlane`] for `mask` via the dense-assign path
/// ([`SpikePlane::assign`]), which derives the index list and mask words by
/// scanning the dense tensor.
///
/// # Panics
///
/// Panics if `mask.len()` differs from the product of `shape`.
pub fn plane_from_mask(shape: &[usize], mask: &[bool]) -> SpikePlane {
    assert_eq!(mask.len(), shape.iter().product::<usize>(), "mask length");
    let dense = Tensor::from_fn(shape, |i| f32::from(mask[i]));
    SpikePlane::from_tensor(&dense)
}

/// Builds the same plane via the incremental event path
/// ([`SpikePlane::begin`] + [`SpikePlane::push`]) — the route the LIF
/// populations and encoders take. Differential harnesses build each case
/// both ways and assert the two planes are equal.
///
/// # Panics
///
/// Panics if `mask.len()` differs from the product of `shape`.
pub fn plane_from_mask_pushed(shape: &[usize], mask: &[bool]) -> SpikePlane {
    assert_eq!(mask.len(), shape.iter().product::<usize>(), "mask length");
    let mut plane = SpikePlane::new();
    plane.begin(shape);
    for (i, &on) in mask.iter().enumerate() {
        if on {
            plane.push(i);
        }
    }
    plane
}

/// A dense analog tensor with planted exact `+0.0` and `-0.0` cells — the
/// regime where "nonzero to the sparse views" and "invisible to a sum" must
/// be kept distinct. Used for gradient frames and analog-plane inputs.
pub fn planted_zero_tensor(shape: &[usize], seed: u64) -> Tensor {
    Tensor::from_fn(shape, |i| {
        let h = splitmix64(seed ^ (i as u64).wrapping_mul(0x85eb)) % 1000;
        if h < 150 {
            0.0
        } else if h < 300 {
            -0.0
        } else {
            (h as f32 - 600.0) * 1e-3
        }
    })
}

/// Asserts the three views of a [`SpikePlane`] agree exactly:
///
/// * the mask words hold `len.div_ceil(64)` entries and every bit at or
///   beyond `len` in the final word is zero (the tail-word invariant);
/// * word-scanning the mask words yields the ascending index list;
/// * the index list is exactly the positions where the dense backing is
///   nonzero, and [`SpikePlane::count_active`] (a popcount) matches.
///
/// # Panics
///
/// Panics with `ctx` in the message when any view disagrees.
pub fn assert_plane_views_agree(plane: &SpikePlane, ctx: &str) {
    let len = plane.len();
    let words = plane.as_words();
    assert_eq!(words.len(), len.div_ceil(64), "{ctx}: word count");
    if !len.is_multiple_of(64) {
        if let Some(&tail) = words.last() {
            assert_eq!(tail >> (len % 64), 0, "{ctx}: tail bits beyond len set");
        }
    }
    let scanned: Vec<usize> = scan_words(words).collect();
    let listed: Vec<usize> = plane.active().iter().map(|&i| i as usize).collect();
    assert_eq!(scanned, listed, "{ctx}: word scan vs index list");
    let dense_nonzero: Vec<usize> = plane
        .dense()
        .as_slice()
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| (v != 0.0).then_some(i))
        .collect();
    assert_eq!(listed, dense_nonzero, "{ctx}: index list vs dense backing");
    assert_eq!(plane.count_active(), listed.len(), "{ctx}: popcount");
}

/// Asserts two tensors are equal **bit for bit** (`f32::to_bits`), so
/// `-0.0 != +0.0` and NaN payloads count — the equality the differential
/// oracles are held to.
///
/// # Panics
///
/// Panics with `ctx`, the cell index and both values on any mismatch.
pub fn assert_tensor_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: cell {i}: {x:?} vs {y:?} differ bitwise"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_hits_the_advertised_edge_cases() {
        let len = 130; // two full words + a 2-bit ragged tail
        let corpus = adversarial_masks(len, 7);
        let get = |name: &str| {
            &corpus
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing case {name}"))
                .mask
        };
        assert!(get("empty").iter().all(|&b| !b));
        assert!(get("full").iter().all(|&b| b));
        assert_eq!(
            get("straddle-63-64")
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect::<Vec<_>>(),
            vec![62, 63, 64, 65]
        );
        // Ragged tail covers exactly the final partial word.
        assert_eq!(
            get("ragged-tail")
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect::<Vec<_>>(),
            vec![128, 129]
        );
        // Deterministic: the same seed reproduces the corpus.
        let again = adversarial_masks(len, 7);
        for (a, b) in corpus.iter().zip(again.iter()) {
            assert_eq!(a.mask, b.mask, "{} not deterministic", a.name);
        }
    }

    #[test]
    fn both_construction_paths_agree_on_every_corpus_case() {
        let shape = [2_usize, 9, 9]; // len 162: ragged tail
        let len: usize = shape.iter().product();
        for case in adversarial_masks(len, 3) {
            let assigned = plane_from_mask(&shape, &case.mask);
            let pushed = plane_from_mask_pushed(&shape, &case.mask);
            assert_eq!(assigned, pushed, "{}: assign vs push", case.name);
            assert_plane_views_agree(&assigned, case.name);
            assert_plane_views_agree(&pushed, case.name);
        }
    }

    #[test]
    fn planted_zero_tensor_contains_both_zero_signs() {
        let t = planted_zero_tensor(&[256], 1);
        let pos = t.as_slice().iter().filter(|v| v.to_bits() == 0).count();
        let neg = t
            .as_slice()
            .iter()
            .filter(|v| v.to_bits() == (-0.0_f32).to_bits())
            .count();
        assert!(pos > 0 && neg > 0, "corpus lost its planted zeros");
    }

    #[test]
    #[should_panic(expected = "differ bitwise")]
    fn bitwise_assert_distinguishes_zero_signs() {
        let pos = Tensor::from_vec(vec![0.0_f32], &[1]).unwrap();
        let neg = Tensor::from_vec(vec![-0.0_f32], &[1]).unwrap();
        // `0.0 == -0.0` under IEEE comparison; the oracle must still reject.
        assert_tensor_bits_eq(&pos, &neg, "signed zero");
    }
}
