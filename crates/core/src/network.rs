//! Network container and the paper's VGG9 model builders.
//!
//! The evaluated network is (Sec. V-A):
//!
//! ```text
//! 64C3 - 112C3 - MP2 - 192C3 - 216C3 - MP2 - 480C3 - 504C3 - 560C3 - MP2 - 1064 - P
//! ```
//!
//! i.e. seven 3×3 convolutions interleaved with three 2×2 spike max-pooling
//! stages, one hidden fully-connected layer of 1064 neurons and a population
//! output layer of `P` neurons (`P = 1000` for SVHN/CIFAR-10, `P = 5000` for
//! CIFAR-100). Every weight layer is followed by a LIF activation
//! ([`crate::neuron::LifPopulation`]); classification reads out the total
//! spike count of each class's share of the population layer.
//!
//! [`SnnNetwork::run`] performs direct- or rate-coded inference over `T`
//! timesteps and returns both the classification result and the per-layer
//! spike traces that drive the accelerator simulator and the workload model.
//!
//! Weights and run state are split: [`SnnNetwork`] is immutable during
//! inference and can be shared across threads, while all mutable state
//! (membrane potentials, firing history, im2col scratch) lives in a
//! [`RunState`] that [`SnnNetwork::run_with_state`] resets and reuses across
//! runs. The `snn` facade crate's `Engine`/`Session` API builds directly on
//! this split.

use crate::encoding::{CodingScheme, Encoder};
use crate::error::SnnError;
use crate::layers::{BatchNorm2d, Conv2d, ConvScratch, Linear, SpikeMaxPool2d};
use crate::neuron::{LifParams, LifPopulation};
use crate::quant::Precision;
use crate::spike::{SpikePlane, SpikeRecord, SpikeVolume};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One stage of the network.
// The conv/linear variants intentionally carry their (large) weight tensors
// inline: layers are long-lived and iterated in sequence, so boxing would
// only add indirection on the hot forward path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Spiking convolution: conv → (optional BN) → LIF.
    Conv {
        /// Layer name in the paper's nomenclature (e.g. `CONV1_1`).
        name: String,
        /// The convolution weights.
        conv: Conv2d,
        /// Optional batch normalisation (training only; fold for inference).
        bn: Option<BatchNorm2d>,
    },
    /// Spike max-pooling.
    Pool {
        /// Layer name (e.g. `MP1`).
        name: String,
        /// The pooling operator.
        pool: SpikeMaxPool2d,
    },
    /// Spiking fully-connected layer: linear → LIF.
    Linear {
        /// Layer name (e.g. `FC1`, `FC_OUT`).
        name: String,
        /// The linear weights.
        linear: Linear,
    },
}

impl Layer {
    /// The layer's name.
    pub fn name(&self) -> &str {
        match self {
            Layer::Conv { name, .. } | Layer::Pool { name, .. } | Layer::Linear { name, .. } => {
                name
            }
        }
    }

    /// Whether this layer has trainable weights (conv or linear).
    pub fn is_weight_layer(&self) -> bool {
        !matches!(self, Layer::Pool { .. })
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Conv { conv, bn, .. } => {
                conv.num_params() + bn.as_ref().map_or(0, |b| 2 * b.channels())
            }
            Layer::Linear { linear, .. } => linear.num_params(),
            Layer::Pool { .. } => 0,
        }
    }
}

/// Static geometry of one weight layer, used by the accelerator's workload
/// model and resource allocator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerGeometry {
    /// Layer name (paper nomenclature).
    pub name: String,
    /// `true` for convolutions, `false` for fully-connected layers.
    pub is_conv: bool,
    /// Input channels (conv) or input features (FC).
    pub in_channels: usize,
    /// Output channels (conv) or output features (FC).
    pub out_channels: usize,
    /// Input feature-map height (1 for FC).
    pub in_height: usize,
    /// Input feature-map width (1 for FC).
    pub in_width: usize,
    /// Output feature-map height (1 for FC).
    pub out_height: usize,
    /// Output feature-map width (1 for FC).
    pub out_width: usize,
    /// Square kernel size (1 for FC).
    pub kernel: usize,
    /// Number of weights (excluding bias).
    pub weight_count: usize,
}

impl LayerGeometry {
    /// Number of filter coefficients contributing to one output neuron
    /// (`F` in Eq. 3): `in_channels * k * k` for conv, `in_features` for FC.
    pub fn coefficients_per_output(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of output neurons (`C_out * H_out * W_out`).
    pub fn output_neurons(&self) -> usize {
        self.out_channels * self.out_height * self.out_width
    }
}

/// Per-layer trace of one inference run: spike counts per timestep and the
/// binary output volumes needed by the event-driven simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Geometry of the layer (only present for weight layers).
    pub geometry: Option<LayerGeometry>,
    /// Non-zero input events entering this layer at each timestep. For the
    /// direct-coded input layer these are analog pixels, for every other
    /// layer they are binary spikes.
    pub input_events: Vec<u64>,
    /// Output spikes leaving this layer at each timestep.
    pub output_spikes: Vec<u64>,
    /// Number of output neurons.
    pub output_neurons: u64,
    /// Binary output spike volume (timestep-major), present for weight layers.
    pub spikes: Option<SpikeVolume>,
}

impl LayerTrace {
    /// Total input events across timesteps.
    pub fn total_input_events(&self) -> u64 {
        self.input_events.iter().sum()
    }

    /// Total output spikes across timesteps.
    pub fn total_output_spikes(&self) -> u64 {
        self.output_spikes.iter().sum()
    }
}

/// Result of one inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutput {
    /// Per-class scores (total spike count of each class's population group).
    pub logits: Vec<f32>,
    /// Index of the predicted class.
    pub prediction: usize,
    /// Per-layer spike record (summed over timesteps).
    pub record: SpikeRecord,
    /// Detailed per-layer traces.
    pub traces: Vec<LayerTrace>,
    /// Number of timesteps simulated.
    pub timesteps: usize,
}

/// Mutable per-run state of one inference stream, split out from the
/// (immutable, shareable) [`SnnNetwork`] weights.
///
/// Holds the per-layer LIF populations (membrane potentials and firing
/// history) and every scratch buffer of the event-driven inference loop: the
/// encoder's frame planes, the ping-pong [`SpikePlane`] pair activations flow
/// through, the membrane-current tensor, and the conv layers' shared
/// im2col/matmul-panel/gather scratch. A `RunState` is created once per session/thread
/// via [`RunState::new`] and reused across runs by
/// [`SnnNetwork::run_with_state`], which resets it between images instead of
/// reallocating — after the first image of a batch the steady-state loop
/// performs no heap allocation. This is the enabler for batched and parallel
/// inference over one shared network.
#[derive(Debug, Clone)]
pub struct RunState {
    /// Per-layer LIF state, index-aligned with the network's layers
    /// (`None` for pooling layers).
    lif: Vec<Option<LifPopulation>>,
    /// Shared im2col + event-gather scratch, reused by every conv layer.
    conv_scratch: ConvScratch,
    /// Membrane-current buffer every conv/linear layer writes into.
    current: Tensor,
    /// Cache of the first layer's membrane currents under direct coding,
    /// where every timestep presents the identical analog frame: the (dense,
    /// most expensive) input-layer forward is computed once per image and
    /// replayed at the remaining timesteps.
    first_current: Tensor,
    /// Ping-pong spike planes activations flow through, one layer at a time.
    plane_a: SpikePlane,
    plane_b: SpikePlane,
    /// Encoded input frames of the image being processed.
    frames: Vec<SpikePlane>,
}

impl RunState {
    /// Preallocates run state (membranes, firing history, scratch) for
    /// `network`.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors for inconsistent layer shapes.
    pub fn new(network: &SnnNetwork) -> Result<Self, SnnError> {
        let geometry = network.geometry()?;
        let mut geo_iter = geometry.iter();
        let lif = network
            .layers()
            .iter()
            .map(|layer| {
                if layer.is_weight_layer() {
                    let geo = geo_iter
                        .next()
                        .expect("geometry has one entry per weight layer");
                    Some(LifPopulation::new(
                        geo.output_neurons(),
                        network.lif_params(),
                    ))
                } else {
                    None
                }
            })
            .collect();
        Ok(RunState {
            lif,
            conv_scratch: ConvScratch::new(),
            current: Tensor::zeros(&[0]),
            first_current: Tensor::zeros(&[0]),
            plane_a: SpikePlane::new(),
            plane_b: SpikePlane::new(),
            frames: Vec::new(),
        })
    }

    /// Returns membranes and firing history to the rest state and clears the
    /// spike statistics, making the next run independent of the previous one.
    /// Allocations are kept.
    pub fn reset(&mut self) {
        for pop in self.lif.iter_mut().flatten() {
            pop.reset();
            pop.reset_statistics();
        }
    }
}

/// A feed-forward spiking network: a sequence of [`Layer`]s, each weight layer
/// followed by a shared-parameter LIF population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnnNetwork {
    layers: Vec<Layer>,
    lif: LifParams,
    input_shape: [usize; 3],
    num_classes: usize,
    population: usize,
}

impl SnnNetwork {
    /// Creates a network from parts.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the population size is not a
    /// positive multiple of the class count, or the layer list is empty or
    /// does not end in a linear layer of `population` outputs.
    pub fn new(
        layers: Vec<Layer>,
        lif: LifParams,
        input_shape: [usize; 3],
        num_classes: usize,
        population: usize,
    ) -> Result<Self, SnnError> {
        if num_classes == 0 || population == 0 || !population.is_multiple_of(num_classes) {
            return Err(SnnError::config(
                "population",
                "population must be a positive multiple of the class count",
            ));
        }
        match layers.last() {
            Some(Layer::Linear { linear, .. }) if linear.out_features() == population => {}
            _ => {
                return Err(SnnError::config(
                    "layers",
                    "network must end in a linear layer with `population` outputs",
                ))
            }
        }
        Ok(SnnNetwork {
            layers,
            lif,
            input_shape,
            num_classes,
            population,
        })
    }

    /// The layer sequence.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer sequence (used by the trainer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// The shared LIF hyper-parameters.
    pub fn lif_params(&self) -> LifParams {
        self.lif
    }

    /// Expected input shape `[C, H, W]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Size of the output population layer.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Geometry of every weight layer, in network order.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer shapes are inconsistent.
    pub fn geometry(&self) -> Result<Vec<LayerGeometry>, SnnError> {
        let mut shape = self.input_shape;
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Conv { name, conv, .. } => {
                    let out_shape = conv.output_shape(&shape)?;
                    out.push(LayerGeometry {
                        name: name.clone(),
                        is_conv: true,
                        in_channels: conv.in_channels(),
                        out_channels: conv.out_channels(),
                        in_height: shape[1],
                        in_width: shape[2],
                        out_height: out_shape[1],
                        out_width: out_shape[2],
                        kernel: conv.kernel(),
                        weight_count: conv.weight().len(),
                    });
                    shape = out_shape;
                }
                Layer::Pool { pool, .. } => {
                    shape = pool.output_shape(&shape)?;
                }
                Layer::Linear { name, linear, .. } => {
                    out.push(LayerGeometry {
                        name: name.clone(),
                        is_conv: false,
                        in_channels: linear.in_features(),
                        out_channels: linear.out_features(),
                        in_height: 1,
                        in_width: 1,
                        out_height: 1,
                        out_width: 1,
                        kernel: 1,
                        weight_count: linear.weight().len(),
                    });
                    shape = [linear.out_features(), 1, 1];
                }
            }
        }
        Ok(out)
    }

    /// Replaces every conv/linear layer's weights with their fake-quantized
    /// version at `precision` (a no-op for [`Precision::Fp32`]). This is how a
    /// QAT-trained model is materialised for quantized inference.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn apply_precision(&mut self, precision: Precision) -> Result<(), SnnError> {
        for layer in &mut self.layers {
            match layer {
                Layer::Conv { conv, .. } => *conv = conv.to_precision(precision)?,
                Layer::Linear { linear, .. } => *linear = linear.to_precision(precision)?,
                Layer::Pool { .. } => {}
            }
        }
        Ok(())
    }

    /// Folds every batch-norm layer into its preceding convolution and
    /// removes it, producing the inference-time network the hardware runs.
    ///
    /// # Errors
    ///
    /// Propagates folding failures.
    pub fn fold_batchnorm(&mut self) -> Result<(), SnnError> {
        for layer in &mut self.layers {
            if let Layer::Conv { conv, bn, .. } = layer {
                if let Some(b) = bn.take() {
                    *conv = b.fold_into_conv(conv)?;
                }
            }
        }
        Ok(())
    }

    /// Runs inference on one image with the given encoder, collecting
    /// per-layer spike traces.
    ///
    /// Weights are immutable during inference (`&self`): concurrent runs only
    /// need their own [`RunState`]. For repeated inference prefer
    /// [`SnnNetwork::run_with_state`], which amortizes the LIF-state and
    /// im2col allocations across runs.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the image does not match the network's input
    /// shape, or any layer-level error encountered during the forward pass.
    pub fn run(&self, image: &Tensor, encoder: &Encoder) -> Result<RunOutput, SnnError> {
        self.run_seeded(image, encoder, 0)
    }

    /// Like [`SnnNetwork::run`] but with an explicit seed for the (stochastic)
    /// rate encoder.
    ///
    /// # Errors
    ///
    /// Same as [`SnnNetwork::run`].
    pub fn run_seeded(
        &self,
        image: &Tensor,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<RunOutput, SnnError> {
        let mut state = RunState::new(self)?;
        self.run_with_state(image, encoder, seed, &mut state)
    }

    /// Runs one inference reusing a preallocated [`RunState`] (membrane
    /// potentials, spike history and im2col scratch). This is the hot path
    /// behind the facade crate's `Session::run`/`run_batch`: the state is
    /// reset — not reallocated — between images, so batched inference does
    /// not pay the per-run allocation cost of [`SnnNetwork::run_seeded`].
    ///
    /// Results are bitwise-identical to [`SnnNetwork::run_seeded`] with the
    /// same image, encoder and seed.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the image does not match the network's input
    /// shape or the state was built for a different network, plus any
    /// layer-level error encountered during the forward pass.
    pub fn run_with_state(
        &self,
        image: &Tensor,
        encoder: &Encoder,
        seed: u64,
        state: &mut RunState,
    ) -> Result<RunOutput, SnnError> {
        if image.shape() != self.input_shape {
            return Err(SnnError::shape(
                &self.input_shape,
                image.shape(),
                "SnnNetwork::run input image",
            ));
        }
        if state.lif.len() != self.layers.len() {
            return Err(SnnError::shape(
                &[self.layers.len()],
                &[state.lif.len()],
                "RunState layer count",
            ));
        }
        state.reset();
        encoder.encode_planes_into(image, seed, &mut state.frames)?;
        let timesteps = state.frames.len();
        let geometry = self.geometry()?;

        // Per-layer accumulators. Conv spike volumes are preallocated and
        // filled bit-by-bit from the event lists as the run progresses (the
        // old loop cloned every spike tensor and converted them afterwards).
        let mut input_events: Vec<Vec<u64>> = vec![vec![0; timesteps]; self.layers.len()];
        let mut output_spikes: Vec<Vec<u64>> = vec![vec![0; timesteps]; self.layers.len()];
        let mut output_neurons: Vec<u64> = vec![0; self.layers.len()];
        let mut class_scores = vec![0.0_f32; self.num_classes];
        let group = self.population / self.num_classes;
        let mut volumes: Vec<Option<SpikeVolume>> = {
            let mut geo_iter = geometry.iter();
            self.layers
                .iter()
                .map(|layer| {
                    let geo = if layer.is_weight_layer() {
                        geo_iter.next()
                    } else {
                        None
                    };
                    match (layer, geo) {
                        (Layer::Conv { .. }, Some(g)) => Some(SpikeVolume::new(
                            timesteps,
                            g.out_channels,
                            g.out_height,
                            g.out_width,
                        )),
                        _ => None,
                    }
                })
                .collect()
        };

        // The event-driven loop: activations flow through the two ping-pong
        // spike planes (`src` holds the current layer's input, `dst` receives
        // its output), with the encoder's frame as the first layer's input at
        // each timestep. Conv/linear layers dispatch between the gather-based
        // event path and the dense im2col fallback; all scratch lives in the
        // RunState, so the steady-state loop allocates nothing.
        let RunState {
            lif,
            conv_scratch,
            current,
            first_current,
            plane_a,
            plane_b,
            frames,
        } = state;
        // Direct coding presents the identical analog frame at every
        // timestep, so the first layer's (stateless) conv + BN output is the
        // same each step: compute it at t = 0 and replay it afterwards. Only
        // the LIF populations carry state across timesteps.
        let replay_first = encoder.scheme == CodingScheme::Direct && timesteps > 1;
        let mut src: &mut SpikePlane = plane_a;
        let mut dst: &mut SpikePlane = plane_b;
        for (t, frame) in frames.iter().enumerate() {
            for (li, layer) in self.layers.iter().enumerate() {
                let input: &SpikePlane = if li == 0 { frame } else { src };
                input_events[li][t] = input.count_active() as u64;
                match layer {
                    Layer::Conv { conv, bn, .. } => {
                        let cur: &Tensor = if li == 0 && replay_first {
                            if t == 0 {
                                conv.forward_plane_into(input, conv_scratch, first_current)?;
                                if let Some(b) = bn {
                                    b.forward_inplace(first_current)?;
                                }
                            }
                            first_current
                        } else {
                            conv.forward_plane_into(input, conv_scratch, current)?;
                            if let Some(b) = bn {
                                b.forward_inplace(current)?;
                            }
                            current
                        };
                        let lif_state = lif[li].as_mut().ok_or_else(|| {
                            SnnError::config("state", "RunState missing LIF state for conv layer")
                        })?;
                        let spikes = lif_state.step_plane(cur, dst)?;
                        output_spikes[li][t] = spikes as u64;
                        output_neurons[li] = dst.len() as u64;
                        if let Some(vol) = &mut volumes[li] {
                            // Word-scan the plane's mask words straight into
                            // the per-channel SpikeTrain words.
                            let per_map = vol.neurons_per_map();
                            for flat in dst.iter_active() {
                                vol.train_mut(t, flat / per_map).set(flat % per_map, true);
                            }
                        }
                    }
                    Layer::Pool { pool, .. } => {
                        pool.forward_plane(input, dst)?;
                        output_spikes[li][t] = dst.count_active() as u64;
                        output_neurons[li] = dst.len() as u64;
                    }
                    Layer::Linear { linear, .. } => {
                        let cur: &Tensor = if li == 0 && replay_first {
                            if t == 0 {
                                linear.forward_plane_into(input, first_current)?;
                            }
                            first_current
                        } else {
                            linear.forward_plane_into(input, current)?;
                            current
                        };
                        let lif_state = lif[li].as_mut().ok_or_else(|| {
                            SnnError::config("state", "RunState missing LIF state for linear layer")
                        })?;
                        let spikes = lif_state.step_plane(cur, dst)?;
                        output_spikes[li][t] = spikes as u64;
                        output_neurons[li] = dst.len() as u64;
                    }
                }
                std::mem::swap(&mut src, &mut dst);
            }
            // Population readout: accumulate output-layer spikes per class.
            // After the final swap, `src` holds the output layer's spikes.
            let out = src.dense().as_slice();
            for (class, score) in class_scores.iter_mut().enumerate() {
                let start = class * group;
                let end = start + group;
                *score += out[start..end.min(out.len())].iter().sum::<f32>();
            }
        }

        // Assemble the record and traces.
        let mut record = SpikeRecord::new(timesteps);
        let mut traces = Vec::with_capacity(self.layers.len());
        let mut geo_iter = geometry.into_iter();
        for ((li, layer), volume) in self.layers.iter().enumerate().zip(volumes) {
            let geo = if layer.is_weight_layer() {
                geo_iter.next()
            } else {
                None
            };
            record.push_layer(
                layer.name(),
                input_events[li].iter().sum(),
                output_spikes[li].iter().sum(),
                output_neurons[li],
            );
            traces.push(LayerTrace {
                name: layer.name().to_string(),
                geometry: geo,
                input_events: input_events[li].clone(),
                output_spikes: output_spikes[li].clone(),
                output_neurons: output_neurons[li],
                spikes: volume,
            });
        }

        let prediction = class_scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(RunOutput {
            logits: class_scores,
            prediction,
            record,
            traces,
            timesteps,
        })
    }
}

/// Configuration of the paper's VGG9 model (or a scaled-down variant).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vgg9Config {
    /// Human-readable dataset / model name.
    pub name: String,
    /// Input channels (3 for RGB images).
    pub in_channels: usize,
    /// Square input image size (32 for the paper's datasets).
    pub image_size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Output population size `P` (must be a multiple of `num_classes`).
    pub population: usize,
    /// Output channels of the seven convolution layers.
    pub conv_channels: [usize; 7],
    /// Hidden FC layer width (1064 in the paper).
    pub fc_hidden: usize,
    /// Random seed for weight initialisation.
    pub seed: u64,
}

impl Vgg9Config {
    /// Paper-scale configuration for CIFAR-10 (`P = 1000`).
    pub fn cifar10() -> Self {
        Vgg9Config {
            name: "cifar10".to_string(),
            in_channels: 3,
            image_size: 32,
            num_classes: 10,
            population: 1000,
            conv_channels: [64, 112, 192, 216, 480, 504, 560],
            fc_hidden: 1064,
            seed: 10,
        }
    }

    /// Paper-scale configuration for CIFAR-100 (`P = 5000`).
    pub fn cifar100() -> Self {
        Vgg9Config {
            name: "cifar100".to_string(),
            num_classes: 100,
            population: 5000,
            seed: 100,
            ..Vgg9Config::cifar10()
        }
    }

    /// Paper-scale configuration for SVHN (`P = 1000`).
    pub fn svhn() -> Self {
        Vgg9Config {
            name: "svhn".to_string(),
            seed: 37,
            ..Vgg9Config::cifar10()
        }
    }

    /// A scaled-down CIFAR-10-like configuration for unit tests, doc tests and
    /// quick training runs (16×16 inputs, narrow layers, 10 classes).
    pub fn cifar10_small() -> Self {
        Vgg9Config {
            name: "cifar10-small".to_string(),
            in_channels: 3,
            image_size: 16,
            num_classes: 10,
            population: 40,
            conv_channels: [8, 8, 16, 16, 24, 24, 32],
            fc_hidden: 64,
            seed: 7,
        }
    }

    /// A scaled-down CIFAR-100-like configuration (100 classes).
    pub fn cifar100_small() -> Self {
        Vgg9Config {
            name: "cifar100-small".to_string(),
            num_classes: 100,
            population: 200,
            seed: 70,
            ..Vgg9Config::cifar10_small()
        }
    }

    /// A scaled-down SVHN-like configuration.
    pub fn svhn_small() -> Self {
        Vgg9Config {
            name: "svhn-small".to_string(),
            seed: 77,
            ..Vgg9Config::cifar10_small()
        }
    }

    /// Layer names in the paper's nomenclature, index-aligned with the nine
    /// weight layers of the VGG9 network.
    pub fn layer_names() -> [&'static str; 9] {
        [
            "CONV1_1", "CONV1_2", "CONV2_1", "CONV2_2", "CONV3_1", "CONV3_2", "CONV3_3", "FC1",
            "FC_OUT",
        ]
    }
}

/// Builds the VGG9 network described by `cfg` with Kaiming-initialised
/// weights, batch normalisation after every convolution and the paper's LIF
/// hyper-parameters.
///
/// # Errors
///
/// Returns configuration errors if the geometry is inconsistent (e.g. the
/// image is too small for three pooling stages).
pub fn vgg9(cfg: &Vgg9Config) -> Result<SnnNetwork, SnnError> {
    vgg9_with_lif(cfg, LifParams::paper_default())
}

/// Like [`vgg9`] but with explicit LIF hyper-parameters.
///
/// # Errors
///
/// Same as [`vgg9`].
pub fn vgg9_with_lif(cfg: &Vgg9Config, lif: LifParams) -> Result<SnnNetwork, SnnError> {
    if !cfg.image_size.is_multiple_of(8) {
        return Err(SnnError::config(
            "image_size",
            "image size must be divisible by 8 (three 2x2 pooling stages)",
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let names = Vgg9Config::layer_names();
    let c = cfg.conv_channels;
    let mut layers = Vec::new();
    let mut in_c = cfg.in_channels;
    // Block 1: CONV1_1, CONV1_2, MP.
    for (i, &out_c) in c.iter().enumerate() {
        let conv = Conv2d::with_kaiming_init(in_c, out_c, 3, 1, 1, &mut rng)?;
        layers.push(Layer::Conv {
            name: names[i].to_string(),
            conv,
            bn: Some(BatchNorm2d::new(out_c)?),
        });
        in_c = out_c;
        // Pool after CONV1_2 (index 1), CONV2_2 (index 3), CONV3_3 (index 6).
        if i == 1 || i == 3 || i == 6 {
            layers.push(Layer::Pool {
                name: format!("MP{}", [1, 0, 2, 0, 0, 0, 3][i.min(6)]),
                pool: SpikeMaxPool2d::new(2)?,
            });
        }
    }
    let final_map = cfg.image_size / 8;
    let flat = c[6] * final_map * final_map;
    layers.push(Layer::Linear {
        name: names[7].to_string(),
        linear: Linear::with_kaiming_init(flat, cfg.fc_hidden, &mut rng)?,
    });
    layers.push(Layer::Linear {
        name: names[8].to_string(),
        linear: Linear::with_kaiming_init(cfg.fc_hidden, cfg.population, &mut rng)?,
    });
    SnnNetwork::new(
        layers,
        lif,
        [cfg.in_channels, cfg.image_size, cfg.image_size],
        cfg.num_classes,
        cfg.population,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;

    #[test]
    fn vgg9_small_builds_with_nine_weight_layers() {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let weight_layers = net.layers().iter().filter(|l| l.is_weight_layer()).count();
        assert_eq!(weight_layers, 9);
        let pools = net.layers().iter().filter(|l| !l.is_weight_layer()).count();
        assert_eq!(pools, 3);
        assert!(net.num_params() > 0);
    }

    #[test]
    fn vgg9_paper_scale_geometry_matches_structure_string() {
        let net = vgg9(&Vgg9Config::cifar10()).unwrap();
        let geo = net.geometry().unwrap();
        assert_eq!(geo.len(), 9);
        assert_eq!(geo[0].out_channels, 64);
        assert_eq!(geo[1].out_channels, 112);
        assert_eq!(geo[6].out_channels, 560);
        // After three MP2 stages the 32x32 map is 4x4.
        assert_eq!(geo[6].out_height, 8);
        assert_eq!(geo[7].in_channels, 560 * 4 * 4);
        assert_eq!(geo[7].out_channels, 1064);
        assert_eq!(geo[8].out_channels, 1000);
        // CONV1_1 sees the full-resolution input.
        assert_eq!(geo[0].in_height, 32);
        assert_eq!(geo[0].coefficients_per_output(), 27);
    }

    #[test]
    fn vgg9_rejects_bad_image_size() {
        let mut cfg = Vgg9Config::cifar10_small();
        cfg.image_size = 20;
        assert!(vgg9(&cfg).is_err());
    }

    #[test]
    fn network_new_validates_population() {
        let cfg = Vgg9Config::cifar10_small();
        let net = vgg9(&cfg).unwrap();
        // Rebuild with a bad population.
        let layers = net.layers().to_vec();
        assert!(SnnNetwork::new(layers.clone(), LifParams::default(), [3, 16, 16], 10, 0).is_err());
        assert!(
            SnnNetwork::new(layers.clone(), LifParams::default(), [3, 16, 16], 10, 41).is_err()
        );
        assert!(SnnNetwork::new(layers, LifParams::default(), [3, 16, 16], 10, 40).is_ok());
    }

    #[test]
    fn run_direct_coding_produces_traces_for_every_layer() {
        let cfg = Vgg9Config::cifar10_small();
        let net = vgg9(&cfg).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.017).sin().abs());
        let out = net.run(&image, &Encoder::direct(2)).unwrap();
        assert_eq!(out.logits.len(), 10);
        assert_eq!(out.timesteps, 2);
        assert_eq!(out.traces.len(), net.layers().len());
        assert_eq!(out.record.num_layers(), net.layers().len());
        // The direct-coded input layer sees analog inputs at every timestep.
        assert_eq!(out.traces[0].input_events.len(), 2,);
        assert!(out.traces[0].total_input_events() > 0);
        // Conv layers carry spike volumes.
        assert!(out.traces[0].spikes.is_some());
        assert!(out.prediction < 10);
    }

    #[test]
    fn run_rejects_wrong_image_shape() {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::zeros(&[3, 32, 32]);
        assert!(net.run(&image, &Encoder::direct(2)).is_err());
    }

    #[test]
    fn rate_coding_run_is_binary_at_input() {
        let cfg = Vgg9Config::cifar10_small();
        let net = vgg9(&cfg).unwrap();
        let image = Tensor::full(&[3, 16, 16], 0.5);
        let out = net.run_seeded(&image, &Encoder::rate(3), 5).unwrap();
        assert_eq!(out.timesteps, 3);
        // Input events at the first layer are bounded by the number of pixels.
        for &e in &out.traces[0].input_events {
            assert!(e <= 3 * 16 * 16);
        }
    }

    #[test]
    fn apply_precision_changes_weights_and_stays_runnable() {
        let cfg = Vgg9Config::cifar10_small();
        let mut net = vgg9(&cfg).unwrap();
        let before = match &net.layers()[0] {
            Layer::Conv { conv, .. } => conv.weight().clone(),
            _ => unreachable!(),
        };
        net.apply_precision(Precision::Int4).unwrap();
        let after = match &net.layers()[0] {
            Layer::Conv { conv, .. } => conv.weight().clone(),
            _ => unreachable!(),
        };
        assert_ne!(before, after);
        let image = Tensor::full(&[3, 16, 16], 0.4);
        assert!(net.run(&image, &Encoder::direct(2)).is_ok());
    }

    #[test]
    fn fold_batchnorm_removes_bn_and_preserves_geometry() {
        let cfg = Vgg9Config::cifar10_small();
        let mut net = vgg9(&cfg).unwrap();
        net.fold_batchnorm().unwrap();
        for layer in net.layers() {
            if let Layer::Conv { bn, .. } = layer {
                assert!(bn.is_none());
            }
        }
        assert_eq!(net.geometry().unwrap().len(), 9);
    }

    #[test]
    fn layer_names_match_table_i() {
        let names = Vgg9Config::layer_names();
        assert_eq!(names[0], "CONV1_1");
        assert_eq!(names[6], "CONV3_3");
        assert_eq!(names[7], "FC1");
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn more_timesteps_never_reduce_total_spikes() {
        let cfg = Vgg9Config::cifar10_small();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.031).cos().abs());
        let net_a = vgg9(&cfg).unwrap();
        let net_b = vgg9(&cfg).unwrap();
        let short = net_a.run(&image, &Encoder::direct(1)).unwrap();
        let long = net_b.run(&image, &Encoder::direct(3)).unwrap();
        assert!(long.record.total_spikes() >= short.record.total_spikes());
    }
}
