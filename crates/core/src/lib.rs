//! # snn-core
//!
//! Substrate library for the hybrid dense/sparse event-driven SNN accelerator
//! reproduction (DATE 2025, "Exploring the Sparsity-Quantization Interplay on a
//! Novel Hybrid SNN Event-Driven Architecture").
//!
//! This crate provides everything the algorithmic side of the paper needs:
//!
//! * [`tensor`] — a small NCHW tensor type with the shape algebra and im2col
//!   helpers used by convolution layers,
//! * [`neuron`] — the leaky integrate-and-fire (LIF) neuron of Eq. 1–2,
//! * [`spike`] — bit-packed spike trains laid out timestep-major exactly like
//!   the BRAM layout described in the paper's Fig. 2,
//! * [`encoding`] — direct coding and rate coding input encoders,
//! * [`quant`] — symmetric integer quantization used for int4/int8 QAT,
//! * [`layers`] — Conv2d, Linear, spike max-pooling and batch normalisation,
//! * [`network`] — the layer container plus VGG9 builders used in the paper,
//! * [`stats`] — spike-count / sparsity statistics feeding the workload model.
//!
//! # Example
//!
//! Build the paper's VGG9 for a CIFAR-10-like input and run one direct-coded
//! inference over two timesteps:
//!
//! ```
//! use snn_core::network::{vgg9, Vgg9Config};
//! use snn_core::encoding::Encoder;
//! use snn_core::tensor::Tensor;
//!
//! # fn main() -> Result<(), snn_core::SnnError> {
//! let cfg = Vgg9Config::cifar10_small();
//! let mut net = vgg9(&cfg)?;
//! let image = Tensor::zeros(&[cfg.in_channels, cfg.image_size, cfg.image_size]);
//! let out = net.run(&image, &Encoder::direct(2))?;
//! assert_eq!(out.logits.len(), cfg.num_classes);
//! # Ok(())
//! # }
//! ```

pub mod encoding;
pub mod error;
pub mod io;
pub mod layers;
pub mod network;
pub mod neuron;
pub mod quant;
pub mod spike;
pub mod stats;
pub mod tensor;
pub mod test_support;

pub use error::SnnError;
pub use network::{RunOutput, RunState, SnnNetwork};
pub use neuron::{LifParams, LifPopulation};
pub use spike::{SpikeRecord, SpikeTrain};
pub use tensor::Tensor;

/// Resolves a worker-thread count for batched execution: an explicit caller
/// setting wins, then the `SNN_THREADS` environment variable, then the
/// machine's available parallelism. Values below 1 (explicit or env) clamp to
/// 1 — sequential execution — and an unparsable `SNN_THREADS` is ignored.
///
/// This is the single resolution rule shared by the inference engine
/// (`EngineBuilder::threads`) and the trainer's worker pool, so the two paths
/// cannot drift.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("SNN_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// splitmix64 finalizer — a strong 64-bit mix, the standard seeding
/// primitive of the xoshiro family.
///
/// This is the shared deterministic-hash primitive behind every seeded
/// fault-injection plan in the workspace (`snn_serve::FaultPlan`,
/// `snn_train::TrainFaultPlan`) and the retry jitter: decisions derived by
/// domain-separated chains of this mix are pure functions of their seeds, so
/// they are independent of batching, thread count and scheduling.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod thread_tests {
    /// All `SNN_THREADS` scenarios live in one test so the process-global
    /// environment variable is never raced by parallel test threads.
    #[test]
    fn resolve_threads_precedence() {
        std::env::remove_var("SNN_THREADS");
        assert_eq!(super::resolve_threads(Some(3)), 3);
        assert_eq!(super::resolve_threads(Some(0)), 1);
        assert!(super::resolve_threads(None) >= 1);
        std::env::set_var("SNN_THREADS", "5");
        assert_eq!(super::resolve_threads(None), 5);
        assert_eq!(super::resolve_threads(Some(2)), 2, "explicit beats env");
        std::env::set_var("SNN_THREADS", "0");
        assert_eq!(super::resolve_threads(None), 1, "env clamps to 1");
        std::env::set_var("SNN_THREADS", "not-a-number");
        assert!(super::resolve_threads(None) >= 1, "unparsable env ignored");
        std::env::remove_var("SNN_THREADS");
    }
}
