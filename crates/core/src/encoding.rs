//! Input encoders: direct coding and rate coding.
//!
//! The paper's central comparison (Table II) is between *direct coding* —
//! where the raw floating-point image is presented to the first convolution
//! layer at every timestep and the first LIF layer converts the resulting
//! membrane potentials into spikes — and *rate coding*, where each pixel is
//! converted into a Bernoulli spike train whose firing probability is
//! proportional to the pixel intensity.
//!
//! Direct coding therefore produces a *dense, analog* input layer workload
//! (handled by the accelerator's dense core) while every later layer is
//! sparse and binary; rate coding produces binary spikes from the start and
//! only needs the sparse cores.

use crate::error::SnnError;
use crate::spike::SpikePlane;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How an input image is turned into the per-timestep drive of the first
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingScheme {
    /// The analog image is presented unchanged at every timestep.
    Direct,
    /// Each pixel fires a Bernoulli spike with probability proportional to
    /// its (clamped) intensity, independently at every timestep.
    Rate,
}

impl std::fmt::Display for CodingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodingScheme::Direct => write!(f, "direct"),
            CodingScheme::Rate => write!(f, "rate"),
        }
    }
}

/// An input encoder: a coding scheme plus the number of timesteps.
///
/// The paper uses 2 timesteps for direct coding and 25 for rate coding
/// (Table II); [`Encoder::direct`] and [`Encoder::rate`] are convenience
/// constructors, and [`Encoder::paper_direct`] / [`Encoder::paper_rate`]
/// return those exact operating points.
///
/// # Example
///
/// ```
/// use snn_core::encoding::Encoder;
/// use snn_core::tensor::Tensor;
///
/// # fn main() -> Result<(), snn_core::SnnError> {
/// let image = Tensor::full(&[1, 2, 2], 0.8);
/// let enc = Encoder::direct(2);
/// let frames = enc.encode(&image, 42)?;
/// assert_eq!(frames.len(), 2);
/// // Direct coding repeats the analog image unchanged.
/// assert_eq!(frames[0], image);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Encoder {
    /// The coding scheme.
    pub scheme: CodingScheme,
    /// Number of presentation timesteps `T`.
    pub timesteps: usize,
}

impl Encoder {
    /// Creates a direct-coding encoder with `timesteps` presentations.
    pub fn direct(timesteps: usize) -> Self {
        Encoder {
            scheme: CodingScheme::Direct,
            timesteps,
        }
    }

    /// Creates a rate-coding encoder with `timesteps` presentations.
    pub fn rate(timesteps: usize) -> Self {
        Encoder {
            scheme: CodingScheme::Rate,
            timesteps,
        }
    }

    /// The paper's direct-coding operating point: `T = 2`.
    pub fn paper_direct() -> Self {
        Encoder::direct(2)
    }

    /// The paper's rate-coding operating point: `T = 25`.
    pub fn paper_rate() -> Self {
        Encoder::rate(25)
    }

    /// Encodes an image into per-timestep input frames.
    ///
    /// For [`CodingScheme::Direct`] every frame is a clone of the input; for
    /// [`CodingScheme::Rate`] each frame contains independent Bernoulli spikes
    /// with firing probability `clamp(|pixel|, 0, 1)`. The `seed` makes rate
    /// coding deterministic, which the experiments rely on.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `timesteps == 0`.
    pub fn encode(&self, image: &Tensor, seed: u64) -> Result<Vec<Tensor>, SnnError> {
        let mut planes = Vec::new();
        self.encode_planes_into(image, seed, &mut planes)?;
        Ok(planes.into_iter().map(|p| p.dense().clone()).collect())
    }

    /// Event-producing variant of [`Encoder::encode`]: fills `frames` with
    /// per-timestep [`SpikePlane`]s (dense backing plus active-index list),
    /// reusing the vector's existing plane allocations across calls. This is
    /// what the inference run loop consumes; the dense backings are
    /// bit-identical to [`Encoder::encode`]'s frames for the same seed.
    ///
    /// Rate-coded frames are binary spike planes; direct-coded frames carry
    /// the analog image (`is_binary() == false` in general) and the active
    /// list of its non-zero pixels.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `timesteps == 0`.
    pub fn encode_planes_into(
        &self,
        image: &Tensor,
        seed: u64,
        frames: &mut Vec<SpikePlane>,
    ) -> Result<(), SnnError> {
        if self.timesteps == 0 {
            return Err(SnnError::config(
                "timesteps",
                "must encode at least one timestep",
            ));
        }
        frames.resize_with(self.timesteps, SpikePlane::new);
        match self.scheme {
            CodingScheme::Direct => {
                // Every timestep presents the same analog frame: scan once,
                // then copy the plane (allocation-reusing clone_from).
                let (first, rest) = frames.split_first_mut().expect("timesteps >= 1");
                first.assign(image);
                for frame in rest {
                    frame.clone_from(first);
                }
            }
            CodingScheme::Rate => {
                let mut rng = StdRng::seed_from_u64(seed);
                for frame in frames.iter_mut() {
                    frame.begin(image.shape());
                    for (i, &p) in image.as_slice().iter().enumerate() {
                        let prob = p.abs().clamp(0.0, 1.0);
                        if rng.gen::<f32>() < prob {
                            frame.push(i);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of non-zero input values the encoder will feed into the first
    /// layer across all timesteps (the "input spikes" of the workload model).
    ///
    /// For direct coding this counts non-zero analog pixels once per timestep;
    /// for rate coding it returns the *expected* spike count, which the
    /// benches use to reason about workload without sampling.
    pub fn expected_input_events(&self, image: &Tensor) -> f64 {
        match self.scheme {
            CodingScheme::Direct => image.count_nonzero() as f64 * self.timesteps as f64,
            CodingScheme::Rate => {
                let sum_prob: f64 = image
                    .as_slice()
                    .iter()
                    .map(|&p| f64::from(p.abs().clamp(0.0, 1.0)))
                    .sum();
                sum_prob * self.timesteps as f64
            }
        }
    }

    /// Whether the first layer's input is binary (true for rate coding).
    ///
    /// The accelerator uses this to decide whether the dense core is needed:
    /// rate-coded networks bypass it entirely (Sec. V-D).
    pub fn produces_binary_input(&self) -> bool {
        matches!(self.scheme, CodingScheme::Rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn direct_encoding_repeats_image() {
        let image = Tensor::from_vec(vec![0.1, 0.5, 0.0, 0.9], &[1, 2, 2]).unwrap();
        let frames = Encoder::direct(3).encode(&image, 0).unwrap();
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| *f == image));
    }

    #[test]
    fn rate_encoding_is_binary() {
        let image = Tensor::full(&[1, 4, 4], 0.5);
        let frames = Encoder::rate(5).encode(&image, 7).unwrap();
        assert_eq!(frames.len(), 5);
        for frame in &frames {
            assert!(frame.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn rate_encoding_is_deterministic_per_seed() {
        let image = Tensor::full(&[1, 8, 8], 0.3);
        let a = Encoder::rate(4).encode(&image, 99).unwrap();
        let b = Encoder::rate(4).encode(&image, 99).unwrap();
        let c = Encoder::rate(4).encode(&image, 100).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_extremes_always_or_never_fire() {
        let ones = Tensor::ones(&[1, 4, 4]);
        let zeros = Tensor::zeros(&[1, 4, 4]);
        let on = Encoder::rate(3).encode(&ones, 1).unwrap();
        let off = Encoder::rate(3).encode(&zeros, 1).unwrap();
        assert!(on.iter().all(|f| f.count_nonzero() == 16));
        assert!(off.iter().all(|f| f.count_nonzero() == 0));
    }

    #[test]
    fn zero_timesteps_is_rejected() {
        let image = Tensor::ones(&[1, 2, 2]);
        assert!(Encoder::direct(0).encode(&image, 0).is_err());
        assert!(Encoder::rate(0).encode(&image, 0).is_err());
        let mut planes = Vec::new();
        assert!(Encoder::rate(0)
            .encode_planes_into(&image, 0, &mut planes)
            .is_err());
    }

    #[test]
    fn encode_planes_matches_encode_for_both_schemes() {
        let image = Tensor::from_fn(&[2, 4, 4], |i| ((i as f32) * 0.21).sin().abs() * 0.9);
        for enc in [Encoder::direct(3), Encoder::rate(5)] {
            let frames = enc.encode(&image, 42).unwrap();
            let mut planes = Vec::new();
            enc.encode_planes_into(&image, 42, &mut planes).unwrap();
            assert_eq!(planes.len(), frames.len());
            for (plane, frame) in planes.iter().zip(frames.iter()) {
                assert_eq!(plane.dense(), frame);
                assert_eq!(plane.count_active(), frame.count_nonzero());
                if enc.produces_binary_input() {
                    assert!(plane.is_binary());
                }
            }
            // Reusing the buffer (with stale contents) reproduces the result.
            enc.encode_planes_into(&image, 42, &mut planes).unwrap();
            for (plane, frame) in planes.iter().zip(frames.iter()) {
                assert_eq!(plane.dense(), frame);
            }
        }
    }

    #[test]
    fn paper_operating_points() {
        assert_eq!(Encoder::paper_direct().timesteps, 2);
        assert_eq!(Encoder::paper_rate().timesteps, 25);
        assert_eq!(Encoder::paper_direct().scheme, CodingScheme::Direct);
        assert_eq!(Encoder::paper_rate().scheme, CodingScheme::Rate);
    }

    #[test]
    fn binary_input_flag() {
        assert!(!Encoder::direct(2).produces_binary_input());
        assert!(Encoder::rate(25).produces_binary_input());
    }

    #[test]
    fn expected_events_direct_counts_nonzero_pixels() {
        let image = Tensor::from_vec(vec![0.0, 0.2, 0.0, 0.7], &[1, 2, 2]).unwrap();
        let enc = Encoder::direct(3);
        assert_eq!(enc.expected_input_events(&image), 6.0);
    }

    #[test]
    fn expected_events_rate_uses_probabilities() {
        let image = Tensor::from_vec(vec![0.5, 1.0, 0.0, 2.0], &[1, 2, 2]).unwrap();
        let enc = Encoder::rate(10);
        // probabilities clamp to [0,1]: 0.5 + 1.0 + 0.0 + 1.0 = 2.5, × 10 steps.
        assert!((enc.expected_input_events(&image) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(CodingScheme::Direct.to_string(), "direct");
        assert_eq!(CodingScheme::Rate.to_string(), "rate");
    }

    proptest! {
        /// Rate-coded spike counts concentrate near the expected value for a
        /// uniform image (law of large numbers sanity check).
        #[test]
        fn rate_spike_count_tracks_probability(p in 0.1_f32..0.9) {
            let image = Tensor::full(&[1, 32, 32], p);
            let enc = Encoder::rate(8);
            let frames = enc.encode(&image, 123).unwrap();
            let total: usize = frames.iter().map(Tensor::count_nonzero).sum();
            let expected = enc.expected_input_events(&image);
            // 5-sigma-ish band for a binomial with n = 8192.
            let n = 8.0 * 1024.0;
            let sigma = (n * f64::from(p) * (1.0 - f64::from(p))).sqrt();
            prop_assert!((total as f64 - expected).abs() < 6.0 * sigma + 1.0);
        }

        /// Direct coding never alters pixel values.
        #[test]
        fn direct_preserves_values(
            pixels in proptest::collection::vec(-2.0_f32..2.0, 16),
            t in 1_usize..6,
        ) {
            let image = Tensor::from_vec(pixels, &[1, 4, 4]).unwrap();
            let frames = Encoder::direct(t).encode(&image, 0).unwrap();
            prop_assert_eq!(frames.len(), t);
            for frame in frames {
                prop_assert_eq!(frame.as_slice(), image.as_slice());
            }
        }
    }
}
