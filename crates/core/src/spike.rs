//! Bit-packed spike trains.
//!
//! The accelerator stores spike trains in on-chip BRAM in *timestep-major*
//! order: for a layer with `N` output channels and `T` timesteps, `N × T`
//! locations hold one spike train (one output feature map at one timestep)
//! each, with consecutive timesteps at contiguous addresses (paper, Sec. IV-A
//! and Fig. 2). This module mirrors that layout so the simulator and the
//! functional model share one representation:
//!
//! * [`SpikeTrain`] — one bit per neuron, packed into `u64` words. This is the
//!   unit the sparse core's Compression routine consumes `n` bits per cycle.
//! * [`SpikeVolume`] — the spike output of a whole layer: `T × C` spike
//!   trains of `H × W` bits each, stored timestep-major.
//! * [`SpikeRecord`] — per-layer spike counts collected during a network run,
//!   which feed the workload model (Eq. 3) and the sparsity experiments.

use crate::error::SnnError;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One sparse activation frame: the event-driven representation of a layer
/// input at a single timestep.
///
/// A `SpikePlane` pairs a dense tensor backing with **two** sparse views of
/// its non-zero set, maintained in lockstep by every producer (the encoders,
/// the LIF populations, spike pooling):
///
/// * `u64` **mask words** ([`SpikePlane::as_words`]) — 64 cells per word,
///   LSB-first within a word, exactly the compressed binary activation
///   stream the paper's hardware moves between layers. This is what the
///   production word-scan kernels iterate (trailing-zeros per word), and
///   what `count_active()`/`density()` popcount.
/// * the ascending **active-index list** ([`SpikePlane::active`]) — the
///   original event-list representation, retained as the differential
///   oracle the `*_indexed` kernel variants and the `spike_words` test
///   harness drive.
///
/// Ascending-bit iteration of the words visits exactly the ascending index
/// list ([`SpikePlane::iter_active`] ≡ `active()`), so both views impose the
/// identical f32 accumulation order on consumers — which is what keeps the
/// word path bitwise-equal to the index and dense paths:
///
/// * the event-driven [`crate::layers::Conv2d::forward_spikes`] /
///   [`crate::layers::Linear::forward_spikes`] gather weight columns for the
///   active indices only, and
/// * the run loop reads `count_active()` instead of a full
///   `count_nonzero` pass per layer per timestep.
///
/// `binary` records whether every element is exactly 0.0 or 1.0. Direct-coded
/// input frames are analog (`binary == false`) and must take the dense path;
/// every LIF output is binary by construction. The words mark *non-zero*
/// elements, so they are maintained for analog planes too.
///
/// # Example
///
/// ```
/// use snn_core::spike::SpikePlane;
/// use snn_core::tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]).unwrap();
/// let plane = SpikePlane::from_tensor(&t);
/// assert!(plane.is_binary());
/// assert_eq!(plane.active(), &[1, 3]);
/// assert_eq!(plane.as_words(), &[0b1010]);
/// assert_eq!(plane.density(), 0.5);
/// ```
#[derive(Debug, Default, PartialEq)]
pub struct SpikePlane {
    dense: Tensor,
    active: Vec<u32>,
    words: Vec<u64>,
    binary: bool,
}

impl Clone for SpikePlane {
    fn clone(&self) -> Self {
        SpikePlane {
            dense: self.dense.clone(),
            active: self.active.clone(),
            words: self.words.clone(),
            binary: self.binary,
        }
    }

    // The derived `clone_from` would reallocate; the encoders rely on this
    // one reusing the destination's buffers when replaying direct-coded
    // frames across timesteps.
    fn clone_from(&mut self, source: &Self) {
        self.dense.copy_from(&source.dense);
        self.active.clone_from(&source.active);
        self.words.clone_from(&source.words);
        self.binary = source.binary;
    }
}

impl SpikePlane {
    /// Creates an empty plane; populate it with [`SpikePlane::assign`] or
    /// [`SpikePlane::begin`] + [`SpikePlane::push`].
    pub fn new() -> Self {
        SpikePlane {
            dense: Tensor::zeros(&[0]),
            active: Vec::new(),
            words: Vec::new(),
            binary: true,
        }
    }

    /// Builds a plane from a dense tensor, scanning it once for the active
    /// indices and the binary flag.
    pub fn from_tensor(tensor: &Tensor) -> Self {
        let mut plane = SpikePlane::new();
        plane.assign(tensor);
        plane
    }

    /// Rebuilds this plane from a dense tensor, reusing the existing
    /// allocations. One scan recovers the active-index list, the mask words
    /// and whether the values are all binary (0.0/1.0).
    pub fn assign(&mut self, tensor: &Tensor) {
        self.dense.copy_from(tensor);
        self.active.clear();
        self.words.clear();
        self.words.resize(tensor.len().div_ceil(64), 0);
        self.binary = true;
        for (i, &v) in tensor.as_slice().iter().enumerate() {
            if v != 0.0 {
                self.active.push(i as u32);
                self.words[i / 64] |= 1u64 << (i % 64);
                if v != 1.0 {
                    self.binary = false;
                }
            }
        }
    }

    /// Resets the plane to an all-silent binary frame of `shape`, keeping
    /// allocations. Producers then emit spikes via [`SpikePlane::push`] (in
    /// ascending index order) or [`SpikePlane::mark`] +
    /// [`SpikePlane::rebuild_active`].
    ///
    /// All mask words are zeroed — in particular the out-of-range bits of the
    /// final partial word when `len % 64 != 0`, so a plane reused across
    /// shapes can never leak stale bits `>= len` into the tail word (the same
    /// guarantee [`SpikeTrain::as_words`] documents).
    pub fn begin(&mut self, shape: &[usize]) {
        self.dense.reset_to(shape, 0.0);
        self.active.clear();
        self.words.clear();
        self.words.resize(self.dense.len().div_ceil(64), 0);
        self.binary = true;
    }

    /// Emits a spike at flat index `idx`. Callers must push indices in
    /// strictly ascending order (the order every producer naturally scans
    /// in); the event consumers rely on it to reproduce the dense
    /// accumulation order bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, and debug-asserts the ordering.
    pub fn push(&mut self, idx: usize) {
        debug_assert!(
            self.active.last().is_none_or(|&last| (last as usize) < idx),
            "spike indices must be pushed in ascending order"
        );
        debug_assert!(idx < self.dense.len(), "push index {idx} out of range");
        self.dense.as_mut_slice()[idx] = 1.0;
        self.active.push(idx as u32);
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Marks a spike in the dense backing and the mask words (idempotent, any
    /// order); callers must finish with [`SpikePlane::rebuild_active`]. Used
    /// by OR-pooling, whose event scatter does not visit outputs in order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, so a bit `>= len` can never be set.
    pub fn mark(&mut self, idx: usize) {
        debug_assert!(idx < self.dense.len(), "mark index {idx} out of range");
        self.dense.as_mut_slice()[idx] = 1.0;
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Rebuilds the active-index list after a series of [`SpikePlane::mark`]
    /// calls, by word-scanning the mask words (trailing-zeros per word)
    /// instead of rescanning the dense f32 backing.
    pub fn rebuild_active(&mut self) {
        self.active.clear();
        let len = self.dense.len();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let idx = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert!(idx < len, "mask bit {idx} set beyond plane length {len}");
                self.active.push(idx as u32);
            }
        }
    }

    /// The dense tensor backing.
    pub fn dense(&self) -> &Tensor {
        &self.dense
    }

    /// Ascending flat indices of the non-zero elements — the retained
    /// index-list representation, kept as the differential oracle for the
    /// word-scan kernels.
    pub fn active(&self) -> &[u32] {
        &self.active
    }

    /// The `u64` mask words marking the non-zero elements: 64 cells per word,
    /// LSB-first within a word (bit `i % 64` of word `i / 64` is element
    /// `i`), matching [`SpikeTrain::as_words`]. Bits above `len()` in the
    /// last word are guaranteed to be zero.
    ///
    /// # Example
    ///
    /// ```
    /// use snn_core::spike::SpikePlane;
    /// use snn_core::tensor::Tensor;
    ///
    /// let t = Tensor::from_fn(&[1, 10, 10], |i| if i == 2 || i == 64 { 1.0 } else { 0.0 });
    /// let plane = SpikePlane::from_tensor(&t);
    /// assert_eq!(plane.as_words(), &[1 << 2, 1 << 0]);
    /// ```
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Ascending word-scan iterator over the active flat indices, driven by
    /// trailing-zeros over the mask words. Yields exactly the sequence of
    /// [`SpikePlane::active`] — LSB-first bit order within each word is
    /// ascending index order — so word-scan consumers accumulate f32 values
    /// in the identical order as index-list consumers, keeping the two paths
    /// bitwise-equal.
    ///
    /// # Example
    ///
    /// ```
    /// use snn_core::spike::SpikePlane;
    /// use snn_core::tensor::Tensor;
    ///
    /// let t = Tensor::from_fn(&[1, 9, 9], |i| [3, 63, 64, 80].contains(&i) as usize as f32);
    /// let plane = SpikePlane::from_tensor(&t);
    /// let scanned: Vec<usize> = plane.iter_active().collect();
    /// assert_eq!(scanned, vec![3, 63, 64, 80]);
    /// let indexed: Vec<usize> = plane.active().iter().map(|&i| i as usize).collect();
    /// assert_eq!(scanned, indexed);
    /// ```
    pub fn iter_active(&self) -> WordScan<'_> {
        scan_words(&self.words)
    }

    /// Whether every element is exactly 0.0 or 1.0 (a true spike frame).
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Number of active (non-zero) elements — a popcount over the mask words.
    pub fn count_active(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Shape of the dense backing.
    pub fn shape(&self) -> &[usize] {
        self.dense.shape()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// Whether the plane holds no elements.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Fraction of elements that are active (popcount over the mask words);
    /// 0.0 for an empty plane.
    pub fn density(&self) -> f64 {
        if self.dense.is_empty() {
            0.0
        } else {
            self.count_active() as f64 / self.dense.len() as f64
        }
    }

    /// Event-driven im2col lowering of a **binary** `[C, H, W]` spike plane:
    /// instead of scanning the (mostly zero) dense backing, zero-fills the
    /// column matrix and scatters a `1.0` for every `(spike, kernel tap)`
    /// pair. The result is the **identical matrix** [`Tensor::im2col_into`]
    /// produces for the dense backing — spikes are exactly the 1.0 entries —
    /// at `O(active · k²)` cost instead of `O(C · k² · out_h · out_w)` copy
    /// traffic, which is what makes the BPTT weight-gradient lowering
    /// event-aware.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for an analog plane (use the dense
    /// lowering), plus the shape/geometry errors of [`Tensor::im2col`].
    pub fn im2col_into(
        &self,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
        out: &mut crate::tensor::Im2Col,
    ) -> Result<(), SnnError> {
        if !self.binary {
            return Err(SnnError::config(
                "input",
                "SpikePlane::im2col_into requires a binary spike plane",
            ));
        }
        let (_, h, w, out_h, out_w) =
            crate::tensor::im2col_geometry(self.shape(), kernel, stride, padding)?;
        let (kh, kw) = kernel;
        let rows = self.shape()[0] * kh * kw;
        let cols = out_h * out_w;
        out.data.clear();
        out.data.resize(rows * cols, 0.0);
        out.rows = rows;
        out.cols = cols;
        out.out_h = out_h;
        out.out_w = out_w;
        for flat in self.iter_active() {
            let ci = flat / (h * w);
            let rem = flat % (h * w);
            let iy = rem / w;
            let ix = rem % w;
            let row0 = ci * kh * kw;
            for ki in 0..kh {
                // Output row receiving this spike through kernel row `ki`.
                let y = iy as isize + padding as isize - ki as isize;
                if y < 0 {
                    break; // y only decreases as ki grows
                }
                let y = y as usize;
                if !y.is_multiple_of(stride) || y / stride >= out_h {
                    continue;
                }
                let oy = y / stride;
                for kj in 0..kw {
                    let x = ix as isize + padding as isize - kj as isize;
                    if x < 0 {
                        break;
                    }
                    let x = x as usize;
                    if !x.is_multiple_of(stride) || x / stride >= out_w {
                        continue;
                    }
                    let ox = x / stride;
                    out.data[(row0 + ki * kw + kj) * cols + oy * out_w + ox] = 1.0;
                }
            }
        }
        Ok(())
    }
}

/// Ascending iterator over the set-bit indices of a `u64` mask-word slice,
/// created by [`scan_words`]. See [`SpikePlane::iter_active`] for the
/// bitwise-equality contract word-scan consumers rely on.
#[derive(Debug, Clone)]
pub struct WordScan<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for WordScan<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }

    // Internal iteration the hot kernels reach through `for_each`: the
    // per-event closure is applied inside the word loop, with no per-item
    // Option or resumable-state traffic. Yields the exact sequence `next`
    // does.
    #[inline]
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, usize) -> B,
    {
        let mut acc = init;
        let mut bits = self.current;
        let mut wi = self.word_idx;
        loop {
            while bits != 0 {
                let idx = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc = f(acc, idx);
            }
            wi += 1;
            if wi >= self.words.len() {
                return acc;
            }
            bits = self.words[wi];
        }
    }
}

/// Word-scans a raw `u64` mask slice (LSB-first within each word), yielding
/// set-bit indices in ascending order via trailing-zeros iteration. The
/// shared primitive behind [`SpikePlane::iter_active`] and the training
/// backward's gradient-column mask — any caller packing a mask into words
/// gets the identical iteration order, and therefore the identical f32
/// accumulation order, as an ascending index list.
///
/// # Example
///
/// ```
/// use snn_core::spike::scan_words;
///
/// let words = [0b1001_u64, 1 << 63];
/// assert_eq!(scan_words(&words).collect::<Vec<_>>(), vec![0, 3, 127]);
/// assert_eq!(scan_words(&[]).count(), 0);
/// ```
pub fn scan_words(words: &[u64]) -> WordScan<'_> {
    WordScan {
        words,
        word_idx: 0,
        current: words.first().copied().unwrap_or(0),
    }
}

/// A fixed-length binary spike vector, one bit per neuron, packed into `u64`
/// words (little-endian bit order within each word).
///
/// # Example
///
/// ```
/// use snn_core::spike::SpikeTrain;
///
/// let mut train = SpikeTrain::new(128);
/// train.set(3, true);
/// train.set(70, true);
/// assert_eq!(train.count_ones(), 2);
/// assert_eq!(train.iter_ones().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpikeTrain {
    len: usize,
    words: Vec<u64>,
}

impl SpikeTrain {
    /// Creates an all-zero spike train of `len` bits.
    pub fn new(len: usize) -> Self {
        SpikeTrain {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a spike train from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut train = SpikeTrain::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                train.set(i, true);
            }
        }
        train
    }

    /// Creates a spike train from an `f32` slice, treating any strictly
    /// positive value as a spike (the convention used by the LIF layers,
    /// whose outputs are exactly 0.0 or 1.0).
    pub fn from_activations(values: &[f32]) -> Self {
        let mut train = SpikeTrain::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v > 0.0 {
                train.set(i, true);
            }
        }
        train
    }

    /// Number of bits in the train.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the train has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "spike index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Writes bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "spike index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits (spikes).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits that are zero; 0.0 for an empty train.
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.count_ones() as f64 / self.len as f64
    }

    /// Iterator over the indices of set bits, in ascending order.
    ///
    /// This is exactly the sequence of spike events the sparse core's
    /// Compression routine produces with its priority encoder.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            train: self,
            word_idx: 0,
            current: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// Raw word view (little-endian bit order inside each word). Bits above
    /// `len()` in the last word are guaranteed to be zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Bitwise OR with another train of identical length, used to model
    /// spike max-pooling (an OR gate slid over the window).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if lengths differ.
    pub fn or(&self, other: &SpikeTrain) -> Result<SpikeTrain, SnnError> {
        if self.len != other.len {
            return Err(SnnError::shape(&[self.len], &[other.len], "SpikeTrain::or"));
        }
        Ok(SpikeTrain {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a | b)
                .collect(),
        })
    }

    /// Converts the spike train back into a 0.0/1.0 `f32` vector.
    pub fn to_activations(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { 0.0 })
            .collect()
    }

    /// Splits the train into `chunk_bits`-wide chunks, returning for each chunk
    /// the number of set bits. This models how the Compression routine tiles
    /// the spike train into n-bit chunks processed sequentially.
    pub fn chunk_population(&self, chunk_bits: usize) -> Vec<usize> {
        assert!(chunk_bits > 0, "chunk width must be positive");
        let mut counts = Vec::with_capacity(self.len.div_ceil(chunk_bits));
        let mut current = 0usize;
        let mut in_chunk = 0usize;
        for i in 0..self.len {
            if self.get(i) {
                current += 1;
            }
            in_chunk += 1;
            if in_chunk == chunk_bits {
                counts.push(current);
                current = 0;
                in_chunk = 0;
            }
        }
        if in_chunk > 0 {
            counts.push(current);
        }
        counts
    }
}

/// Iterator over set-bit indices of a [`SpikeTrain`], produced by
/// [`SpikeTrain::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    train: &'a SpikeTrain,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.train.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.train.words.len() {
                return None;
            }
            self.current = self.train.words[self.word_idx];
        }
    }
}

/// The binary spiking output of one layer across all timesteps, stored in the
/// same timestep-major order as the accelerator's BRAM (`address = t * C + c`).
///
/// # Example
///
/// ```
/// use snn_core::spike::SpikeVolume;
///
/// let mut vol = SpikeVolume::new(2, 4, 8, 8);
/// vol.train_mut(1, 2).set(5, true);
/// assert_eq!(vol.total_spikes(), 1);
/// assert_eq!(vol.spikes_at_timestep(1), 1);
/// assert_eq!(vol.spikes_at_timestep(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeVolume {
    timesteps: usize,
    channels: usize,
    height: usize,
    width: usize,
    trains: Vec<SpikeTrain>,
}

impl SpikeVolume {
    /// Creates an all-silent volume of `timesteps × channels` spike trains of
    /// `height × width` bits each.
    pub fn new(timesteps: usize, channels: usize, height: usize, width: usize) -> Self {
        let trains = vec![SpikeTrain::new(height * width); timesteps * channels];
        SpikeVolume {
            timesteps,
            channels,
            height,
            width,
            trains,
        }
    }

    /// Number of timesteps.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Number of channels (output feature maps).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of bits per spike train (`height * width`).
    pub fn neurons_per_map(&self) -> usize {
        self.height * self.width
    }

    /// BRAM-style address of the spike train for `(timestep, channel)`:
    /// `t * channels + c` (timestep-major, Fig. 2).
    pub fn address(&self, timestep: usize, channel: usize) -> usize {
        assert!(timestep < self.timesteps, "timestep out of range");
        assert!(channel < self.channels, "channel out of range");
        timestep * self.channels + channel
    }

    /// Spike train for `(timestep, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn train(&self, timestep: usize, channel: usize) -> &SpikeTrain {
        &self.trains[self.address(timestep, channel)]
    }

    /// Mutable spike train for `(timestep, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn train_mut(&mut self, timestep: usize, channel: usize) -> &mut SpikeTrain {
        let addr = self.address(timestep, channel);
        &mut self.trains[addr]
    }

    /// Replaces the spike train at `(timestep, channel)`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the train length does not equal
    /// `height * width`.
    pub fn set_train(
        &mut self,
        timestep: usize,
        channel: usize,
        train: SpikeTrain,
    ) -> Result<(), SnnError> {
        if train.len() != self.neurons_per_map() {
            return Err(SnnError::shape(
                &[self.neurons_per_map()],
                &[train.len()],
                "SpikeVolume::set_train",
            ));
        }
        let addr = self.address(timestep, channel);
        self.trains[addr] = train;
        Ok(())
    }

    /// Total number of spikes across all timesteps and channels.
    pub fn total_spikes(&self) -> usize {
        self.trains.iter().map(SpikeTrain::count_ones).sum()
    }

    /// Number of spikes at one timestep (summed over channels).
    pub fn spikes_at_timestep(&self, timestep: usize) -> usize {
        (0..self.channels)
            .map(|c| self.train(timestep, c).count_ones())
            .sum()
    }

    /// Number of spikes in one channel (summed over timesteps).
    pub fn spikes_in_channel(&self, channel: usize) -> usize {
        (0..self.timesteps)
            .map(|t| self.train(t, channel).count_ones())
            .sum()
    }

    /// Overall sparsity (fraction of silent neuron-timesteps).
    pub fn sparsity(&self) -> f64 {
        let total_bits = self.timesteps * self.channels * self.neurons_per_map();
        if total_bits == 0 {
            return 0.0;
        }
        1.0 - self.total_spikes() as f64 / total_bits as f64
    }

    /// Builds a volume from per-timestep activation tensors of shape
    /// `[C, H, W]` where any strictly positive value is treated as a spike.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if any tensor has the wrong shape.
    pub fn from_activations(
        activations: &[crate::tensor::Tensor],
        channels: usize,
        height: usize,
        width: usize,
    ) -> Result<Self, SnnError> {
        let mut vol = SpikeVolume::new(activations.len(), channels, height, width);
        for (t, act) in activations.iter().enumerate() {
            if act.shape() != [channels, height, width] {
                return Err(SnnError::shape(
                    &[channels, height, width],
                    act.shape(),
                    "SpikeVolume::from_activations",
                ));
            }
            for c in 0..channels {
                let offset = c * height * width;
                let slice = &act.as_slice()[offset..offset + height * width];
                vol.set_train(t, c, SpikeTrain::from_activations(slice))?;
            }
        }
        Ok(vol)
    }
}

/// Per-layer spike statistics collected while running a network, which drive
/// both the sparsity experiments (Fig. 1) and the layer-wise workload model
/// (Eq. 3) used for design-space exploration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpikeRecord {
    /// Human-readable layer names, index-aligned with the other fields.
    pub layer_names: Vec<String>,
    /// Input spikes consumed by each layer, summed over all timesteps.
    /// For the direct-coded input layer this counts non-zero analog inputs.
    pub input_spikes: Vec<u64>,
    /// Output spikes produced by each layer, summed over all timesteps.
    pub output_spikes: Vec<u64>,
    /// Number of neurons in each layer's output.
    pub output_neurons: Vec<u64>,
    /// Number of timesteps the record covers.
    pub timesteps: usize,
}

impl SpikeRecord {
    /// Creates an empty record for `timesteps` timesteps.
    pub fn new(timesteps: usize) -> Self {
        SpikeRecord {
            timesteps,
            ..Default::default()
        }
    }

    /// Appends one layer's statistics.
    pub fn push_layer(
        &mut self,
        name: impl Into<String>,
        input_spikes: u64,
        output_spikes: u64,
        output_neurons: u64,
    ) {
        self.layer_names.push(name.into());
        self.input_spikes.push(input_spikes);
        self.output_spikes.push(output_spikes);
        self.output_neurons.push(output_neurons);
    }

    /// Number of layers recorded.
    pub fn num_layers(&self) -> usize {
        self.layer_names.len()
    }

    /// Total output spikes across all layers (the paper's "Total Spikes").
    pub fn total_spikes(&self) -> u64 {
        self.output_spikes.iter().sum()
    }

    /// Average output sparsity across layers, weighted by neuron count.
    pub fn average_sparsity(&self) -> f64 {
        let neurons: u64 = self
            .output_neurons
            .iter()
            .map(|&n| n * self.timesteps as u64)
            .sum();
        if neurons == 0 {
            return 0.0;
        }
        1.0 - self.total_spikes() as f64 / neurons as f64
    }

    /// Per-layer output sparsity values.
    pub fn layer_sparsity(&self) -> Vec<f64> {
        self.output_spikes
            .iter()
            .zip(self.output_neurons.iter())
            .map(|(&spikes, &neurons)| {
                let slots = neurons * self.timesteps as u64;
                if slots == 0 {
                    0.0
                } else {
                    1.0 - spikes as f64 / slots as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_train_is_silent() {
        let t = SpikeTrain::new(100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.count_ones(), 0);
        assert_eq!(t.sparsity(), 1.0);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut t = SpikeTrain::new(130);
        for idx in [0, 63, 64, 65, 127, 128, 129] {
            t.set(idx, true);
            assert!(t.get(idx));
        }
        assert_eq!(t.count_ones(), 7);
        t.set(64, false);
        assert!(!t.get(64));
        assert_eq!(t.count_ones(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let t = SpikeTrain::new(10);
        t.get(10);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut t = SpikeTrain::new(200);
        let indices = [3usize, 64, 65, 130, 199];
        for &i in &indices {
            t.set(i, true);
        }
        assert_eq!(t.iter_ones().collect::<Vec<_>>(), indices);
    }

    #[test]
    fn from_bools_and_from_activations_agree() {
        let bools = [true, false, true, true, false];
        let acts = [1.0, 0.0, 0.7, 2.0, -1.0];
        assert_eq!(
            SpikeTrain::from_bools(&bools),
            SpikeTrain::from_activations(&acts)
        );
    }

    #[test]
    fn to_activations_roundtrip() {
        let acts = vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let t = SpikeTrain::from_activations(&acts);
        assert_eq!(t.to_activations(), acts);
    }

    #[test]
    fn or_merges_spikes() {
        let a = SpikeTrain::from_bools(&[true, false, false, true]);
        let b = SpikeTrain::from_bools(&[false, true, false, true]);
        let c = a.or(&b).unwrap();
        assert_eq!(c.count_ones(), 3);
        assert!(a.or(&SpikeTrain::new(5)).is_err());
    }

    #[test]
    fn chunk_population_counts_per_chunk() {
        let t = SpikeTrain::from_bools(&[true, true, false, false, true, false, true]);
        assert_eq!(t.chunk_population(4), vec![2, 2]);
        assert_eq!(t.chunk_population(2), vec![2, 0, 1, 1]);
    }

    #[test]
    fn volume_addressing_is_timestep_major() {
        let vol = SpikeVolume::new(3, 5, 2, 2);
        assert_eq!(vol.address(0, 0), 0);
        assert_eq!(vol.address(0, 4), 4);
        assert_eq!(vol.address(1, 0), 5);
        assert_eq!(vol.address(2, 3), 13);
    }

    #[test]
    fn volume_spike_counting() {
        let mut vol = SpikeVolume::new(2, 2, 4, 4);
        vol.train_mut(0, 0).set(0, true);
        vol.train_mut(0, 1).set(3, true);
        vol.train_mut(1, 0).set(7, true);
        assert_eq!(vol.total_spikes(), 3);
        assert_eq!(vol.spikes_at_timestep(0), 2);
        assert_eq!(vol.spikes_at_timestep(1), 1);
        assert_eq!(vol.spikes_in_channel(0), 2);
        assert_eq!(vol.spikes_in_channel(1), 1);
    }

    #[test]
    fn volume_from_activations_checks_shape() {
        use crate::tensor::Tensor;
        let good = vec![Tensor::ones(&[2, 2, 2]); 3];
        let vol = SpikeVolume::from_activations(&good, 2, 2, 2).unwrap();
        assert_eq!(vol.total_spikes(), 3 * 2 * 4);
        let bad = vec![Tensor::ones(&[2, 3, 2])];
        assert!(SpikeVolume::from_activations(&bad, 2, 2, 2).is_err());
    }

    #[test]
    fn spike_plane_from_tensor_tracks_active_and_binary() {
        use crate::tensor::Tensor;
        let binary = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[2, 3]).unwrap();
        let plane = SpikePlane::from_tensor(&binary);
        assert!(plane.is_binary());
        assert_eq!(plane.active(), &[0, 3, 4]);
        assert_eq!(plane.count_active(), 3);
        assert_eq!(plane.shape(), &[2, 3]);
        assert!((plane.density() - 0.5).abs() < 1e-12);

        let analog = Tensor::from_vec(vec![0.0, 0.7, 0.0, 1.0], &[4]).unwrap();
        let plane = SpikePlane::from_tensor(&analog);
        assert!(!plane.is_binary());
        assert_eq!(plane.active(), &[1, 3]);
    }

    #[test]
    fn spike_plane_incremental_push_matches_from_tensor() {
        use crate::tensor::Tensor;
        let mut incr = SpikePlane::new();
        incr.begin(&[2, 2, 2]);
        incr.push(1);
        incr.push(5);
        incr.push(7);
        let mut dense = Tensor::zeros(&[2, 2, 2]);
        for &i in &[1usize, 5, 7] {
            dense.as_mut_slice()[i] = 1.0;
        }
        assert_eq!(incr, SpikePlane::from_tensor(&dense));
        // begin() resets for reuse.
        incr.begin(&[3]);
        assert_eq!(incr.count_active(), 0);
        assert_eq!(incr.dense().sum(), 0.0);
    }

    #[test]
    fn spike_plane_mark_and_rebuild_sorts_active() {
        let mut plane = SpikePlane::new();
        plane.begin(&[8]);
        plane.mark(6);
        plane.mark(2);
        plane.mark(6); // idempotent
        plane.rebuild_active();
        assert_eq!(plane.active(), &[2, 6]);
        assert!(plane.is_binary());
    }

    #[test]
    fn plane_words_mirror_active_on_every_path() {
        use crate::tensor::Tensor;
        // assign() path (incl. analog values — words mark non-zeros).
        let t = Tensor::from_vec(vec![0.5, 0.0, 1.0, 0.0, -0.0, 1.0], &[6]).unwrap();
        let plane = SpikePlane::from_tensor(&t);
        assert_eq!(plane.as_words(), &[0b100101]);
        assert_eq!(plane.iter_active().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(plane.count_active(), 3);

        // push() path.
        let mut plane = SpikePlane::new();
        plane.begin(&[2, 8, 8]);
        for idx in [0, 63, 64, 65, 127] {
            plane.push(idx);
        }
        assert_eq!(plane.as_words(), &[(1 << 63) | 1, 0b11 | (1 << 63)]);
        let scanned: Vec<usize> = plane.iter_active().collect();
        let indexed: Vec<usize> = plane.active().iter().map(|&i| i as usize).collect();
        assert_eq!(scanned, indexed);

        // mark() + rebuild_active() path.
        let mut plane = SpikePlane::new();
        plane.begin(&[130]);
        plane.mark(129);
        plane.mark(64);
        plane.mark(63);
        plane.rebuild_active();
        assert_eq!(plane.active(), &[63, 64, 129]);
        assert_eq!(plane.count_active(), 3);

        // clone / clone_from preserve the words.
        let cloned = plane.clone();
        assert_eq!(cloned.as_words(), plane.as_words());
        let mut target = SpikePlane::new();
        target.clone_from(&plane);
        assert_eq!(target, plane);
    }

    /// Satellite guarantee: `begin` zeroes the final partial word, so a plane
    /// reused from a larger shape can never carry stale bits `>= len` in a
    /// ragged tail word.
    #[test]
    fn plane_begin_clears_tail_word_bits_on_reuse() {
        let mut plane = SpikePlane::new();
        // Fill both words of a 2-word plane, including the very last bit.
        plane.begin(&[128]);
        plane.push(63);
        plane.push(64);
        plane.push(127);
        // Shrink to a ragged length using the same word count: every stale
        // bit — in particular 127, which would now be >= len — must be gone.
        plane.begin(&[65]);
        assert_eq!(plane.as_words(), &[0, 0]);
        assert_eq!(plane.count_active(), 0);
        plane.push(64);
        assert_eq!(plane.as_words(), &[0, 1]);
        plane.rebuild_active();
        assert_eq!(plane.active(), &[64]);
        // Exact word-multiple length: no tail word at all.
        plane.begin(&[64]);
        assert_eq!(plane.as_words(), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plane_mark_out_of_range_panics() {
        let mut plane = SpikePlane::new();
        plane.begin(&[70]);
        plane.mark(70); // one past the ragged tail
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plane_push_out_of_range_panics() {
        let mut plane = SpikePlane::new();
        plane.begin(&[64]);
        plane.push(64); // would set bit 0 of a word that must not exist
    }

    #[test]
    fn plane_im2col_rejects_analog_and_bad_shapes() {
        use crate::tensor::{Im2Col, Tensor};
        let analog = SpikePlane::from_tensor(&Tensor::full(&[1, 4, 4], 0.5));
        let mut out = Im2Col::default();
        assert!(analog.im2col_into((3, 3), 1, 1, &mut out).is_err());
        let flat = SpikePlane::from_tensor(&Tensor::zeros(&[4, 4]));
        assert!(flat.im2col_into((3, 3), 1, 1, &mut out).is_err());
        let small = SpikePlane::from_tensor(&Tensor::zeros(&[1, 2, 2]));
        assert!(small.im2col_into((5, 5), 1, 0, &mut out).is_err());
    }

    proptest! {
        /// The event-driven gather lowering builds the identical column
        /// matrix the dense scan produces, across strided/padded/ragged
        /// geometries, while reusing one output buffer.
        #[test]
        fn plane_im2col_equals_dense_lowering(
            bits in proptest::collection::vec(any::<bool>(), 2 * 6 * 5),
            stride in 1_usize..3,
            padding in 0_usize..2,
            k in 1_usize..4,
        ) {
            use crate::tensor::{Im2Col, Tensor};
            let input = Tensor::from_fn(&[2, 6, 5], |i| if bits[i] { 1.0 } else { 0.0 });
            let plane = SpikePlane::from_tensor(&input);
            let mut gathered = Im2Col::default();
            plane.im2col_into((k, k), stride, padding, &mut gathered).unwrap();
            let dense = input.im2col((k, k), stride, padding).unwrap();
            prop_assert_eq!(gathered, dense);
        }
    }

    #[test]
    fn record_total_and_sparsity() {
        let mut rec = SpikeRecord::new(2);
        rec.push_layer("conv1", 100, 50, 100);
        rec.push_layer("conv2", 50, 10, 100);
        assert_eq!(rec.num_layers(), 2);
        assert_eq!(rec.total_spikes(), 60);
        // 60 spikes over 2 layers * 100 neurons * 2 timesteps = 400 slots.
        assert!((rec.average_sparsity() - (1.0 - 60.0 / 400.0)).abs() < 1e-9);
        let per_layer = rec.layer_sparsity();
        assert!((per_layer[0] - 0.75).abs() < 1e-9);
        assert!((per_layer[1] - 0.95).abs() < 1e-9);
    }

    proptest! {
        /// count_ones always equals the number of bits set via set().
        #[test]
        fn count_matches_inserted(indices in proptest::collection::btree_set(0_usize..500, 0..100)) {
            let mut t = SpikeTrain::new(500);
            for &i in &indices {
                t.set(i, true);
            }
            prop_assert_eq!(t.count_ones(), indices.len());
            let collected: Vec<usize> = t.iter_ones().collect();
            let expected: Vec<usize> = indices.into_iter().collect();
            prop_assert_eq!(collected, expected);
        }

        /// Sparsity and count are consistent: sparsity = 1 - ones/len.
        #[test]
        fn sparsity_consistent(bools in proptest::collection::vec(any::<bool>(), 1..300)) {
            let t = SpikeTrain::from_bools(&bools);
            let ones = bools.iter().filter(|&&b| b).count();
            prop_assert_eq!(t.count_ones(), ones);
            prop_assert!((t.sparsity() - (1.0 - ones as f64 / bools.len() as f64)).abs() < 1e-12);
        }

        /// OR never decreases the spike count and is commutative.
        #[test]
        fn or_is_monotone_and_commutative(
            a in proptest::collection::vec(any::<bool>(), 64),
            b in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let ta = SpikeTrain::from_bools(&a);
            let tb = SpikeTrain::from_bools(&b);
            let ab = ta.or(&tb).unwrap();
            let ba = tb.or(&ta).unwrap();
            prop_assert_eq!(&ab, &ba);
            prop_assert!(ab.count_ones() >= ta.count_ones());
            prop_assert!(ab.count_ones() >= tb.count_ones());
        }
    }
}
