//! Symmetric integer quantization for weights and biases.
//!
//! The paper quantizes model weights and biases to 4-bit integers with
//! quantization-aware training (QAT, Sec. II-B). Neuronal parameters stay in
//! floating point and the accumulated membrane data is de-quantized back to
//! floating point for the spiking operations — which is exactly how the
//! hardware handles it (shift-and-add de-quantization in both cores).
//!
//! This module provides:
//!
//! * [`Precision`] — the numeric format a model or hardware instance operates
//!   in (`Fp32`, `Int8`, `Int4`),
//! * [`QuantParams`] — per-tensor symmetric quantization parameters,
//! * [`QuantizedTensor`] — an integer tensor plus its scale,
//! * [`fake_quantize`] — the QAT forward transform (quantize → dequantize)
//!   whose backward pass is the straight-through estimator implemented in
//!   `snn-train`.

use crate::error::SnnError;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of weights and biases.
///
/// The paper compares `fp32` against `int4`; `int8` is included because the
/// hardware's BRAM primitives have a natural 8-bit minimum width and the
/// ablation benches sweep precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE-754 floating point (no quantization).
    Fp32,
    /// 8-bit symmetric integer quantization.
    Int8,
    /// 4-bit symmetric integer quantization (the paper's `int4`).
    Int4,
}

impl Precision {
    /// Number of bits used to store one weight.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Int8 => 8,
            Precision::Int4 => 4,
        }
    }

    /// Whether this precision requires quantization.
    pub fn is_quantized(self) -> bool {
        !matches!(self, Precision::Fp32)
    }

    /// Largest representable magnitude of the signed integer grid
    /// (e.g. 7 for int4, 127 for int8). Returns `None` for `Fp32`.
    pub fn q_max(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            Precision::Int8 => Some(127),
            Precision::Int4 => Some(7),
        }
    }

    /// All precisions, in decreasing bit-width order.
    pub fn all() -> [Precision; 3] {
        [Precision::Fp32, Precision::Int8, Precision::Int4]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp32 => write!(f, "fp32"),
            Precision::Int8 => write!(f, "int8"),
            Precision::Int4 => write!(f, "int4"),
        }
    }
}

/// Per-tensor symmetric quantization parameters: `q = round(x / scale)`
/// clamped to the signed grid, `x ≈ q * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale factor mapping integers back to reals.
    pub scale: f32,
    /// The precision (grid width) the parameters were computed for.
    pub precision: Precision,
}

impl QuantParams {
    /// Computes symmetric per-tensor parameters from the data's maximum
    /// absolute value.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] when called with `Precision::Fp32`
    /// (there is nothing to quantize) and [`SnnError::NumericalError`] if the
    /// data contains non-finite values.
    pub fn from_tensor(tensor: &Tensor, precision: Precision) -> Result<Self, SnnError> {
        let q_max = precision.q_max().ok_or_else(|| {
            SnnError::config(
                "precision",
                "cannot derive quantization parameters for fp32",
            )
        })?;
        if !tensor.is_finite() {
            return Err(SnnError::numerical(
                "tensor contains non-finite values, cannot quantize",
            ));
        }
        let max_abs = tensor
            .as_slice()
            .iter()
            .fold(0.0_f32, |acc, &x| acc.max(x.abs()));
        // An all-zero tensor still quantizes cleanly with any positive scale.
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / q_max as f32
        };
        Ok(QuantParams { scale, precision })
    }

    /// Quantizes one value to the integer grid.
    pub fn quantize_value(&self, x: f32) -> i32 {
        let q_max = self.precision.q_max().unwrap_or(i32::MAX);
        let q = (x / self.scale).round() as i32;
        q.clamp(-q_max, q_max)
    }

    /// De-quantizes one grid value back to a real.
    pub fn dequantize_value(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// A tensor stored on the integer grid together with its scale, mirroring what
/// the accelerator keeps in BRAM/LUTRAM for quantized models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    shape: Vec<usize>,
    values: Vec<i32>,
    params: QuantParams,
}

impl QuantizedTensor {
    /// Quantizes a floating-point tensor.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`QuantParams::from_tensor`].
    pub fn quantize(tensor: &Tensor, precision: Precision) -> Result<Self, SnnError> {
        let params = QuantParams::from_tensor(tensor, precision)?;
        let values = tensor
            .as_slice()
            .iter()
            .map(|&x| params.quantize_value(x))
            .collect();
        Ok(QuantizedTensor {
            shape: tensor.shape().to_vec(),
            values,
            params,
        })
    }

    /// Shape of the underlying tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Integer grid values.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// De-quantizes back to a floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.values
                .iter()
                .map(|&q| self.params.dequantize_value(q))
                .collect(),
            &self.shape,
        )
        .expect("shape preserved by construction")
    }

    /// Number of bits of on-chip storage the tensor needs at its precision.
    pub fn storage_bits(&self) -> u64 {
        self.values.len() as u64 * u64::from(self.params.precision.bits())
    }

    /// Mean absolute quantization error against a reference tensor.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the reference shape differs.
    pub fn mean_abs_error(&self, reference: &Tensor) -> Result<f32, SnnError> {
        if reference.shape() != self.shape.as_slice() {
            return Err(SnnError::shape(
                &self.shape,
                reference.shape(),
                "QuantizedTensor::mean_abs_error",
            ));
        }
        let deq = self.dequantize();
        let total: f32 = deq
            .as_slice()
            .iter()
            .zip(reference.as_slice().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        Ok(total / self.values.len().max(1) as f32)
    }
}

/// QAT forward transform: quantize then immediately de-quantize, so the rest
/// of the forward pass sees the quantization error. Returns the input
/// unchanged for `Precision::Fp32`.
///
/// # Errors
///
/// Propagates errors from [`QuantParams::from_tensor`].
pub fn fake_quantize(tensor: &Tensor, precision: Precision) -> Result<Tensor, SnnError> {
    if !precision.is_quantized() {
        return Ok(tensor.clone());
    }
    Ok(QuantizedTensor::quantize(tensor, precision)?.dequantize())
}

/// Models the shift-and-add constant multiplier the hardware uses to
/// de-quantize weights without DSP blocks: decomposes `q * scale` where the
/// scale is approximated by a sum of power-of-two terms. Returns the
/// approximated product and the number of add terms (a proxy for LUT cost).
pub fn shift_add_dequantize(q: i32, scale: f32, max_terms: usize) -> (f32, usize) {
    if q == 0 || scale == 0.0 {
        return (0.0, 0);
    }
    // Greedy canonical signed-digit style decomposition of the scale.
    let mut remaining = scale;
    let mut approx = 0.0_f32;
    let mut terms = 0usize;
    while terms < max_terms && remaining.abs() > scale.abs() * 1e-4 {
        let exp = remaining.abs().log2().floor() as i32;
        let term = remaining.signum() * 2.0_f32.powi(exp);
        approx += term;
        remaining -= term;
        terms += 1;
    }
    (q as f32 * approx, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn precision_bits_and_grid() {
        assert_eq!(Precision::Fp32.bits(), 32);
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int4.q_max(), Some(7));
        assert_eq!(Precision::Int8.q_max(), Some(127));
        assert_eq!(Precision::Fp32.q_max(), None);
        assert!(!Precision::Fp32.is_quantized());
        assert!(Precision::Int4.is_quantized());
    }

    #[test]
    fn display_matches_paper_nomenclature() {
        assert_eq!(Precision::Fp32.to_string(), "fp32");
        assert_eq!(Precision::Int4.to_string(), "int4");
    }

    #[test]
    fn quant_params_reject_fp32_and_nan() {
        let t = Tensor::ones(&[4]);
        assert!(QuantParams::from_tensor(&t, Precision::Fp32).is_err());
        let bad = Tensor::from_vec(vec![f32::NAN, 1.0], &[2]).unwrap();
        assert!(QuantParams::from_tensor(&bad, Precision::Int4).is_err());
    }

    #[test]
    fn quantize_roundtrip_error_bounded_by_half_scale() {
        let t = Tensor::from_vec(vec![-0.9, -0.3, 0.0, 0.11, 0.5, 0.77], &[6]).unwrap();
        let q = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
        let deq = q.dequantize();
        let scale = q.params().scale;
        for (a, b) in deq.as_slice().iter().zip(t.as_slice().iter()) {
            assert!((a - b).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn int4_values_stay_on_grid() {
        let t =
            Tensor::from_vec((0..32).map(|i| (i as f32 - 16.0) / 7.0).collect(), &[32]).unwrap();
        let q = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
        assert!(q.values().iter().all(|&v| (-7..=7).contains(&v)));
        assert_eq!(q.storage_bits(), 32 * 4);
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(&[8]);
        let q = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
        assert!(q.values().iter().all(|&v| v == 0));
        assert_eq!(q.dequantize().sum(), 0.0);
    }

    #[test]
    fn fake_quantize_is_identity_for_fp32() {
        let t = Tensor::from_vec(vec![0.123, -0.456, 0.789], &[3]).unwrap();
        let fq = fake_quantize(&t, Precision::Fp32).unwrap();
        assert_eq!(fq, t);
    }

    #[test]
    fn fake_quantize_changes_values_for_int4() {
        let t = Tensor::from_vec(vec![0.1234567, -0.654321, 0.9, -0.33], &[4]).unwrap();
        let fq = fake_quantize(&t, Precision::Int4).unwrap();
        assert_ne!(fq, t);
        // But the error is bounded.
        let q = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
        assert!(q.mean_abs_error(&t).unwrap() < q.params().scale);
    }

    #[test]
    fn int8_error_is_smaller_than_int4_error() {
        let t = Tensor::from_fn(&[256], |i| (i as f32 * 0.37).sin() * 0.8);
        let e4 = QuantizedTensor::quantize(&t, Precision::Int4)
            .unwrap()
            .mean_abs_error(&t)
            .unwrap();
        let e8 = QuantizedTensor::quantize(&t, Precision::Int8)
            .unwrap()
            .mean_abs_error(&t)
            .unwrap();
        assert!(e8 < e4);
    }

    #[test]
    fn shift_add_dequantize_approximates_product() {
        let scale = 0.013_f32;
        let (approx, terms) = shift_add_dequantize(5, scale, 8);
        assert!(terms <= 8);
        assert!((approx - 5.0 * scale).abs() < 5.0 * scale * 0.01);
        assert_eq!(shift_add_dequantize(0, scale, 8), (0.0, 0));
    }

    proptest! {
        /// Quantization round-trip error is always at most half a scale step.
        #[test]
        fn roundtrip_error_bound(values in proptest::collection::vec(-10.0_f32..10.0, 1..200)) {
            let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
            let q = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
            let deq = q.dequantize();
            let scale = q.params().scale;
            for (a, b) in deq.as_slice().iter().zip(t.as_slice().iter()) {
                prop_assert!((a - b).abs() <= scale / 2.0 + scale * 1e-5);
            }
        }

        /// Quantized storage is always smaller than fp32 storage for int4/int8.
        #[test]
        fn storage_always_shrinks(len in 1_usize..500) {
            let t = Tensor::ones(&[len]);
            let q4 = QuantizedTensor::quantize(&t, Precision::Int4).unwrap();
            let q8 = QuantizedTensor::quantize(&t, Precision::Int8).unwrap();
            prop_assert_eq!(q4.storage_bits(), len as u64 * 4);
            prop_assert_eq!(q8.storage_bits(), len as u64 * 8);
            prop_assert!(q4.storage_bits() < len as u64 * 32);
            prop_assert!(q8.storage_bits() < len as u64 * 32);
        }

        /// Fake-quantization is idempotent: applying it twice equals once.
        #[test]
        fn fake_quantize_idempotent(values in proptest::collection::vec(-1.0_f32..1.0, 1..100)) {
            let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
            let once = fake_quantize(&t, Precision::Int4).unwrap();
            let twice = fake_quantize(&once, Precision::Int4).unwrap();
            for (a, b) in once.as_slice().iter().zip(twice.as_slice().iter()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
