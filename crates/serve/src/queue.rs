//! The bounded MPSC request queue between acceptors and batch workers.
//!
//! Producers ([`crate::ServeCore::submit`]) push without ever blocking:
//! [`BoundedQueue::try_push`] either enqueues or reports why it cannot
//! (shedding threshold reached, or the queue is closed). Consumers (the
//! batch workers) block on [`BoundedQueue::pop_batch`], which implements the
//! dynamic-batching drain policy: wait for the first request, then keep
//! coalescing until either `max_batch` requests are in hand or the
//! `max_delay` latency budget (measured from the first pop) has elapsed —
//! whichever comes first. After [`BoundedQueue::close`], producers are
//! rejected but consumers keep draining until the queue is empty, so
//! in-flight requests always complete.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a non-blocking push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefusal {
    /// Depth reached the shedding threshold; the item was not enqueued.
    Full {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The queue was closed; no further items are accepted.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Largest depth ever observed (after a push).
    peak_depth: usize,
}

/// A bounded multi-producer queue with batch-draining consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue that holds at most `capacity` items (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` unless the depth has reached `shed_at` (clamped to
    /// the hard capacity) or the queue is closed. Never blocks; returns the
    /// depth after the push on success and hands the refused item back
    /// otherwise (so the caller can report without cloning).
    pub fn try_push(&self, item: T, shed_at: usize) -> Result<usize, (T, PushRefusal)> {
        let limit = shed_at.min(self.capacity);
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err((item, PushRefusal::Closed));
        }
        let depth = state.items.len();
        if depth >= limit {
            return Err((item, PushRefusal::Full { depth }));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        state.peak_depth = state.peak_depth.max(depth);
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Drains the next coalesced batch into `out` (cleared first).
    ///
    /// Blocks until at least one item is available, then keeps collecting
    /// until `out.len() == max_batch` or `max_delay` has elapsed since the
    /// first item was taken. Once the queue is closed, remaining items are
    /// drained without waiting out the delay budget (no new arrivals can
    /// come). Returns `false` — the consumer should exit — only when the
    /// queue is closed *and* empty.
    pub fn pop_batch(&self, out: &mut Vec<T>, max_batch: usize, max_delay: Duration) -> bool {
        out.clear();
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("queue lock poisoned");
        // Phase 1: wait for the first request (or closure).
        while state.items.is_empty() {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
        // Phase 2: coalesce under the latency budget.
        let deadline = Instant::now() + max_delay;
        loop {
            while out.len() < max_batch {
                match state.items.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if out.len() >= max_batch || state.closed {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (next, timed_out) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("queue lock poisoned");
            state = next;
            if timed_out.timed_out() && state.items.is_empty() {
                return true;
            }
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Largest depth ever observed.
    pub fn peak_depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").peak_depth
    }

    /// Closes the queue: producers are refused from now on, consumers drain
    /// what remains and then stop.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    #[cfg(test)]
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Whether the queue is closed *and* empty — the terminal state after
    /// which a consumer's [`BoundedQueue::pop_batch`] returns `false`.
    /// Monotonic: once true it stays true (a closed queue accepts no
    /// pushes), so the supervisor can use it to distinguish a worker's
    /// normal drain-complete exit from an abnormal death.
    pub fn is_shutdown(&self) -> bool {
        let state = self.state.lock().expect("queue lock poisoned");
        state.closed && state.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_until_shed_then_reject() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1, 3).unwrap(), 1);
        assert_eq!(q.try_push(2, 3).unwrap(), 2);
        assert_eq!(q.try_push(3, 3).unwrap(), 3);
        let (item, refusal) = q.try_push(4, 3).unwrap_err();
        assert_eq!(item, 4);
        assert_eq!(refusal, PushRefusal::Full { depth: 3 });
        // A lower shedding threshold rejects earlier than the capacity.
        let q = BoundedQueue::new(8);
        q.try_push(1, 1).unwrap();
        assert!(matches!(
            q.try_push(2, 1),
            Err((2, PushRefusal::Full { depth: 1 }))
        ));
        assert_eq!(q.peak_depth(), 1);
    }

    #[test]
    fn pop_batch_respects_max_batch_and_fifo_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i, 16).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 4, Duration::from_millis(50)));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(q.pop_batch(&mut out, 100, Duration::from_millis(1)));
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_batch_waits_out_the_delay_budget_for_stragglers() {
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(0, 16).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.try_push(1, 16).unwrap();
            })
        };
        let mut out = Vec::new();
        // Generous budget: the straggler lands inside it and is coalesced.
        assert!(q.pop_batch(&mut out, 4, Duration::from_millis(500)));
        producer.join().unwrap();
        assert!(out.contains(&0));
        // The batch either coalesced the straggler or (extreme scheduling
        // delay) it is still queued; both leave nothing lost.
        assert_eq!(out.len() + q.depth(), 2);
    }

    #[test]
    fn pop_batch_flushes_at_deadline_without_full_batch() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(7, 4).unwrap();
        let mut out = Vec::new();
        let start = Instant::now();
        assert!(q.pop_batch(&mut out, 4, Duration::from_millis(20)));
        assert_eq!(out, vec![7]);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = BoundedQueue::new(8);
        q.try_push(1, 8).unwrap();
        q.try_push(2, 8).unwrap();
        q.close();
        assert!(matches!(q.try_push(3, 8), Err((3, PushRefusal::Closed))));
        let mut out = Vec::new();
        // Remaining items drain immediately (no delay wait after close).
        let start = Instant::now();
        assert!(q.pop_batch(&mut out, 8, Duration::from_secs(5)));
        assert_eq!(out, vec![1, 2]);
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(!q.pop_batch(&mut out, 8, Duration::from_secs(5)));
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(&mut out, 4, Duration::from_secs(30))
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(!consumer.join().unwrap(), "woken consumer reports closure");
    }
}
