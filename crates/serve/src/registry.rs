//! Multi-model registry: named models, validated atomic hot-reload,
//! per-model drift tracking and health states.
//!
//! One [`ServeCore`] serves one model forever; production serving needs a
//! *lifecycle* around it — several named models behind one endpoint, new
//! versions swapped in under traffic, bad versions kept out, and a live
//! fidelity signal when the traffic a model sees stops resembling the
//! traffic its accelerator estimates were calibrated on. [`ModelZoo`] is
//! that layer:
//!
//! - **Routing.** Requests carry an optional model id
//!   ([`InferenceRequest::model`]); the zoo routes them to the named
//!   entry's core, or to the default model (the first registered) when the
//!   id is absent. Unknown names get the typed
//!   [`ServeError::UnknownModel`] (HTTP 404).
//! - **Validated atomic hot-reload.** [`ModelZoo::swap`] (and
//!   [`ModelZoo::load_with`], which reads a CRC-verified
//!   `snn-core::io::Checkpoint` first) runs the candidate through seeded
//!   **golden probes** ([`ProbeSpec`]: finite logits, expected class
//!   count, optional bitwise match against recorded golden outputs)
//!   *before* publishing it. A failing candidate never serves a request
//!   and never disturbs the incumbent — the swap returns the typed
//!   [`ServeError::ValidationFailed`] and the old version keeps serving.
//!   The publish itself is an epoch bump: worker runners re-check the
//!   epoch at batch start only, so in-flight batches finish on the version
//!   they dequeued with. [`ModelZoo::rollback`] restores the previous
//!   retained version with one call.
//! - **Drift detection.** Every successful result's spike record is folded
//!   into a per-model [`DriftTracker`] (via the core's
//!   [`ResultObserver`](crate::core::ResultObserver) hook — allocation-free
//!   in steady state). When the windowed per-layer spike-rate distribution
//!   diverges from the calibration baseline beyond the configured KL
//!   threshold, the model's health flips `Healthy →`
//!   [`ModelHealth::Degraded`], surfaced in `/v1/stats` and `/healthz` and
//!   enforced per [`DriftPolicy`]: *annotate* responses (the wire carries a
//!   `degraded` flag) or *shed* with the retryable
//!   [`ServeError::Degraded`] (HTTP 503 + `Retry-After`). Wedge detection
//!   from the core composes in as the terminal [`ModelHealth::Wedged`]
//!   state.

use crate::core::{
    InferenceRequest, ModelRunner, ResponseHandle, ServeConfig, ServeCore, ServeModel, ServeStats,
    ServedResponse,
};
use crate::error::ServeError;
use serde::Serialize;
use snn_core::io::Checkpoint;
use snn_core::stats::{DriftConfig, DriftStatus, DriftTracker};
use snn_core::SnnError;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---------------------------------------------------------------------------
// Epoch-pinned swappable model
// ---------------------------------------------------------------------------

/// The published version of a [`SwappableModel`]: what new runners build
/// from. `epoch` is stored alongside so a runner that rebuilds under the
/// lock records exactly the epoch of the model it built.
struct CurrentVersion<M: ServeModel> {
    version: String,
    model: Arc<M>,
    epoch: u64,
}

struct SwapState<M: ServeModel> {
    /// Cheap swap signal mirrored from [`CurrentVersion::epoch`]; runners
    /// poll this once per batch and only take the lock when it moved.
    epoch: AtomicU64,
    current: Mutex<CurrentVersion<M>>,
    /// Retained predecessors, oldest first (bounded by `retain`).
    previous: Mutex<Vec<(String, Arc<M>)>>,
    retain: usize,
}

/// A [`ServeModel`] whose inner model can be atomically replaced while a
/// core serves it.
///
/// The swap is **epoch-pinned**: each worker's [`SwappableRunner`] checks
/// the epoch counter once at the start of every batch and rebuilds its
/// inner runner only when the epoch moved. A batch that already started
/// therefore finishes on the version it dequeued with — a swap never
/// changes results mid-batch, preserving the serving determinism contract
/// (a request's result depends only on its `(image, seed)` and the version
/// that served it).
pub struct SwappableModel<M: ServeModel> {
    state: Arc<SwapState<M>>,
}

impl<M: ServeModel> Clone for SwappableModel<M> {
    fn clone(&self) -> Self {
        SwappableModel {
            state: Arc::clone(&self.state),
        }
    }
}

impl<M: ServeModel> std::fmt::Debug for SwappableModel<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwappableModel")
            .field("version", &self.version())
            .field("epoch", &self.state.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl<M: ServeModel> SwappableModel<M> {
    /// Wraps `model` as the initial version. `retain` bounds how many
    /// predecessor versions are kept for [`SwappableModel::rollback`].
    pub fn new(version: impl Into<String>, model: M, retain: usize) -> Self {
        SwappableModel {
            state: Arc::new(SwapState {
                epoch: AtomicU64::new(0),
                current: Mutex::new(CurrentVersion {
                    version: version.into(),
                    model: Arc::new(model),
                    epoch: 0,
                }),
                previous: Mutex::new(Vec::new()),
                retain,
            }),
        }
    }

    /// The currently published version id.
    pub fn version(&self) -> String {
        self.state
            .current
            .lock()
            .expect("swap state poisoned")
            .version
            .clone()
    }

    /// Number of swaps (and rollbacks) ever published.
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::Acquire)
    }

    /// Atomically publishes `model` as `version`, retaining the incumbent
    /// for rollback. Unvalidated — the zoo validates first; use this
    /// directly only when the candidate is known good.
    pub fn swap(&self, version: impl Into<String>, model: M) {
        let mut current = self.state.current.lock().expect("swap state poisoned");
        let epoch = current.epoch + 1;
        let old = std::mem::replace(
            &mut *current,
            CurrentVersion {
                version: version.into(),
                model: Arc::new(model),
                epoch,
            },
        );
        let mut previous = self.state.previous.lock().expect("swap state poisoned");
        previous.push((old.version, old.model));
        let excess = previous.len().saturating_sub(self.state.retain);
        previous.drain(..excess);
        drop(previous);
        // Publish last, while still holding the current lock: a runner
        // that sees the new epoch is guaranteed to find the new model.
        self.state.epoch.store(epoch, Ordering::Release);
    }

    /// Restores the most recently retained version, discarding the current
    /// one (a version rolled back from is presumed bad — it is *not*
    /// retained). Returns the restored version id, or `None` when nothing
    /// is retained.
    pub fn rollback(&self) -> Option<String> {
        let mut current = self.state.current.lock().expect("swap state poisoned");
        let (version, model) = self
            .state
            .previous
            .lock()
            .expect("swap state poisoned")
            .pop()?;
        let restored = version.clone();
        let epoch = current.epoch + 1;
        *current = CurrentVersion {
            version,
            model,
            epoch,
        };
        self.state.epoch.store(epoch, Ordering::Release);
        Some(restored)
    }

    /// Snapshot of the current `(version, model)` for validation probes.
    fn snapshot(&self) -> (String, Arc<M>) {
        let current = self.state.current.lock().expect("swap state poisoned");
        (current.version.clone(), Arc::clone(&current.model))
    }
}

/// Worker-side runner of a [`SwappableModel`]: delegates to the current
/// version's runner, rebuilding it at batch start when the epoch moved.
pub struct SwappableRunner<M: ServeModel> {
    state: Arc<SwapState<M>>,
    runner: M::Runner,
    epoch_seen: u64,
}

impl<M: ServeModel> ModelRunner for SwappableRunner<M> {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<crate::core::InferenceResult, SnnError>> {
        // The one version check per batch: everything after this line runs
        // on whatever version was current here, even if a swap lands while
        // the batch executes.
        if self.state.epoch.load(Ordering::Acquire) != self.epoch_seen {
            let current = self.state.current.lock().expect("swap state poisoned");
            self.runner = current.model.runner();
            self.epoch_seen = current.epoch;
        }
        self.runner.run_batch(requests)
    }
}

impl<M: ServeModel> ServeModel for SwappableModel<M> {
    type Runner = SwappableRunner<M>;

    fn runner(&self) -> SwappableRunner<M> {
        let current = self.state.current.lock().expect("swap state poisoned");
        SwappableRunner {
            runner: current.model.runner(),
            epoch_seen: current.epoch,
            state: Arc::clone(&self.state),
        }
    }
}

// ---------------------------------------------------------------------------
// Golden-probe validation
// ---------------------------------------------------------------------------

/// One seeded validation probe run against every hot-reload candidate
/// *before* it is published.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Probe input tensor.
    pub input: snn_core::tensor::Tensor,
    /// Encoder seed the probe runs under (golden outputs are only
    /// reproducible under a fixed seed).
    pub seed: u64,
    /// Expected logit count (the model's class count), when known.
    pub expected_classes: Option<usize>,
    /// Recorded golden logits this probe must reproduce **bitwise**, when
    /// provided. Record them from a known-good version via
    /// [`ModelZoo::record_golden`]; leave `None` when swapping to a
    /// version whose outputs legitimately differ.
    pub golden_logits: Option<Vec<f32>>,
}

impl ProbeSpec {
    /// A probe checking only output sanity (finite logits, `classes`
    /// outputs) — the right default when candidate versions may produce
    /// different scores.
    pub fn sanity(input: snn_core::tensor::Tensor, seed: u64, classes: usize) -> Self {
        ProbeSpec {
            input,
            seed,
            expected_classes: Some(classes),
            golden_logits: None,
        }
    }
}

/// Runs `probes` against `model` (building a throwaway runner) and returns
/// the typed [`ServeError::ValidationFailed`] on the first violation:
/// per-probe model error, panic, empty or non-finite logits, a class-count
/// mismatch, or a golden-output mismatch. A panicking candidate is
/// contained here exactly like a panicking batch in the core.
fn validate_candidate<M: ServeModel>(
    model: &M,
    version: &str,
    probes: &[ProbeSpec],
) -> Result<(), ServeError> {
    let fail = |reason: String| ServeError::ValidationFailed {
        version: version.to_string(),
        reason,
    };
    if probes.is_empty() {
        return Ok(());
    }
    let requests: Vec<InferenceRequest> = probes
        .iter()
        .map(|p| InferenceRequest::seeded(p.input.clone(), p.seed))
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut runner = model.runner();
        runner.run_batch(requests)
    }));
    let results = match outcome {
        Ok(results) => results,
        Err(payload) => {
            return Err(fail(format!(
                "candidate panicked on probe batch: {}",
                crate::core::panic_message(payload.as_ref())
            )))
        }
    };
    if results.len() != probes.len() {
        return Err(fail(format!(
            "candidate answered {} of {} probes",
            results.len(),
            probes.len()
        )));
    }
    for (i, (probe, result)) in probes.iter().zip(results).enumerate() {
        let result = result.map_err(|e| fail(format!("probe {i} failed: {e}")))?;
        if result.logits.is_empty() {
            return Err(fail(format!("probe {i} produced no logits")));
        }
        if let Some(bad) = result.logits.iter().find(|v| !v.is_finite()) {
            return Err(fail(format!("probe {i} produced non-finite logit {bad}")));
        }
        if let Some(classes) = probe.expected_classes {
            if result.logits.len() != classes {
                return Err(fail(format!(
                    "probe {i} produced {} logits, expected {classes}",
                    result.logits.len()
                )));
            }
        }
        if let Some(golden) = &probe.golden_logits {
            let matches = golden.len() == result.logits.len()
                && golden
                    .iter()
                    .zip(&result.logits)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !matches {
                return Err(fail(format!(
                    "probe {i} logits diverge bitwise from the recorded golden outputs"
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Health, policy and per-model configuration
// ---------------------------------------------------------------------------

/// What the registry does with requests routed to a drift-Degraded model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftPolicy {
    /// Serve the request but mark the response as degraded (JSON field
    /// `degraded`, binary status [`STATUS_OK_DEGRADED`]) — the caller
    /// decides whether a possibly-miscalibrated estimate is still useful.
    ///
    /// [`STATUS_OK_DEGRADED`]: crate::protocol::STATUS_OK_DEGRADED
    #[default]
    Annotate,
    /// Refuse the request with the retryable [`ServeError::Degraded`]
    /// (HTTP 503 + `Retry-After`), pushing traffic to healthy replicas
    /// until an operator swaps or rolls the model back.
    Shed,
}

/// Per-model health state machine, composing drift detection with the
/// core's wedge detection. Ordering: `Wedged` (terminal, the model cannot
/// run) dominates `Degraded` (running, but off its calibration baseline)
/// dominates `Healthy`.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelHealth {
    /// Serving, with spike-rate distributions within the drift threshold
    /// (or still calibrating).
    Healthy,
    /// Serving, but the drift tracker's windowed spike-rate distribution
    /// diverged from the calibration baseline.
    Degraded {
        /// The largest per-layer KL divergence, in nats.
        kl: f64,
        /// The layer that diverged the most.
        layer: String,
    },
    /// The core declared the model wedged (workers died repeatedly without
    /// progress); its queue is closed. Terminal — swap in a working
    /// version under a fresh name.
    Wedged,
}

impl ModelHealth {
    /// Lowercase state name for wire surfaces (`healthy` / `degraded` /
    /// `wedged`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ModelHealth::Healthy => "healthy",
            ModelHealth::Degraded { .. } => "degraded",
            ModelHealth::Wedged => "wedged",
        }
    }
}

/// Per-model registry configuration: the core's serving parameters plus
/// the model-lifecycle knobs this layer adds.
#[derive(Debug, Clone, Default)]
pub struct ZooConfig {
    /// Queue/batcher/supervision configuration of the model's core.
    pub serve: ServeConfig,
    /// Drift-tracker configuration (calibration runs, window, threshold).
    pub drift: DriftConfig,
    /// What to do with requests while the model is Degraded.
    pub drift_policy: DriftPolicy,
    /// Golden probes every hot-reload candidate must pass before a swap.
    /// Empty means swaps are unvalidated (discouraged outside tests).
    pub probes: Vec<ProbeSpec>,
    /// How many predecessor versions to retain for rollback (default 1).
    /// 0 disables rollback.
    pub retain: Option<usize>,
}

/// Per-model statistics section of [`ZooStats`], serialized under the
/// model's name in `/v1/stats`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelStats {
    /// Currently published version id.
    pub version: String,
    /// Health state name (`healthy` / `degraded` / `wedged`).
    pub health: String,
    /// Largest per-layer KL divergence of the drift window against the
    /// calibration baseline (0 until calibrated and filled).
    pub drift_kl: f64,
    /// The layer behind `drift_kl`, once the tracker has a verdict.
    pub drift_layer: Option<String>,
    /// Whether the drift baseline has frozen (monitoring active).
    pub drift_calibrated: bool,
    /// Runs folded into the drift tracker since the last swap/rollback.
    pub drift_observed: u64,
    /// Successful validated swaps published for this model.
    pub swaps: u64,
    /// Hot-reload candidates rejected by golden-probe validation (each one
    /// never served a request).
    pub validation_failures: u64,
    /// Rollbacks published for this model.
    pub rollbacks: u64,
    /// The model core's counters and latency quantiles (requests,
    /// restarts, deadline shedding, queue depths).
    pub serve: ServeStats,
}

/// Registry-wide statistics: one [`ModelStats`] section per model, keyed
/// by name — the `/v1/stats` JSON shape documented in the crate README.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ZooStats {
    /// The model unnamed requests route to.
    pub default_model: Option<String>,
    /// Per-model sections, keyed by model name.
    pub models: BTreeMap<String, ModelStats>,
}

#[derive(Debug, Default)]
struct EntryCounters {
    swaps: u64,
    validation_failures: u64,
    rollbacks: u64,
}

struct ModelEntry<M: ServeModel> {
    swappable: SwappableModel<M>,
    core: ServeCore<SwappableModel<M>>,
    drift: Arc<Mutex<DriftTracker>>,
    policy: DriftPolicy,
    probes: Mutex<Vec<ProbeSpec>>,
    counters: Mutex<EntryCounters>,
}

impl<M: ServeModel> ModelEntry<M> {
    fn drift_status(&self) -> DriftStatus {
        self.drift.lock().expect("drift tracker poisoned").status()
    }

    fn health(&self) -> ModelHealth {
        if self.core.is_wedged() {
            return ModelHealth::Wedged;
        }
        let status = self.drift_status();
        if status.drifted {
            ModelHealth::Degraded {
                kl: status.max_kl,
                layer: status.worst_layer.unwrap_or_default(),
            }
        } else {
            ModelHealth::Healthy
        }
    }

    fn stats(&self) -> ModelStats {
        let drift = self.drift_status();
        let counters = self.counters.lock().expect("counters poisoned");
        ModelStats {
            version: self.swappable.version(),
            health: self.health().as_str().to_string(),
            drift_kl: drift.max_kl,
            drift_layer: drift.worst_layer,
            drift_calibrated: drift.calibrated,
            drift_observed: drift.observed,
            swaps: counters.swaps,
            validation_failures: counters.validation_failures,
            rollbacks: counters.rollbacks,
            serve: self.core.stats(),
        }
    }
}

struct ZooMap<M: ServeModel> {
    entries: BTreeMap<String, Arc<ModelEntry<M>>>,
    /// First-registered model; unnamed requests route here.
    default_model: Option<String>,
}

/// The multi-model registry. Cheap to clone (an `Arc` handle) so
/// transports, examples and operators can hold it concurrently; see the
/// [module docs](self) for the full lifecycle story.
///
/// # Example
///
/// ```
/// use snn_serve::registry::{ModelZoo, ZooConfig};
/// use snn_serve::{InferenceRequest, InferenceResult, ModelRunner, ServeModel};
/// use snn_core::tensor::Tensor;
/// use snn_core::SnnError;
///
/// struct Toy(f32);
/// struct ToyRunner(f32);
/// impl ModelRunner for ToyRunner {
///     fn run_batch(
///         &mut self,
///         requests: Vec<InferenceRequest>,
///     ) -> Vec<Result<InferenceResult, SnnError>> {
///         requests
///             .into_iter()
///             .map(|r| {
///                 let sum: f32 = r.image.as_slice().iter().sum();
///                 Ok(InferenceResult::from_logits(vec![sum * self.0, -sum]))
///             })
///             .collect()
///     }
/// }
/// impl ServeModel for Toy {
///     type Runner = ToyRunner;
///     fn runner(&self) -> ToyRunner {
///         ToyRunner(self.0)
///     }
/// }
///
/// let zoo = ModelZoo::new();
/// zoo.register("toy", "v1", Toy(1.0), ZooConfig::default()).unwrap();
/// let image = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
/// let response = zoo
///     .infer(InferenceRequest::new(image.clone()).with_model("toy"))
///     .unwrap();
/// assert_eq!(response.result.logits[0], 3.0);
///
/// // Validated hot-swap: v2 doubles the score; in-flight batches finish
/// // on whichever version they dequeued with.
/// zoo.swap("toy", "v2", Toy(2.0)).unwrap();
/// let response = zoo.infer(InferenceRequest::new(image)).unwrap();
/// assert_eq!(response.result.logits[0], 6.0);
/// assert_eq!(zoo.rollback("toy").unwrap(), "v1");
/// zoo.shutdown();
/// ```
pub struct ModelZoo<M: ServeModel> {
    inner: Arc<RwLock<ZooMap<M>>>,
}

impl<M: ServeModel> Clone for ModelZoo<M> {
    fn clone(&self) -> Self {
        ModelZoo {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: ServeModel> std::fmt::Debug for ModelZoo<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.read().expect("zoo poisoned");
        f.debug_struct("ModelZoo")
            .field("models", &map.entries.keys().collect::<Vec<_>>())
            .field("default_model", &map.default_model)
            .finish()
    }
}

impl<M: ServeModel> Default for ModelZoo<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: ServeModel> ModelZoo<M> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelZoo {
            inner: Arc::new(RwLock::new(ZooMap {
                entries: BTreeMap::new(),
                default_model: None,
            })),
        }
    }

    /// Registers `model` under `name` at `version` and starts its serving
    /// core. The first registered model becomes the default route for
    /// requests that carry no model id. The initial version is validated
    /// against `config.probes` exactly like a hot-reload candidate.
    ///
    /// # Errors
    ///
    /// A config error for a duplicate or empty name or an invalid
    /// serve/drift configuration; [`ServeError::ValidationFailed`] when
    /// the model fails its own probes.
    pub fn register(
        &self,
        name: impl Into<String>,
        version: impl Into<String>,
        model: M,
        config: ZooConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let version = version.into();
        if name.is_empty() || name.len() > u8::MAX as usize {
            return Err(ServeError::Model(SnnError::config(
                "name",
                "model names must be 1..=255 bytes (the wire length prefix is a u8)",
            )));
        }
        validate_candidate(&model, &version, &config.probes)?;
        let drift = Arc::new(Mutex::new(
            DriftTracker::new(config.drift).map_err(ServeError::Model)?,
        ));
        let swappable = SwappableModel::new(version, model, config.retain.unwrap_or(1));
        let observer = {
            let drift = Arc::clone(&drift);
            Arc::new(move |result: &crate::core::InferenceResult| {
                drift
                    .lock()
                    .expect("drift tracker poisoned")
                    .observe(&result.record);
            }) as crate::core::ResultObserver
        };
        let core = ServeCore::start_with_observer(swappable.clone(), config.serve, Some(observer))?;
        let entry = Arc::new(ModelEntry {
            swappable,
            core,
            drift,
            policy: config.drift_policy,
            probes: Mutex::new(config.probes),
            counters: Mutex::new(EntryCounters::default()),
        });
        let mut map = self.inner.write().expect("zoo poisoned");
        if map.entries.contains_key(&name) {
            // The freshly started core must not leak its threads.
            entry.core.shutdown();
            return Err(ServeError::Model(SnnError::config(
                "name",
                format!("a model named {name:?} is already registered"),
            )));
        }
        if map.default_model.is_none() {
            map.default_model = Some(name.clone());
        }
        map.entries.insert(name, entry);
        Ok(())
    }

    fn entry(&self, name: &str) -> Result<Arc<ModelEntry<M>>, ServeError> {
        self.inner
            .read()
            .expect("zoo poisoned")
            .entries
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                model: name.to_string(),
            })
    }

    fn route(&self, request: &InferenceRequest) -> Result<Arc<ModelEntry<M>>, ServeError> {
        match &request.model {
            Some(name) => self.entry(name),
            None => {
                let map = self.inner.read().expect("zoo poisoned");
                let name =
                    map.default_model
                        .as_deref()
                        .ok_or_else(|| ServeError::UnknownModel {
                            model: "(default: registry is empty)".to_string(),
                        })?;
                map.entries
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ServeError::UnknownModel {
                        model: name.to_string(),
                    })
            }
        }
    }

    /// Registered model names (sorted).
    pub fn models(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("zoo poisoned")
            .entries
            .keys()
            .cloned()
            .collect()
    }

    /// The model unnamed requests route to (the first registered).
    pub fn default_model(&self) -> Option<String> {
        self.inner
            .read()
            .expect("zoo poisoned")
            .default_model
            .clone()
    }

    /// Validates `model` against the entry's probes and, on success,
    /// atomically publishes it as `version` (epoch-pinned: in-flight
    /// batches finish on the version they dequeued with). The incumbent is
    /// retained for [`ModelZoo::rollback`] and the drift tracker is reset
    /// to recalibrate against the new version's traffic.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name;
    /// [`ServeError::ValidationFailed`] when a probe fails — **the
    /// candidate is discarded and the incumbent keeps serving,
    /// undisturbed.**
    pub fn swap(&self, name: &str, version: impl Into<String>, model: M) -> Result<(), ServeError> {
        let entry = self.entry(name)?;
        let version = version.into();
        let probes = entry.probes.lock().expect("probes poisoned").clone();
        if let Err(e) = validate_candidate(&model, &version, &probes) {
            entry
                .counters
                .lock()
                .expect("counters poisoned")
                .validation_failures += 1;
            return Err(e);
        }
        entry.swappable.swap(version, model);
        entry.counters.lock().expect("counters poisoned").swaps += 1;
        // The spike-rate baseline describes the *previous* version's steady
        // state; recalibrate against the new one.
        entry.drift.lock().expect("drift tracker poisoned").reset();
        Ok(())
    }

    /// Reads a checkpoint through the crash-safe CRC-verified
    /// `snn-core::io` path, builds a model from it with `build`, and
    /// publishes it via [`ModelZoo::swap`] (golden-probe validated). A
    /// corrupted file, a failing build, or a failing probe leaves the
    /// incumbent serving and returns the typed error — the candidate never
    /// serves a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for an unreadable/corrupt checkpoint (the
    /// CRC-64 trailer catches silent corruption) or a failing `build`;
    /// otherwise as [`ModelZoo::swap`].
    pub fn load_with<F>(
        &self,
        name: &str,
        version: impl Into<String>,
        path: impl AsRef<Path>,
        build: F,
    ) -> Result<(), ServeError>
    where
        F: FnOnce(Checkpoint) -> Result<M, SnnError>,
    {
        // Surface load/build failures on the same counter as probe
        // failures: every rejected candidate is observable.
        let entry = self.entry(name)?;
        let checkpoint = match Checkpoint::load(path) {
            Ok(c) => c,
            Err(e) => {
                entry
                    .counters
                    .lock()
                    .expect("counters poisoned")
                    .validation_failures += 1;
                return Err(ServeError::Model(e));
            }
        };
        let model = match build(checkpoint) {
            Ok(m) => m,
            Err(e) => {
                entry
                    .counters
                    .lock()
                    .expect("counters poisoned")
                    .validation_failures += 1;
                return Err(ServeError::Model(e));
            }
        };
        self.swap(name, version, model)
    }

    /// Rolls `name` back to its most recently retained version (one call,
    /// epoch-pinned like a swap) and resets its drift tracker — the
    /// restored version recalibrates against current traffic, so a drift
    /// flag raised by the rolled-back version clears. Returns the restored
    /// version id.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name; a config
    /// error when no predecessor is retained.
    pub fn rollback(&self, name: &str) -> Result<String, ServeError> {
        let entry = self.entry(name)?;
        let restored = entry.swappable.rollback().ok_or_else(|| {
            ServeError::Model(SnnError::config(
                "rollback",
                format!("model {name:?} has no retained predecessor version"),
            ))
        })?;
        entry.counters.lock().expect("counters poisoned").rollbacks += 1;
        entry.drift.lock().expect("drift tracker poisoned").reset();
        Ok(restored)
    }

    /// Replaces the golden probes future swaps of `name` must pass (e.g.
    /// after recording goldens from a new known-good version).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name.
    pub fn set_probes(&self, name: &str, probes: Vec<ProbeSpec>) -> Result<(), ServeError> {
        let entry = self.entry(name)?;
        *entry.probes.lock().expect("probes poisoned") = probes;
        Ok(())
    }

    /// Runs `name`'s current version over the entry's probes and records
    /// each probe's logits as its golden outputs — future swaps must then
    /// reproduce them bitwise (use after publishing a known-good version
    /// whose outputs define correctness for reloads of the same weights).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name;
    /// [`ServeError::ValidationFailed`] when the current version itself
    /// fails a probe.
    pub fn record_golden(&self, name: &str) -> Result<(), ServeError> {
        let entry = self.entry(name)?;
        let (version, model) = entry.swappable.snapshot();
        let mut probes = entry.probes.lock().expect("probes poisoned");
        let requests: Vec<InferenceRequest> = probes
            .iter()
            .map(|p| InferenceRequest::seeded(p.input.clone(), p.seed))
            .collect();
        if requests.is_empty() {
            return Ok(());
        }
        let fail = |reason: String| ServeError::ValidationFailed {
            version: version.clone(),
            reason,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut runner = model.runner();
            runner.run_batch(requests)
        }));
        let results = match outcome {
            Ok(results) => results,
            Err(payload) => {
                return Err(fail(format!(
                    "current version panicked on probe batch: {}",
                    crate::core::panic_message(payload.as_ref())
                )))
            }
        };
        if results.len() != probes.len() {
            return Err(fail(format!(
                "current version answered {} of {} probes",
                results.len(),
                probes.len()
            )));
        }
        for (i, (probe, result)) in probes.iter_mut().zip(results).enumerate() {
            let result = result.map_err(|e| ServeError::ValidationFailed {
                version: version.clone(),
                reason: format!("probe {i} failed on the current version: {e}"),
            })?;
            probe.golden_logits = Some(result.logits);
        }
        Ok(())
    }

    /// Routes and submits a request (never blocks). The drift policy is
    /// enforced here for [`DriftPolicy::Shed`] entries.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unknown (or absent-and-empty)
    /// model id, [`ServeError::Degraded`] under the shed policy while the
    /// model is drift-flagged, plus everything
    /// [`ServeCore::submit`] returns.
    pub fn submit(&self, request: InferenceRequest) -> Result<ResponseHandle, ServeError> {
        let entry = self.route(&request)?;
        if entry.policy == DriftPolicy::Shed {
            if let ModelHealth::Degraded { kl, layer } = entry.health() {
                return Err(ServeError::Degraded { kl, layer });
            }
        }
        entry.core.submit(request)
    }

    /// Convenience: [`ModelZoo::submit`] then wait.
    ///
    /// # Errors
    ///
    /// Same as [`ModelZoo::submit`], plus any model error.
    pub fn infer(&self, request: InferenceRequest) -> Result<ServedResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Like [`ModelZoo::infer`], additionally reporting whether the
    /// serving model was drift-Degraded at response time (the annotation
    /// transports put on the wire under [`DriftPolicy::Annotate`]).
    ///
    /// # Errors
    ///
    /// Same as [`ModelZoo::infer`].
    pub fn infer_annotated(
        &self,
        request: InferenceRequest,
    ) -> Result<(ServedResponse, bool), ServeError> {
        let entry = self.route(&request)?;
        if entry.policy == DriftPolicy::Shed {
            if let ModelHealth::Degraded { kl, layer } = entry.health() {
                return Err(ServeError::Degraded { kl, layer });
            }
        }
        let response = entry.core.submit(request)?.wait()?;
        let degraded = matches!(entry.health(), ModelHealth::Degraded { .. });
        Ok((response, degraded))
    }

    /// Health of one model.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name.
    pub fn health(&self, name: &str) -> Result<ModelHealth, ServeError> {
        Ok(self.entry(name)?.health())
    }

    /// Health of every registered model, keyed by name.
    pub fn health_all(&self) -> BTreeMap<String, ModelHealth> {
        let map = self.inner.read().expect("zoo poisoned");
        map.entries
            .iter()
            .map(|(name, entry)| (name.clone(), entry.health()))
            .collect()
    }

    /// Per-model statistics snapshot (the `/v1/stats` payload).
    pub fn stats(&self) -> ZooStats {
        let map = self.inner.read().expect("zoo poisoned");
        ZooStats {
            default_model: map.default_model.clone(),
            models: map
                .entries
                .iter()
                .map(|(name, entry)| (name.clone(), entry.stats()))
                .collect(),
        }
    }

    /// Shuts down every model's core (draining queued requests). The
    /// registry stays readable afterwards; submissions fail with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let entries: Vec<Arc<ModelEntry<M>>> = self
            .inner
            .read()
            .expect("zoo poisoned")
            .entries
            .values()
            .cloned()
            .collect();
        for entry in entries {
            entry.core.shutdown();
        }
    }
}
