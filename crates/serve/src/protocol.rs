//! Wire protocol of the serving layer: a JSON body format and a compact
//! length-prefixed binary frame, both decoding into
//! [`InferenceRequest`] and encoding from
//! [`ServedResponse`].
//!
//! # JSON request
//!
//! ```json
//! {"shape": [3, 16, 16], "data": [0.0, 0.25, ...], "seed": 7,
//!  "deadline_us": 50000, "model": "cifar-fp32"}
//! ```
//!
//! `seed` is optional (default 0). `deadline_us` is optional: when present
//! and non-zero it is the request's deadline budget in microseconds,
//! measured from server admission — a result the server cannot deliver
//! within the budget is shed instead of computed. `model` is optional: when
//! present it names the registry model to route to (unknown names are a
//! typed 404; absent routes to the default model). `data` must hold exactly
//! `shape.iter().product()` floats. Decoding goes through the vendored
//! `serde_json::from_slice`, so malformed bodies report the failing byte
//! offset.
//!
//! # Binary request frame (little-endian)
//!
//! ```text
//! magic "SNQ3" | payload_len: u32 | seed: u64 | deadline_us: u64 |
//!   model_len: u8 | model: utf8 × model_len |
//!   ndim: u8 | dims: u32 × ndim | data: f32 × Π dims
//! ```
//!
//! `deadline_us = 0` means "no deadline"; `model_len = 0` means "default
//! model". The magic was bumped from `SNQ1` when the deadline field was
//! added and from `SNQ2` when the model id was added; old frames are
//! rejected with a typed protocol error naming the expected magic. A model
//! id must be valid UTF-8 or the frame is rejected.
//!
//! `payload_len` counts every byte after itself and must equal what is
//! actually present — the decoder validates all declared sizes against the
//! real buffer length *before* allocating, so a hostile length prefix or
//! dimension vector can never cause an over-allocation, and truncation at
//! any byte yields a typed [`ServeError::Protocol`], never a panic. Shapes
//! are capped at [`MAX_DIMS`] dimensions and [`MAX_ELEMENTS`] elements.
//!
//! # Binary response frame
//!
//! ```text
//! magic "SNP1" | payload_len: u32 | status: u8 |
//!   prediction: u32 | timesteps: u32 | n_logits: u32 | logits: f32 × n |
//!   has_hw: u8 | [latency_ms: f64 | total_energy_mj: f64 | throughput_fps: f64] |
//!   queued_us: u64 | batch_us: u64 | batch_size: u32
//! ```
//!
//! `status` 0 is a healthy success; [`STATUS_OK_DEGRADED`] (2) marks a
//! success served by a model whose drift tracker currently flags it
//! Degraded under the *annotate* policy (the shed policy refuses the work
//! with a typed error instead).

use crate::core::{InferenceRequest, ServedResponse};
use crate::error::ServeError;
use serde::{DeError, Deserialize, Serialize, Value};
use snn_core::tensor::Tensor;
use std::time::Duration;

/// Magic prefix of a binary request frame (`SNQ3` since the model id was
/// added; `SNQ1`/`SNQ2` frames are rejected).
pub const REQUEST_MAGIC: [u8; 4] = *b"SNQ3";
/// Magic prefix of a binary response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"SNP1";
/// Binary response status: success, annotated as served by a
/// drift-Degraded model (the registry's *annotate* policy; JSON carries the
/// same bit as the `degraded` field).
pub const STATUS_OK_DEGRADED: u8 = 2;
/// Largest number of dimensions a request shape may declare.
pub const MAX_DIMS: usize = 8;
/// Largest number of elements (`Π dims`) a request may carry: 2²⁴ floats
/// (64 MiB), far above any paper-scale input but a hard ceiling against
/// hostile frames.
pub const MAX_ELEMENTS: u64 = 1 << 24;

/// JSON request body. Deserialized manually (not derived) so `seed` can be
/// optional and shape validation happens in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonRequest {
    /// Tensor shape, outermost dimension first.
    pub shape: Vec<usize>,
    /// Row-major tensor data; must hold exactly `shape.iter().product()`
    /// values.
    pub data: Vec<f32>,
    /// Encoder seed (optional on the wire, default 0).
    pub seed: u64,
    /// Deadline budget in microseconds (optional on the wire; absent or 0
    /// means "no deadline").
    pub deadline_us: u64,
    /// Registry model to route to (optional on the wire; absent means the
    /// default model).
    pub model: Option<String>,
}

impl Deserialize for JsonRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.as_obj().ok_or_else(|| {
            DeError::new(format!("expected a request object, got {}", value.kind()))
        })?;
        let shape: Vec<usize> = serde::__field(obj, "shape", "request")?;
        let data: Vec<f32> = serde::__field(obj, "data", "request")?;
        let seed: u64 = match value.get("seed") {
            Some(v) => u64::from_value(v)
                .map_err(|e| DeError::new(format!("field `seed` of request: {e}")))?,
            None => 0,
        };
        let deadline_us: u64 = match value.get("deadline_us") {
            Some(v) => u64::from_value(v)
                .map_err(|e| DeError::new(format!("field `deadline_us` of request: {e}")))?,
            None => 0,
        };
        let model: Option<String> = match value.get("model") {
            Some(Value::Null) | None => None,
            Some(v) => Some(
                String::from_value(v)
                    .map_err(|e| DeError::new(format!("field `model` of request: {e}")))?,
            ),
        };
        Ok(JsonRequest {
            shape,
            data,
            seed,
            deadline_us,
            model,
        })
    }
}

impl Serialize for JsonRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("shape".to_string(), self.shape.to_value()),
            ("data".to_string(), self.data.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if self.deadline_us > 0 {
            fields.push(("deadline_us".to_string(), self.deadline_us.to_value()));
        }
        if let Some(model) = &self.model {
            fields.push(("model".to_string(), model.to_value()));
        }
        Value::Obj(fields)
    }
}

/// JSON response body: classification output plus the accelerator estimate
/// (when the model computes one) and the serving-side timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonResponse {
    /// Index of the predicted class.
    pub prediction: usize,
    /// Per-class scores.
    pub logits: Vec<f32>,
    /// Timesteps simulated.
    pub timesteps: usize,
    /// Accelerator single-image latency estimate in milliseconds.
    pub latency_ms: Option<f64>,
    /// Accelerator total energy estimate in millijoules.
    pub total_energy_mj: Option<f64>,
    /// Accelerator throughput bound in frames/second.
    pub throughput_fps: Option<f64>,
    /// Microseconds the request waited in the queue.
    pub queued_us: u64,
    /// Microseconds the model spent on the coalesced batch.
    pub batch_us: u64,
    /// Size of the coalesced batch this request ran in.
    pub batch_size: usize,
    /// Whether the serving model's drift tracker flagged it Degraded at
    /// response time (the registry's *annotate* policy; always `false` from
    /// a healthy model or a single-model server). Always present on the
    /// wire.
    pub degraded: bool,
}

/// Validates a shape + data pair and builds the request tensor.
/// `deadline_us = 0` means "no deadline" (the wire sentinel); `model =
/// None` means "default model".
fn request_from_parts(
    shape: &[usize],
    data: Vec<f32>,
    seed: u64,
    deadline_us: u64,
    model: Option<String>,
) -> Result<InferenceRequest, ServeError> {
    if shape.is_empty() || shape.len() > MAX_DIMS {
        return Err(ServeError::protocol(format!(
            "shape must have 1..={MAX_DIMS} dimensions, got {}",
            shape.len()
        )));
    }
    let mut elements: u64 = 1;
    for &dim in shape {
        if dim == 0 {
            return Err(ServeError::protocol("shape dimensions must be non-zero"));
        }
        elements = elements
            .checked_mul(dim as u64)
            .filter(|&n| n <= MAX_ELEMENTS)
            .ok_or_else(|| {
                ServeError::protocol(format!(
                    "shape {shape:?} exceeds the {MAX_ELEMENTS}-element request ceiling"
                ))
            })?;
    }
    if data.len() as u64 != elements {
        return Err(ServeError::protocol(format!(
            "shape {shape:?} implies {elements} elements but {} were provided",
            data.len()
        )));
    }
    let image = Tensor::from_vec(data, shape)
        .map_err(|e| ServeError::protocol(format!("invalid tensor: {e}")))?;
    Ok(InferenceRequest {
        image,
        seed,
        deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
        model,
    })
}

/// Decodes a JSON request body.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON (with the failing byte offset
/// in the message), a wrong shape/data pairing, or an oversized shape.
pub fn decode_json_request(body: &[u8]) -> Result<InferenceRequest, ServeError> {
    let wire: JsonRequest =
        serde_json::from_slice(body).map_err(|e| ServeError::protocol(e.to_string()))?;
    request_from_parts(
        &wire.shape,
        wire.data,
        wire.seed,
        wire.deadline_us,
        wire.model,
    )
}

/// The wire encoding of a request's deadline: its budget in microseconds,
/// saturated into `u64`, with 0 as the "no deadline" sentinel.
fn deadline_us_of(request: &InferenceRequest) -> u64 {
    request
        .deadline
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1))
        .unwrap_or(0)
}

/// Encodes a request as a JSON body (the client side of the JSON protocol).
///
/// # Errors
///
/// [`ServeError::Protocol`] if the tensor contains non-finite values, which
/// JSON cannot carry.
pub fn encode_json_request(request: &InferenceRequest) -> Result<Vec<u8>, ServeError> {
    let wire = JsonRequest {
        shape: request.image.shape().to_vec(),
        data: request.image.as_slice().to_vec(),
        seed: request.seed,
        deadline_us: deadline_us_of(request),
        model: request.model.clone(),
    };
    serde_json::to_string(&wire)
        .map(String::into_bytes)
        .map_err(|e| ServeError::protocol(e.to_string()))
}

/// Encodes a served response as a JSON body (healthy: `degraded = false`).
///
/// # Errors
///
/// [`ServeError::Protocol`] if a logit or estimate is non-finite.
pub fn encode_json_response(response: &ServedResponse) -> Result<Vec<u8>, ServeError> {
    encode_json_response_with_health(response, false)
}

/// Encodes a served response as a JSON body, carrying the serving model's
/// drift annotation in the `degraded` field (the registry's *annotate*
/// policy).
///
/// # Errors
///
/// [`ServeError::Protocol`] if a logit or estimate is non-finite.
pub fn encode_json_response_with_health(
    response: &ServedResponse,
    degraded: bool,
) -> Result<Vec<u8>, ServeError> {
    let hw = response.result.hardware.as_ref();
    let wire = JsonResponse {
        prediction: response.result.prediction,
        logits: response.result.logits.clone(),
        timesteps: response.result.timesteps,
        latency_ms: hw.map(|h| h.latency_ms),
        total_energy_mj: hw.map(|h| h.total_energy_mj),
        throughput_fps: hw.map(|h| h.throughput_fps),
        queued_us: response.queued_us,
        batch_us: response.batch_us,
        batch_size: response.batch_size,
        degraded,
    };
    serde_json::to_string(&wire)
        .map(String::into_bytes)
        .map_err(|e| ServeError::protocol(e.to_string()))
}

// ---------------------------------------------------------------------------
// Binary frames
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte buffer. Every read
/// validates against the *actual* remaining bytes, so declared lengths can
/// never drive allocation or out-of-bounds access.
struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        FrameReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(ServeError::protocol(format!(
                "truncated frame: {what} needs {n} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize, what: &str) -> Result<Vec<f32>, ServeError> {
        // `take` bounds-checks n*4 against the real buffer before the
        // allocation below, so `n` can never over-allocate.
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| ServeError::protocol(format!("{what} length overflows")))?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(&self, what: &str) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(ServeError::protocol(format!(
                "{} trailing bytes after {what}",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Checks magic + length prefix and returns the payload slice.
fn frame_payload<'a>(bytes: &'a [u8], magic: &[u8; 4], what: &str) -> Result<&'a [u8], ServeError> {
    let mut reader = FrameReader::new(bytes);
    let found = reader.take(4, "magic")?;
    if found != magic {
        return Err(ServeError::protocol(format!(
            "bad {what} magic {found:?} (expected {magic:?})"
        )));
    }
    let declared = reader.u32("payload length")? as usize;
    let payload = &bytes[8..];
    if declared != payload.len() {
        return Err(ServeError::protocol(format!(
            "{what} length prefix declares {declared} payload bytes but {} are present",
            payload.len()
        )));
    }
    Ok(payload)
}

/// Encodes a request as a binary frame.
///
/// A model id longer than 255 bytes cannot be framed (the wire length
/// prefix is a `u8`); it is truncated at the last UTF-8 boundary within
/// 255 bytes. Registry names are validated far below that, so real
/// requests never hit the truncation.
pub fn encode_frame_request(request: &InferenceRequest) -> Vec<u8> {
    let shape = request.image.shape();
    let data = request.image.as_slice();
    let model = request.model.as_deref().unwrap_or("");
    let model_bytes = {
        let mut end = model.len().min(u8::MAX as usize);
        while !model.is_char_boundary(end) {
            end -= 1;
        }
        &model.as_bytes()[..end]
    };
    let payload_len = 8 + 8 + 1 + model_bytes.len() + 1 + 4 * shape.len() + 4 * data.len();
    let mut out = Vec::with_capacity(8 + payload_len);
    out.extend_from_slice(&REQUEST_MAGIC);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&request.seed.to_le_bytes());
    out.extend_from_slice(&deadline_us_of(request).to_le_bytes());
    out.push(model_bytes.len() as u8);
    out.extend_from_slice(model_bytes);
    out.push(shape.len() as u8);
    for &dim in shape {
        out.extend_from_slice(&(dim as u32).to_le_bytes());
    }
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a binary request frame.
///
/// # Errors
///
/// [`ServeError::Protocol`] on a bad magic, a length prefix that disagrees
/// with the actual byte count, truncation anywhere, a non-UTF-8 model id,
/// an oversized shape (> [`MAX_DIMS`] dims or > [`MAX_ELEMENTS`] elements)
/// or a data section that does not match the declared shape. Never panics,
/// never allocates from unvalidated lengths.
pub fn decode_frame_request(bytes: &[u8]) -> Result<InferenceRequest, ServeError> {
    let payload = frame_payload(bytes, &REQUEST_MAGIC, "request")?;
    let mut reader = FrameReader::new(payload);
    let seed = reader.u64("seed")?;
    let deadline_us = reader.u64("deadline_us")?;
    let model_len = reader.u8("model_len")? as usize;
    let model = if model_len == 0 {
        None
    } else {
        let raw = reader.take(model_len, "model id")?;
        Some(
            std::str::from_utf8(raw)
                .map_err(|e| ServeError::protocol(format!("model id is not valid UTF-8: {e}")))?
                .to_string(),
        )
    };
    let ndim = reader.u8("ndim")? as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(ServeError::protocol(format!(
            "shape must have 1..={MAX_DIMS} dimensions, got {ndim}"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut elements: u64 = 1;
    for i in 0..ndim {
        let dim = reader.u32(&format!("dim {i}"))? as usize;
        if dim == 0 {
            return Err(ServeError::protocol("shape dimensions must be non-zero"));
        }
        elements = elements
            .checked_mul(dim as u64)
            .filter(|&n| n <= MAX_ELEMENTS)
            .ok_or_else(|| {
                ServeError::protocol(format!(
                    "declared shape exceeds the {MAX_ELEMENTS}-element request ceiling"
                ))
            })?;
        shape.push(dim);
    }
    let data = reader.f32s(elements as usize, "tensor data")?;
    reader.finish("tensor data")?;
    request_from_parts(&shape, data, seed, deadline_us, model)
}

/// Decoded form of a binary response frame, for clients and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResponse {
    /// Status byte (0 = ok, [`STATUS_OK_DEGRADED`] = ok but served by a
    /// drift-Degraded model; transports carry errors out-of-band).
    pub status: u8,
    /// Index of the predicted class.
    pub prediction: u32,
    /// Timesteps simulated.
    pub timesteps: u32,
    /// Per-class scores.
    pub logits: Vec<f32>,
    /// Accelerator estimate, when present: `(latency_ms, total_energy_mj,
    /// throughput_fps)`.
    pub hardware: Option<(f64, f64, f64)>,
    /// Microseconds the request waited in the queue.
    pub queued_us: u64,
    /// Microseconds the model spent on the coalesced batch.
    pub batch_us: u64,
    /// Size of the coalesced batch.
    pub batch_size: u32,
}

/// Encodes a served response as a binary frame (status 0).
pub fn encode_frame_response(response: &ServedResponse) -> Vec<u8> {
    encode_frame_response_with_health(response, false)
}

/// Encodes a served response as a binary frame, with the status byte
/// carrying the serving model's drift annotation: 0 healthy,
/// [`STATUS_OK_DEGRADED`] when the model is flagged Degraded under the
/// *annotate* policy.
pub fn encode_frame_response_with_health(response: &ServedResponse, degraded: bool) -> Vec<u8> {
    let logits = &response.result.logits;
    let hw = response.result.hardware.as_ref();
    let payload_len =
        1 + 4 + 4 + 4 + 4 * logits.len() + 1 + if hw.is_some() { 24 } else { 0 } + 8 + 8 + 4;
    let mut out = Vec::with_capacity(8 + payload_len);
    out.extend_from_slice(&RESPONSE_MAGIC);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(if degraded { STATUS_OK_DEGRADED } else { 0u8 });
    out.extend_from_slice(&(response.result.prediction as u32).to_le_bytes());
    out.extend_from_slice(&(response.result.timesteps as u32).to_le_bytes());
    out.extend_from_slice(&(logits.len() as u32).to_le_bytes());
    for &v in logits {
        out.extend_from_slice(&v.to_le_bytes());
    }
    match hw {
        Some(h) => {
            out.push(1u8);
            out.extend_from_slice(&h.latency_ms.to_le_bytes());
            out.extend_from_slice(&h.total_energy_mj.to_le_bytes());
            out.extend_from_slice(&h.throughput_fps.to_le_bytes());
        }
        None => out.push(0u8),
    }
    out.extend_from_slice(&response.queued_us.to_le_bytes());
    out.extend_from_slice(&response.batch_us.to_le_bytes());
    out.extend_from_slice(&(response.batch_size as u32).to_le_bytes());
    out
}

/// Decodes a binary response frame.
///
/// # Errors
///
/// [`ServeError::Protocol`] under the same rules as
/// [`decode_frame_request`].
pub fn decode_frame_response(bytes: &[u8]) -> Result<FrameResponse, ServeError> {
    let payload = frame_payload(bytes, &RESPONSE_MAGIC, "response")?;
    let mut reader = FrameReader::new(payload);
    let status = reader.u8("status")?;
    let prediction = reader.u32("prediction")?;
    let timesteps = reader.u32("timesteps")?;
    let n_logits = reader.u32("logit count")? as usize;
    if n_logits as u64 > MAX_ELEMENTS {
        return Err(ServeError::protocol(format!(
            "declared logit count {n_logits} exceeds the {MAX_ELEMENTS} ceiling"
        )));
    }
    let logits = reader.f32s(n_logits, "logits")?;
    let hardware = match reader.u8("hardware flag")? {
        0 => None,
        1 => Some((
            reader.f64("latency")?,
            reader.f64("energy")?,
            reader.f64("throughput")?,
        )),
        other => {
            return Err(ServeError::protocol(format!(
                "invalid hardware flag {other}"
            )))
        }
    };
    let queued_us = reader.u64("queued_us")?;
    let batch_us = reader.u64("batch_us")?;
    let batch_size = reader.u32("batch_size")?;
    reader.finish("response")?;
    Ok(FrameResponse {
        status,
        prediction,
        timesteps,
        logits,
        hardware,
        queued_us,
        batch_us,
        batch_size,
    })
}
