//! Client-side retry with jittered, budget-capped exponential backoff.
//!
//! A [`RetryPolicy`] retries **only** errors the server itself marks as
//! retryable ([`ServeError::is_retryable`] — sheds of idempotent work), and
//! honors the server's [`Retry-After` hint](ServeError::retry_after) as a
//! lower bound on the wait: retrying earlier than the server said it could
//! help only adds load to an already-struggling server. Delays grow
//! exponentially from [`RetryPolicy::base_backoff`] up to
//! [`RetryPolicy::backoff_cap`] and are jittered into `[delay/2, delay]`
//! (decorrelating clients that failed together), and the *cumulative* wait
//! is capped by [`RetryPolicy::budget`] so a retrying client always gives
//! up in bounded time. The jitter is seeded, so a given client's retry
//! schedule is reproducible.
//!
//! ```
//! use snn_serve::{RetryPolicy, ServeError};
//!
//! let policy = RetryPolicy::new(7);
//! let mut calls = 0;
//! let outcome: Result<u32, ServeError> = policy.run(|_attempt| {
//!     calls += 1;
//!     if calls < 3 {
//!         Err(ServeError::Overloaded { depth: 8, limit: 8 })
//!     } else {
//!         Ok(42)
//!     }
//! });
//! assert_eq!(outcome.unwrap(), 42);
//! assert_eq!(calls, 3);
//! ```

use crate::error::ServeError;
use crate::fault::splitmix64;
use std::time::Duration;

/// A jittered exponential-backoff retry policy for serving clients.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (default 4; 1 disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (default 5 ms); doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff delay (default 500 ms).
    pub backoff_cap: Duration,
    /// Ceiling on the *cumulative* backoff across all retries of one
    /// request (default 2 s); the policy gives up rather than exceed it.
    pub budget: Duration,
    /// Jitter seed; two clients with different seeds retry at decorrelated
    /// times.
    pub seed: u64,
}

impl RetryPolicy {
    /// The default policy (4 attempts, 5 ms base, 500 ms cap, 2 s budget)
    /// with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            budget: Duration::from_secs(2),
            seed,
        }
    }

    /// Sets the total attempt count.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets base backoff, per-delay cap and cumulative budget.
    pub fn with_backoff(mut self, base: Duration, cap: Duration, budget: Duration) -> Self {
        self.base_backoff = base;
        self.backoff_cap = cap;
        self.budget = budget;
        self
    }

    /// The delay before retry number `attempt` (1-based: 1 = first retry),
    /// given the server's optional `Retry-After` hint. Deterministic in
    /// `(policy, attempt)`: exponential growth, capped, jittered into
    /// `[delay/2, delay]`, then floored by the hint.
    pub fn backoff_for(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.backoff_cap);
        // Jitter into [exp/2, exp] — deterministic per (seed, attempt).
        let h = splitmix64(self.seed ^ splitmix64(u64::from(attempt)));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = exp.mul_f64(0.5 + 0.5 * unit);
        match retry_after {
            Some(hint) => jittered.max(hint),
            None => jittered,
        }
    }

    /// Runs `op` until it succeeds, fails with a non-retryable error, or
    /// the policy is exhausted (attempts or budget); returns the last
    /// outcome. `op` receives the 1-based attempt number.
    ///
    /// # Errors
    ///
    /// The first non-retryable [`ServeError`], or the last retryable one
    /// once attempts/budget run out.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut spent = Duration::ZERO;
        for attempt in 1..=self.max_attempts.max(1) {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) => {
                    if !e.is_retryable() || attempt == self.max_attempts {
                        return Err(e);
                    }
                    let delay = self.backoff_for(attempt, e.retry_after());
                    if spent + delay > self.budget {
                        // Sleeping past the budget cannot be honored; give
                        // up with the typed error instead.
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    spent += delay;
                }
            }
        }
        unreachable!("loop returns on the final attempt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_retryable_errors_fail_fast() {
        let policy = RetryPolicy::new(1);
        let mut calls = 0;
        let outcome: Result<(), ServeError> = policy.run(|_| {
            calls += 1;
            Err(ServeError::protocol("bad frame"))
        });
        assert!(matches!(outcome, Err(ServeError::Protocol(_))));
        assert_eq!(calls, 1, "deterministic rejections must not be retried");
    }

    #[test]
    fn retryable_errors_are_retried_up_to_max_attempts() {
        let policy = RetryPolicy::new(2).with_backoff(
            Duration::from_micros(10),
            Duration::from_micros(50),
            Duration::from_secs(1),
        );
        let mut calls = 0;
        let outcome: Result<(), ServeError> = policy.run(|_| {
            calls += 1;
            Err(ServeError::Overloaded { depth: 1, limit: 1 })
        });
        assert!(outcome.is_err());
        assert_eq!(calls, 4, "default policy makes 4 attempts");
    }

    #[test]
    fn backoff_grows_is_jittered_and_honors_retry_after() {
        let policy = RetryPolicy::new(3);
        let d1 = policy.backoff_for(1, None);
        let d4 = policy.backoff_for(4, None);
        assert!(d1 >= policy.base_backoff / 2 && d1 <= policy.base_backoff);
        assert!(d4 > d1, "backoff grows with the attempt number");
        assert!(d4 <= policy.backoff_cap);
        // Determinism: same (seed, attempt) → same delay; different seeds
        // decorrelate.
        assert_eq!(d1, RetryPolicy::new(3).backoff_for(1, None));
        assert_ne!(d1, RetryPolicy::new(4).backoff_for(1, None));
        // The server's hint is a floor.
        let hinted = policy.backoff_for(1, Some(Duration::from_secs(3)));
        assert_eq!(hinted, Duration::from_secs(3));
    }

    #[test]
    fn budget_caps_cumulative_backoff() {
        // Budget below even one base delay: a single failure is final.
        let policy = RetryPolicy::new(5).with_backoff(
            Duration::from_millis(50),
            Duration::from_millis(50),
            Duration::from_millis(1),
        );
        let mut calls = 0;
        let outcome: Result<(), ServeError> = policy.run(|_| {
            calls += 1;
            Err(ServeError::Overloaded { depth: 1, limit: 1 })
        });
        assert!(outcome.is_err());
        assert_eq!(calls, 1, "budget exhaustion stops retries");
    }
}
