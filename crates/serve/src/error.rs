//! Error type of the serving layer.
//!
//! Serving failures are *typed* so transports can map them onto wire-level
//! status codes without string matching: [`ServeError::Overloaded`] becomes
//! HTTP 503 (load shedding is an expected, recoverable condition the client
//! should back off from), protocol errors become 400, model errors 422.

use snn_core::SnnError;
use std::fmt;

/// Error returned by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request was shed because the queue was at its high-water mark.
    /// The acceptor never blocks: callers get this immediately and are
    /// expected to retry with backoff.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured shedding threshold that was hit.
        limit: usize,
    },
    /// The core is shutting down (or has shut down) and no longer accepts
    /// or can answer requests.
    ShuttingDown,
    /// The model rejected the request (shape mismatch, invalid config, …).
    Model(SnnError),
    /// The request bytes could not be decoded (malformed JSON or binary
    /// frame). Decoding never panics and never over-allocates; it returns
    /// this instead.
    Protocol(String),
    /// A transport-level I/O failure (socket read/write).
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => write!(
                f,
                "server overloaded: queue depth {depth} at high-water mark {limit}"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnnError> for ServeError {
    fn from(e: SnnError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl ServeError {
    /// Convenience constructor for [`ServeError::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        ServeError::Protocol(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ServeError::Overloaded {
            depth: 65,
            limit: 64,
        };
        assert!(e.to_string().contains("65"));
        assert!(e.to_string().contains("64"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::protocol("bad magic")
            .to_string()
            .contains("bad magic"));
        let m: ServeError = SnnError::config("x", "y").into();
        assert!(m.to_string().contains("model error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
