//! Error type of the serving layer.
//!
//! Serving failures are *typed* so transports can map them onto wire-level
//! status codes without string matching: [`ServeError::Overloaded`] becomes
//! HTTP 503 (load shedding is an expected, recoverable condition the client
//! should back off from), deadline failures become 504, protocol errors
//! 400, model errors 422, model panics 500. [`ServeError::is_retryable`]
//! encodes which failures a client may safely retry (inference is
//! idempotent, so every *shed* — the work was never attempted — is
//! retryable), and [`ServeError::retry_after`] carries the server's backoff
//! hint where one can be computed.

use snn_core::SnnError;
use std::fmt;
use std::time::Duration;

/// Error returned by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request was shed because the queue was at its high-water mark.
    /// The acceptor never blocks: callers get this immediately and are
    /// expected to retry with backoff.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured shedding threshold that was hit.
        limit: usize,
    },
    /// The request expired in the queue: a worker dequeued it after its
    /// deadline had already passed and dropped it *before* spending any
    /// inference on it (a result delivered after its deadline is worthless,
    /// so the compute would be too).
    DeadlineExceeded {
        /// Microseconds the request spent queued before it was dropped.
        queued_us: u64,
    },
    /// Admission control pre-rejected the request at submit time: the
    /// queue-wait estimate from the server's streaming latency histograms
    /// already exceeded the request's deadline, so queueing it would only
    /// burn queue space on a result nobody can use. Retry after the hint
    /// from [`ServeError::retry_after`].
    DeadlineUnmeetable {
        /// Estimated queue wait at submit time, in microseconds.
        estimated_us: u64,
        /// The request's deadline budget, in microseconds.
        deadline_us: u64,
    },
    /// The model panicked while executing the batch containing this
    /// request. The panic was contained by the worker (it never escapes the
    /// core) and the worker was restarted with a fresh runner; the request
    /// itself was consumed by the panicking call and is reported here
    /// rather than silently retried.
    ModelPanicked {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The core is shutting down (or has shut down) and no longer accepts
    /// or can answer requests.
    ShuttingDown,
    /// The model rejected the request (shape mismatch, invalid config, …).
    Model(SnnError),
    /// The request bytes could not be decoded (malformed JSON or binary
    /// frame). Decoding never panics and never over-allocates; it returns
    /// this instead.
    Protocol(String),
    /// The peer stalled past a transport read/write timeout (slowloris
    /// protection): the connection is closed and its thread freed instead
    /// of being pinned forever. Maps to HTTP 408.
    Timeout(String),
    /// The request head or body exceeded a transport size cap. Maps to
    /// HTTP 413.
    TooLarge(String),
    /// A transport-level I/O failure (socket read/write).
    Io(String),
    /// The request named a model the registry does not serve. Maps to
    /// HTTP 404; retrying the same name would fail identically.
    UnknownModel {
        /// The model id the request carried.
        model: String,
    },
    /// A hot-reload candidate failed golden-probe validation (non-finite
    /// logits, wrong output shape, or a golden-output mismatch) and was
    /// **not** swapped in — the incumbent version keeps serving. Maps to
    /// HTTP 422 on the admin surface.
    ValidationFailed {
        /// Version id of the rejected candidate.
        version: String,
        /// Human-readable reason the probe failed.
        reason: String,
    },
    /// The model's drift tracker flagged its spike-rate distribution as
    /// diverged from the calibration baseline and the registry's policy is
    /// to shed rather than annotate. The work was never attempted, so the
    /// request is retryable (ideally against a healthy replica or after a
    /// rollback). Maps to HTTP 503 + `Retry-After`.
    Degraded {
        /// The KL divergence (nats) that tripped the threshold.
        kl: f64,
        /// The layer whose spike-rate distribution diverged the most.
        layer: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => write!(
                f,
                "server overloaded: queue depth {depth} at high-water mark {limit}"
            ),
            ServeError::DeadlineExceeded { queued_us } => write!(
                f,
                "deadline exceeded: request expired after {queued_us} us in the queue"
            ),
            ServeError::DeadlineUnmeetable {
                estimated_us,
                deadline_us,
            } => write!(
                f,
                "deadline unmeetable: estimated queue wait {estimated_us} us exceeds the \
                 {deadline_us} us deadline"
            ),
            ServeError::ModelPanicked { message } => {
                write!(f, "model panicked: {message}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Timeout(msg) => write!(f, "timeout: {msg}"),
            ServeError::TooLarge(msg) => write!(f, "request too large: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::UnknownModel { model } => {
                write!(f, "unknown model: no model named {model:?} is registered")
            }
            ServeError::ValidationFailed { version, reason } => write!(
                f,
                "validation failed: candidate version {version:?} rejected before swap: {reason}"
            ),
            ServeError::Degraded { kl, layer } => write!(
                f,
                "model degraded: spike-rate distribution of layer {layer:?} drifted \
                 {kl:.3} nats from the calibration baseline"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnnError> for ServeError {
    fn from(e: SnnError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl ServeError {
    /// Convenience constructor for [`ServeError::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        ServeError::Protocol(msg.into())
    }

    /// Whether a client may safely retry the request after backing off.
    ///
    /// Inference is idempotent, so every error that *shed* the request —
    /// the model never produced (or could not deliver) a result the caller
    /// got — is retryable: load shedding, deadline shedding, a contained
    /// model panic, a transport timeout or I/O failure. Deterministic
    /// rejections ([`ServeError::Model`], [`ServeError::Protocol`],
    /// [`ServeError::TooLarge`]) would fail identically on retry, and
    /// [`ServeError::ShuttingDown`] means this server will not come back
    /// for the retry. [`ServeError::Degraded`] is a shed — the drift policy
    /// refused the work before attempting it — so it is retryable;
    /// [`ServeError::UnknownModel`] and [`ServeError::ValidationFailed`]
    /// are deterministic rejections.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::DeadlineUnmeetable { .. }
                | ServeError::ModelPanicked { .. }
                | ServeError::Timeout(_)
                | ServeError::Io(_)
                | ServeError::Degraded { .. }
        )
    }

    /// The server's backoff hint: how long the client should wait before
    /// retrying, where the error carries enough information to compute one.
    ///
    /// [`ServeError::DeadlineUnmeetable`] knows exactly how far the current
    /// queue wait overshoots the deadline, so the hint is that overshoot
    /// (the queue must drain at least that much before the deadline becomes
    /// meetable). [`ServeError::Overloaded`] hints a fixed short pause.
    /// Transports surface this as the `Retry-After` header; the
    /// [`RetryPolicy`](crate::RetryPolicy) honors it as a lower bound.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServeError::Overloaded { .. } => Some(Duration::from_millis(100)),
            // Drift clears on the tracker-window timescale (a rollback or
            // traffic change), not per-request: hint a longer pause.
            ServeError::Degraded { .. } => Some(Duration::from_secs(1)),
            ServeError::DeadlineUnmeetable {
                estimated_us,
                deadline_us,
            } => Some(Duration::from_micros(
                estimated_us.saturating_sub(*deadline_us).max(1_000),
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ServeError::Overloaded {
            depth: 65,
            limit: 64,
        };
        assert!(e.to_string().contains("65"));
        assert!(e.to_string().contains("64"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::protocol("bad magic")
            .to_string()
            .contains("bad magic"));
        let m: ServeError = SnnError::config("x", "y").into();
        assert!(m.to_string().contains("model error"));
        let d = ServeError::DeadlineExceeded { queued_us: 1234 };
        assert!(d.to_string().contains("1234"));
        let u = ServeError::DeadlineUnmeetable {
            estimated_us: 9000,
            deadline_us: 4000,
        };
        assert!(u.to_string().contains("9000") && u.to_string().contains("4000"));
        let p = ServeError::ModelPanicked {
            message: "boom".to_string(),
        };
        assert!(p.to_string().contains("boom"));
        assert!(ServeError::Timeout("head".into())
            .to_string()
            .contains("timeout"));
        assert!(ServeError::TooLarge("body".into())
            .to_string()
            .contains("large"));
        let um = ServeError::UnknownModel {
            model: "resnet".into(),
        };
        assert!(um.to_string().contains("resnet"));
        let vf = ServeError::ValidationFailed {
            version: "v2".into(),
            reason: "non-finite logit".into(),
        };
        assert!(vf.to_string().contains("v2") && vf.to_string().contains("non-finite"));
        let dg = ServeError::Degraded {
            kl: 1.25,
            layer: "conv3".into(),
        };
        assert!(dg.to_string().contains("conv3") && dg.to_string().contains("1.250"));
    }

    #[test]
    fn retryability_follows_the_shed_rule() {
        assert!(ServeError::Overloaded { depth: 1, limit: 1 }.is_retryable());
        assert!(ServeError::DeadlineExceeded { queued_us: 1 }.is_retryable());
        assert!(ServeError::DeadlineUnmeetable {
            estimated_us: 2,
            deadline_us: 1
        }
        .is_retryable());
        assert!(ServeError::ModelPanicked {
            message: String::new()
        }
        .is_retryable());
        assert!(ServeError::Timeout(String::new()).is_retryable());
        assert!(ServeError::Io(String::new()).is_retryable());
        assert!(ServeError::Degraded {
            kl: 1.0,
            layer: String::new()
        }
        .is_retryable());
        // Deterministic rejections are not retryable.
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::Model(SnnError::config("x", "y")).is_retryable());
        assert!(!ServeError::Protocol(String::new()).is_retryable());
        assert!(!ServeError::TooLarge(String::new()).is_retryable());
        assert!(!ServeError::UnknownModel {
            model: String::new()
        }
        .is_retryable());
        assert!(!ServeError::ValidationFailed {
            version: String::new(),
            reason: String::new()
        }
        .is_retryable());
    }

    #[test]
    fn retry_after_reflects_the_deadline_overshoot() {
        let hint = ServeError::DeadlineUnmeetable {
            estimated_us: 250_000,
            deadline_us: 50_000,
        }
        .retry_after()
        .expect("unmeetable deadlines carry a hint");
        assert_eq!(hint, Duration::from_micros(200_000));
        // Tiny overshoots are floored so clients cannot busy-retry.
        let floor = ServeError::DeadlineUnmeetable {
            estimated_us: 11,
            deadline_us: 10,
        }
        .retry_after()
        .unwrap();
        assert!(floor >= Duration::from_millis(1));
        assert!(ServeError::Overloaded { depth: 5, limit: 4 }
            .retry_after()
            .is_some());
        assert!(ServeError::Degraded {
            kl: 1.0,
            layer: "l".into()
        }
        .retry_after()
        .is_some());
        assert!(ServeError::ShuttingDown.retry_after().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
