//! # snn-serve — dynamic-batching inference serving
//!
//! A transport-agnostic serving layer for the SNN accelerator engine:
//! requests enter a bounded MPSC queue, dedicated worker threads coalesce
//! them into dynamic batches (up to [`ServeConfig::max_batch`] requests, or
//! whatever has arrived when the [`ServeConfig::max_delay`] latency budget
//! expires — whichever comes first), and a one-shot response slot carries
//! each result back to its submitter. Producers never block: once the queue
//! depth reaches the high-water mark, submissions are shed immediately with
//! the typed [`ServeError::Overloaded`] so callers can back off.
//!
//! The crate is generic over the model via the [`ServeModel`] /
//! [`ModelRunner`] trait pair — it depends only on `snn-core` and
//! `snn-accel`; the `snn` facade crate implements the traits for its
//! `Engine` and re-exports this crate as `snn::serve`.
//!
//! ## Determinism
//!
//! Every request carries its own encoder seed, and a conforming runner
//! computes request `i` from `(image_i, seed_i)` alone. Coalescing is
//! therefore purely a scheduling decision: a request returns bitwise
//! the same logits, spike traces and hardware estimate whether it was
//! served alone or inside any batch, at any queue depth and worker count.
//! The repo's serving determinism suite asserts exactly this against
//! sequential `Session::run_seeded` calls.
//!
//! ## Fault tolerance
//!
//! Requests may carry a **deadline** (wire field `deadline_us`, default
//! from [`ServeConfig::default_timeout`]): expired requests are shed at
//! dequeue before any inference is spent on them, and admission control
//! pre-rejects deadlines the current queue-wait estimate already exceeds.
//! Workers run the model under `catch_unwind` and are **supervised**: a
//! panicking model answers exactly its batch with a typed error and the
//! worker is respawned with capped exponential backoff
//! ([`ServeStats::worker_restarts`]). A seeded [`FaultPlan`] injects
//! deterministic faults for chaos tests, and [`RetryPolicy`] gives clients
//! jittered, budget-capped backoff for the errors the server marks
//! retryable.
//!
//! ## Layers
//!
//! - [`ServeCore`] — queue + batcher + supervised workers + statistics
//!   (this is the API most embedders want).
//! - [`ModelZoo`] — a multi-model registry on top of cores: named-model
//!   routing, golden-probe-validated atomic hot-reload with rollback, and
//!   per-model spike-rate drift detection feeding a
//!   `Healthy → Degraded → Wedged` health state machine.
//! - [`protocol`] — the JSON and length-prefixed binary wire codecs
//!   (requests carry an optional model id and deadline).
//! - [`HttpServer`] — a thin blocking HTTP/1.1 shim on `std::net` exposing
//!   `POST /v1/infer`, `GET /v1/stats` and `GET /healthz`, hardened via
//!   [`HttpOptions`] (read/write timeouts, head/body caps); fronts a
//!   single core or a whole [`ModelZoo`].
//! - [`fault`] / [`retry`] — deterministic fault injection and client
//!   retry/backoff.
//!
//! ## Example
//!
//! Serving a stub model (the facade's `Engine` plugs in the same way):
//!
//! ```
//! use snn_serve::{
//!     InferenceRequest, InferenceResult, ModelRunner, ServeConfig, ServeCore, ServeModel,
//! };
//! use snn_core::tensor::Tensor;
//! use snn_core::SnnError;
//!
//! /// Scores each class by a weighted sum of the input — deterministic in
//! /// (image, seed), as the serving contract requires.
//! struct ToyModel;
//! struct ToyRunner;
//!
//! impl ModelRunner for ToyRunner {
//!     fn run_batch(
//!         &mut self,
//!         requests: Vec<InferenceRequest>,
//!     ) -> Vec<Result<InferenceResult, SnnError>> {
//!         requests
//!             .into_iter()
//!             .map(|r| {
//!                 let sum: f32 = r.image.as_slice().iter().sum();
//!                 Ok(InferenceResult::from_logits(vec![sum, -sum]))
//!             })
//!             .collect()
//!     }
//! }
//!
//! impl ServeModel for ToyModel {
//!     type Runner = ToyRunner;
//!     fn runner(&self) -> ToyRunner {
//!         ToyRunner
//!     }
//! }
//!
//! let core = ServeCore::start(ToyModel, ServeConfig::default()).unwrap();
//! let image = Tensor::from_vec(vec![0.5, 1.5], &[2]).unwrap();
//! let response = core.infer(InferenceRequest::seeded(image, 7)).unwrap();
//! assert_eq!(response.result.prediction, 0);
//! assert_eq!(response.result.logits, vec![2.0, -2.0]);
//! assert!(response.batch_size >= 1);
//! core.shutdown();
//! ```

pub mod core;
pub mod error;
pub mod fault;
pub mod http;
pub mod protocol;
mod queue;
pub mod registry;
pub mod retry;

pub use crate::core::{
    InferenceRequest, InferenceResult, ModelRunner, ResponseHandle, ResultObserver, ServeConfig,
    ServeCore, ServeModel, ServeStats, ServedResponse,
};
pub use crate::error::ServeError;
pub use crate::fault::{Fault, FaultPlan, FaultyModel};
pub use crate::http::{HttpOptions, HttpServer};
pub use crate::registry::{
    DriftPolicy, ModelHealth, ModelStats, ModelZoo, ProbeSpec, SwappableModel, ZooConfig, ZooStats,
};
pub use crate::retry::RetryPolicy;
