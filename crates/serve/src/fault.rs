//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] is a seeded, pure description of which requests fail and
//! how: the decision for a request is a hash of `(plan seed, request seed)`
//! alone, so it is **independent of batching, queue depth, worker count and
//! thread scheduling** — the same request fails the same way whether it is
//! served alone or coalesced into any batch, which is what makes chaos runs
//! reproducible and their surviving results comparable bitwise against a
//! sequential reference.
//!
//! Faults are injected at two seams:
//!
//! - [`FaultyModel`] wraps any [`ServeModel`] and perturbs its runner:
//!   injected model *errors* (typed, per request), model *panics* (the whole
//!   batch observes [`ModelPanicked`](crate::ServeError::ModelPanicked) and
//!   the worker is restarted) and artificial *latency* before the batch.
//! - [`FaultPlan::connection_chaos`] builds the HTTP shim's
//!   [`chaos_drop`](crate::HttpOptions::chaos_drop) hook, dropping
//!   connections by request ordinal to simulate mid-request network
//!   failures.
//!
//! ```
//! use snn_serve::FaultPlan;
//!
//! let plan = FaultPlan::new(42).with_error_rate(0.5);
//! // Decisions are a pure function of (plan seed, request seed):
//! assert_eq!(plan.fault_for(7), plan.fault_for(7));
//! ```

use crate::core::{InferenceRequest, InferenceResult, ModelRunner, ServeModel};
use snn_core::SnnError;
use std::time::Duration;

/// What a [`FaultPlan`] decided to do to one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Serve the request normally.
    None,
    /// The model reports a typed per-request error.
    Error,
    /// The model panics on the batch containing this request (the panic is
    /// contained by the worker; the whole batch gets
    /// [`ModelPanicked`](crate::ServeError::ModelPanicked)).
    Panic,
    /// The model stalls this long before running the batch.
    Latency(Duration),
}

/// A seeded, deterministic description of injected faults.
///
/// All rates are probabilities in `[0, 1]`, evaluated per request from a
/// hash of `(plan seed, request seed)`; they partition one uniform draw, so
/// `panic_rate + error_rate + latency_rate` should not exceed 1 (excess is
/// clipped in rate order: panic first, then error, then latency).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the plan; different seeds produce independent fault sets.
    pub seed: u64,
    /// Probability that a request's model call panics.
    pub panic_rate: f64,
    /// Probability that a request's model call returns a typed error.
    pub error_rate: f64,
    /// Probability that a request's batch is delayed by [`FaultPlan::latency`].
    pub latency_rate: f64,
    /// The injected stall for latency faults (default 1 ms).
    pub latency: Duration,
    /// Probability that the HTTP shim drops a connection mid-request
    /// (evaluated per request *ordinal*, see
    /// [`FaultPlan::connection_chaos`]).
    pub drop_rate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; switch them on with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            error_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
            drop_rate: 0.0,
        }
    }

    /// Sets the model-panic probability.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the model-error probability.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Sets the latency-fault probability and stall duration.
    pub fn with_latency(mut self, rate: f64, latency: Duration) -> Self {
        self.latency_rate = rate;
        self.latency = latency;
        self
    }

    /// Sets the connection-drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// The fault this plan assigns to a request with encoder seed
    /// `request_seed`. Pure: depends only on the plan and the argument.
    pub fn fault_for(&self, request_seed: u64) -> Fault {
        let draw = unit(hash2(self.seed, request_seed, 0x6d6f64656c)); // "model"
        if draw < self.panic_rate {
            Fault::Panic
        } else if draw < self.panic_rate + self.error_rate {
            Fault::Error
        } else if draw < self.panic_rate + self.error_rate + self.latency_rate {
            Fault::Latency(self.latency)
        } else {
            Fault::None
        }
    }

    /// Whether the HTTP shim should drop the connection serving request
    /// ordinal `n` (0-based across the server). Pure in `(plan, n)`.
    pub fn drops_connection(&self, ordinal: u64) -> bool {
        unit(hash2(self.seed, ordinal, 0x64726f70)) < self.drop_rate // "drop"
    }

    /// Builds the [`chaos_drop`](crate::HttpOptions::chaos_drop) hook for
    /// [`HttpServer::bind_with_options`](crate::HttpServer::bind_with_options).
    pub fn connection_chaos(&self) -> crate::http::ConnectionChaos {
        let plan = *self;
        std::sync::Arc::new(move |ordinal| plan.drops_connection(ordinal))
    }
}

/// splitmix64 finalizer, re-exported from `snn-core` (the single shared
/// implementation across serve and train fault plans). Shared with the
/// retry jitter.
pub(crate) use snn_core::splitmix64;

/// Domain-separated hash of two words.
fn hash2(a: u64, b: u64, domain: u64) -> u64 {
    splitmix64(splitmix64(a ^ splitmix64(domain)) ^ b)
}

/// Maps a hash onto `[0, 1)` with 53-bit precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`ServeModel`] wrapper injecting the faults of a [`FaultPlan`] into an
/// inner model. The wrapper is transparent for unfaulted requests: their
/// results are exactly the inner model's (the serving determinism contract
/// survives fault injection).
#[derive(Debug)]
pub struct FaultyModel<M> {
    inner: M,
    plan: FaultPlan,
}

impl<M> FaultyModel<M> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultyModel { inner, plan }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<M: ServeModel> ServeModel for FaultyModel<M> {
    type Runner = FaultyRunner<M::Runner>;

    fn runner(&self) -> Self::Runner {
        FaultyRunner {
            inner: self.inner.runner(),
            plan: self.plan,
        }
    }
}

/// The [`ModelRunner`] of a [`FaultyModel`].
#[derive(Debug)]
pub struct FaultyRunner<R> {
    inner: R,
    plan: FaultPlan,
}

impl<R: ModelRunner> ModelRunner for FaultyRunner<R> {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>> {
        // Panic dominates: any panic-faulted request takes its whole batch
        // down, exactly like a real model bug would.
        if let Some(seed) = requests
            .iter()
            .map(|r| r.seed)
            .find(|&s| self.plan.fault_for(s) == Fault::Panic)
        {
            panic!("injected fault: model panic (request seed {seed})");
        }
        let mut stall = Duration::ZERO;
        for request in &requests {
            if let Fault::Latency(d) = self.plan.fault_for(request.seed) {
                stall = stall.max(d);
            }
        }
        if stall > Duration::ZERO {
            std::thread::sleep(stall);
        }
        let errored: Vec<bool> = requests
            .iter()
            .map(|r| self.plan.fault_for(r.seed) == Fault::Error)
            .collect();
        let results = self.inner.run_batch(requests);
        results
            .into_iter()
            .zip(errored)
            .map(|(result, errored)| {
                if errored {
                    Err(SnnError::config("fault", "injected model error"))
                } else {
                    result
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let plan = FaultPlan::new(1)
            .with_panic_rate(0.1)
            .with_error_rate(0.2)
            .with_latency(0.2, Duration::from_millis(1));
        for seed in 0..64 {
            assert_eq!(plan.fault_for(seed), plan.fault_for(seed));
        }
        // A different plan seed reshuffles the fault assignment.
        let other = FaultPlan { seed: 2, ..plan };
        assert!((0..256).any(|s| plan.fault_for(s) != other.fault_for(s)));
    }

    #[test]
    fn rates_partition_one_draw() {
        // With rates summing to 1 every request is faulted; with all zero
        // none is.
        let all = FaultPlan::new(3).with_panic_rate(0.5).with_error_rate(0.5);
        assert!((0..128).all(|s| all.fault_for(s) != Fault::None));
        let none = FaultPlan::new(3);
        assert!((0..128).all(|s| none.fault_for(s) == Fault::None));
    }

    #[test]
    fn observed_rates_track_configured_rates() {
        let plan = FaultPlan::new(7).with_error_rate(0.25);
        let n = 10_000;
        let errors = (0..n)
            .filter(|&s| plan.fault_for(s) == Fault::Error)
            .count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed error rate {rate}");
        let drops = (0..n)
            .filter(|&o| plan.with_drop_rate(0.1).drops_connection(o))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed drop rate {rate}");
    }
}
