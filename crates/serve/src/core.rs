//! The transport-agnostic serving core: dynamic batching over a bounded
//! queue, dedicated model workers, and streaming latency statistics.
//!
//! # Ownership model
//!
//! ```text
//!  acceptors (any thread)          worker threads (N = ServeConfig::workers)
//!  ─────────────────────           ──────────────────────────────────────────
//!  submit(request) ──try_push──▶  BoundedQueue ──pop_batch──▶ [r0 r1 .. rk]
//!      │     (never blocks;                     (coalesce ≤ max_batch or
//!      │      sheds Overloaded)                  flush at max_delay)
//!      ▼                                             │ Runner::run_batch
//!  ResponseHandle ◀──────────── per-request slots ◀──┘ (owns the model
//!      .wait()                                          session; results
//!                                                       land in order)
//! ```
//!
//! The model is owned by the workers: each worker thread builds its own
//! [`ModelRunner`] from the shared [`ServeModel`] at startup (mirroring the
//! per-worker `RunState` of `Session::run_batch`) and drains the queue until
//! shutdown. Requests never share mutable state; responses travel back
//! through one-shot slots.
//!
//! # Determinism
//!
//! Batching is a *scheduling* decision, never a numerical one: every request
//! carries its own seed, and a conforming [`ModelRunner`] (the engine-backed
//! one in the `snn` facade runs `Session::run_batch_with_seeds`) produces
//! bitwise-identical results whether a request is served alone or coalesced
//! into any batch, in any position, at any worker/thread count.

use crate::error::ServeError;
use crate::queue::{BoundedQueue, PushRefusal};
use serde::Serialize;
use snn_accel::accelerator::InferenceReport;
use snn_core::network::LayerTrace;
use snn_core::spike::SpikeRecord;
use snn_core::stats::LogHistogram;
use snn_core::tensor::Tensor;
use snn_core::SnnError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One inference request: the input image plus the encoder seed it must run
/// under. The seed travels with the request so that coalescing requests into
/// a batch cannot change any result (see the module docs on determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// The input tensor (e.g. `[C, H, W]` image planes).
    pub image: Tensor,
    /// Encoder seed for this request (only stochastic encoders consume it;
    /// deterministic direct coding ignores the value but the contract is
    /// uniform).
    pub seed: u64,
    /// Deadline budget, measured from submission: a result delivered more
    /// than this long after [`ServeCore::submit`] accepted the request is
    /// worthless to the caller (the paper's ECU pipeline is latency-bound,
    /// so the server models this explicitly). `None` falls back to
    /// [`ServeConfig::default_timeout`]. Expired requests are dropped at
    /// dequeue *before* any inference is spent on them, and admission
    /// control pre-rejects requests whose deadline the current queue wait
    /// already makes unmeetable.
    pub deadline: Option<Duration>,
    /// Name of the registry model this request targets. `None` routes to a
    /// single-model core (or the registry's default model). A [`ServeCore`]
    /// itself ignores the field — routing happens one layer up, in the
    /// [`ModelZoo`](crate::ModelZoo) — so a request that reaches a core is
    /// always already routed.
    pub model: Option<String>,
}

impl InferenceRequest {
    /// Builds a request with seed 0 and no explicit deadline.
    pub fn new(image: Tensor) -> Self {
        InferenceRequest {
            image,
            seed: 0,
            deadline: None,
            model: None,
        }
    }

    /// Builds a request with an explicit seed (and no explicit deadline).
    pub fn seeded(image: Tensor, seed: u64) -> Self {
        InferenceRequest {
            image,
            seed,
            deadline: None,
            model: None,
        }
    }

    /// Sets the deadline budget (builder style).
    ///
    /// ```
    /// use snn_serve::InferenceRequest;
    /// use snn_core::tensor::Tensor;
    /// use std::time::Duration;
    ///
    /// let image = Tensor::from_vec(vec![1.0], &[1]).unwrap();
    /// let request = InferenceRequest::seeded(image, 7).with_deadline(Duration::from_millis(25));
    /// assert_eq!(request.deadline, Some(Duration::from_millis(25)));
    /// ```
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Targets a named registry model (builder style). See
    /// [`InferenceRequest::model`].
    #[must_use]
    pub fn with_model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }
}

/// One inference result, mirroring the facade's `RunReport`: classification
/// output, spike traces, and (when the model computes one) the accelerator's
/// hardware estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Per-class scores.
    pub logits: Vec<f32>,
    /// Index of the predicted class.
    pub prediction: usize,
    /// Per-layer spike record (summed over timesteps).
    pub record: SpikeRecord,
    /// Detailed per-layer traces.
    pub traces: Vec<LayerTrace>,
    /// Number of timesteps simulated.
    pub timesteps: usize,
    /// The accelerator's latency/energy/resource estimate, if the model
    /// produces one (stub models in tests may not).
    pub hardware: Option<InferenceReport>,
}

impl InferenceResult {
    /// Builds a minimal result from logits alone (prediction = argmax, no
    /// traces, no hardware estimate). Intended for stub models in tests and
    /// examples.
    pub fn from_logits(logits: Vec<f32>) -> Self {
        let prediction = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        InferenceResult {
            logits,
            prediction,
            record: SpikeRecord::new(0),
            traces: Vec::new(),
            timesteps: 0,
            hardware: None,
        }
    }
}

/// Server-side completion hook: called by the batch workers with every
/// successful [`InferenceResult`] *before* the waiter is released. The
/// registry hangs its per-model drift tracker here so spike-rate
/// distributions are folded on the serving path regardless of whether the
/// client ever looks at the response.
///
/// The hook runs on worker threads outside any core lock; it must be cheap
/// (it is on the completion hot path) and must not call back into the core.
pub type ResultObserver = Arc<dyn Fn(&InferenceResult) + Send + Sync>;

/// Debug-transparent holder for the optional observer (`dyn Fn` has no
/// `Debug`).
struct ObserverCell(Option<ResultObserver>);

impl std::fmt::Debug for ObserverCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverCell(Some(..))"
        } else {
            "ObserverCell(None)"
        })
    }
}

/// The per-worker execution handle: owns whatever mutable state one worker
/// needs (the engine-backed runner owns a `Session`) and runs coalesced
/// batches.
pub trait ModelRunner: Send {
    /// Runs one coalesced batch and returns one result per request, in
    /// request order. Implementations must attribute failures per request
    /// (a malformed request must not fail its batch neighbours) and must be
    /// batching-invariant: request `i`'s result depends only on
    /// `(requests[i].image, requests[i].seed)`.
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>>;
}

/// A servable model: cheap to share across worker threads, vending one
/// [`ModelRunner`] per worker.
pub trait ServeModel: Send + Sync + 'static {
    /// The per-worker runner type.
    type Runner: ModelRunner + 'static;

    /// Builds one worker's runner (called once per worker thread at
    /// startup).
    fn runner(&self) -> Self::Runner;
}

/// Configuration of [`ServeCore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of queued requests coalesced into one model batch
    /// (default 8).
    pub max_batch: usize,
    /// Latency budget of the batcher: once the first request of a batch has
    /// been picked up, the batch is flushed after at most this long even if
    /// it is not full (default 2 ms).
    pub max_delay: Duration,
    /// Hard bound on the request queue (default 128). The queue can never
    /// hold more than this many requests.
    pub queue_capacity: usize,
    /// Load-shedding threshold: submissions are rejected with
    /// [`ServeError::Overloaded`] once the queue depth reaches this mark
    /// (default: `queue_capacity`). Must be `1..=queue_capacity`.
    pub high_water: Option<usize>,
    /// Number of batch worker threads (default 1 — the engine-backed runner
    /// already fans a batch out over the engine's own worker threads).
    /// Resolved through the shared `snn_core::resolve_threads` clamp rule.
    pub workers: Option<usize>,
    /// Deadline budget applied to requests that do not carry their own
    /// (default: `None` — no deadline). See
    /// [`InferenceRequest::with_deadline`] for the semantics.
    pub default_timeout: Option<Duration>,
    /// Base delay before the supervisor respawns a dead batch worker
    /// (default 10 ms). Consecutive deaths without progress double the
    /// delay up to [`ServeConfig::restart_backoff_cap`]; a completed batch
    /// resets it.
    pub restart_backoff: Duration,
    /// Upper bound of the restart backoff (default 1 s).
    pub restart_backoff_cap: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            high_water: None,
            workers: Some(1),
            default_timeout: None,
            restart_backoff: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_secs(1),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, resolving defaults.
    fn validated(&self) -> Result<(usize, usize), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Model(SnnError::config(
                "max_batch",
                "dynamic batches must hold at least one request",
            )));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Model(SnnError::config(
                "queue_capacity",
                "the request queue must hold at least one request",
            )));
        }
        let high_water = self.high_water.unwrap_or(self.queue_capacity);
        if high_water == 0 || high_water > self.queue_capacity {
            return Err(ServeError::Model(SnnError::config(
                "high_water",
                format!(
                    "the shedding threshold must be in 1..={} (the queue capacity), got {high_water}",
                    self.queue_capacity
                ),
            )));
        }
        if self.restart_backoff_cap < self.restart_backoff {
            return Err(ServeError::Model(SnnError::config(
                "restart_backoff_cap",
                "the restart backoff cap must be at least the base backoff",
            )));
        }
        // `workers: Some(n)` goes through the shared thread-count clamp rule
        // (`snn_core::resolve_threads`); `None` means one worker, NOT the
        // machine parallelism — the engine-backed runner parallelises inside
        // the batch already, and stacking both oversubscribes.
        let workers = match self.workers {
            Some(n) => snn_core::resolve_threads(Some(n)),
            None => 1,
        };
        Ok((high_water, workers))
    }
}

/// A completed request as seen by the submitter: the model result plus the
/// serving-side timing of this request's journey through the queue and
/// batcher.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResponse {
    /// The model's result.
    pub result: InferenceResult,
    /// Microseconds spent queued before a worker picked the request up.
    pub queued_us: u64,
    /// Microseconds the model spent on the coalesced batch containing this
    /// request.
    pub batch_us: u64,
    /// Size of the coalesced batch this request ran in.
    pub batch_size: usize,
}

/// One-shot completion slot shared by a queued job and its
/// [`ResponseHandle`].
#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<Option<Result<ServedResponse, ServeError>>>,
    done: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fill(&self, value: Result<ServedResponse, ServeError>) {
        let mut state = self.state.lock().expect("response slot poisoned");
        if state.is_none() {
            *state = Some(value);
            self.done.notify_all();
        }
    }
}

/// Handle on a submitted request; blocks on [`ResponseHandle::wait`] until a
/// worker completes it.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Blocks until the request completes and returns its response.
    pub fn wait(self) -> Result<ServedResponse, ServeError> {
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(value) = state.take() {
                return value;
            }
            state = self.slot.done.wait(state).expect("response slot poisoned");
        }
    }

    /// Like [`ResponseHandle::wait`] with a timeout; returns `Err(self)` so
    /// the caller can keep waiting if the request has not completed yet.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServedResponse, ServeError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(value) = state.take() {
                return Ok(value);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            let (next, _) = self
                .slot
                .done
                .wait_timeout(state, deadline - now)
                .expect("response slot poisoned");
            state = next;
        }
    }
}

/// A queued unit of work: the request plus its completion slot. If an armed
/// ticket is dropped without being completed (worker panic, core teardown),
/// the waiter is released with [`ServeError::ShuttingDown`] instead of
/// hanging.
#[derive(Debug)]
struct Ticket {
    slot: Arc<ResponseSlot>,
    enqueued: Instant,
    /// Absolute expiry computed at submit time from the request's deadline
    /// budget (or the configured default). Workers drop expired tickets at
    /// dequeue, before spending inference on them.
    deadline: Option<Instant>,
    armed: bool,
}

impl Ticket {
    fn new(slot: Arc<ResponseSlot>, deadline: Option<Instant>) -> Self {
        Ticket {
            slot,
            enqueued: Instant::now(),
            deadline,
            armed: true,
        }
    }

    fn complete(mut self, value: Result<ServedResponse, ServeError>) {
        self.slot.fill(value);
        self.armed = false;
    }

    /// Defuses the drop-guard for a ticket that was never accepted into the
    /// queue (its handle is never returned, so nobody is waiting).
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.armed {
            self.slot.fill(Err(ServeError::ShuttingDown));
        }
    }
}

#[derive(Debug)]
struct Job {
    request: InferenceRequest,
    ticket: Ticket,
}

/// Aggregate counters and latency quantiles of a [`ServeCore`], snapshotted
/// by [`ServeCore::stats`]. Latencies are end-to-end (submit → completion)
/// in microseconds, tracked by the `snn-core` [`LogHistogram`] (relative
/// quantile error ≤ 2⁻⁵).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests pre-rejected at submit with
    /// [`ServeError::DeadlineUnmeetable`] (the queue-wait estimate already
    /// exceeded their deadline).
    pub deadline_rejected: u64,
    /// Requests dropped at dequeue with [`ServeError::DeadlineExceeded`]
    /// (they expired while queued; no inference was spent on them).
    pub deadline_expired: u64,
    /// Requests that reached the model and failed.
    pub model_errors: u64,
    /// Model panics contained by a batch worker (each answers its whole
    /// batch with [`ServeError::ModelPanicked`] and costs one worker
    /// restart).
    pub model_panics: u64,
    /// Dead batch workers respawned by the supervisor. A healthy core stays
    /// at 0; a rising count is the failure-observability signal that the
    /// model is panicking or workers are dying.
    pub worker_restarts: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub peak_batch: usize,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Largest queue depth ever observed (never exceeds the configured
    /// capacity, by construction).
    pub peak_queue_depth: usize,
    /// Median end-to-end latency in microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile end-to-end latency in microseconds.
    pub latency_p99_us: u64,
    /// Maximum end-to-end latency in microseconds.
    pub latency_max_us: u64,
    /// Mean end-to-end latency in microseconds.
    pub latency_mean_us: f64,
    /// Median queue wait in microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait in microseconds.
    pub queue_p99_us: u64,
    /// Median per-request model service time in microseconds (a batch's
    /// model time divided by its size); admission control multiplies this
    /// by the queue depth to estimate a new arrival's queue wait.
    pub service_p50_us: u64,
}

#[derive(Debug)]
struct StatsState {
    submitted: u64,
    completed: u64,
    rejected: u64,
    deadline_rejected: u64,
    deadline_expired: u64,
    model_errors: u64,
    model_panics: u64,
    worker_restarts: u64,
    batches: u64,
    peak_batch: usize,
    coalesced: u64,
    latency: LogHistogram,
    queue_wait: LogHistogram,
    /// Per-request share of model batch time; the admission-control
    /// queue-wait estimator reads its median.
    service: LogHistogram,
}

impl StatsState {
    fn new() -> Self {
        StatsState {
            submitted: 0,
            completed: 0,
            rejected: 0,
            deadline_rejected: 0,
            deadline_expired: 0,
            model_errors: 0,
            model_panics: 0,
            worker_restarts: 0,
            batches: 0,
            peak_batch: 0,
            coalesced: 0,
            latency: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
            service: LogHistogram::new(),
        }
    }
}

/// Supervisor signalling: workers report their slot here when they exit
/// (normally or by panic), and [`ServeCore::shutdown`] flags `closing`.
#[derive(Debug, Default)]
struct SupervisionState {
    dead: Vec<usize>,
    closing: bool,
}

#[derive(Debug)]
struct CoreShared {
    queue: BoundedQueue<Job>,
    high_water: usize,
    max_batch: usize,
    max_delay: Duration,
    default_timeout: Option<Duration>,
    workers: usize,
    restart_backoff: Duration,
    restart_backoff_cap: Duration,
    stats: Mutex<StatsState>,
    supervision: Mutex<SupervisionState>,
    supervisor_wake: Condvar,
    observer: ObserverCell,
    /// Set once by the supervisor when it declares the model wedged (see
    /// [`WEDGE_LIMIT`]); never cleared. The registry folds this into the
    /// per-model health state.
    wedged: std::sync::atomic::AtomicBool,
}

/// Admission control only trusts the service-time estimate once this many
/// requests have been measured; before that, every deadline is assumed
/// meetable (the queue-wait shedding at dequeue still protects the model).
const ADMISSION_WARMUP: u64 = 16;

/// Consecutive no-progress worker deaths after which the supervisor
/// declares the model wedged (its runner cannot even be constructed),
/// closes the queue and fails the backlog with typed errors instead of
/// respawning forever while waiters hang.
const WEDGE_LIMIT: u32 = 8;

/// The dynamic-batching serving core. Generic over the [`ServeModel`] it
/// serves; the `snn` facade implements the trait for its `Engine`.
///
/// See the [module docs](self) for the ownership diagram and the
/// determinism contract.
///
/// # Fault tolerance
///
/// Each worker runs the model under `catch_unwind`: a panicking model
/// answers exactly the requests of the panicking batch with the typed
/// [`ServeError::ModelPanicked`] (never a hang, never a poisoned core) and
/// the worker then exits, conservatively discarding its possibly-poisoned
/// runner. A supervisor thread respawns dead workers with capped
/// exponential backoff and exposes the restart count in
/// [`ServeStats::worker_restarts`]. Requests whose deadline passed while
/// they were queued are dropped at dequeue — before any inference is spent
/// on them — with [`ServeError::DeadlineExceeded`], and admission control
/// pre-rejects submissions whose deadline the current queue-wait estimate
/// already exceeds.
#[derive(Debug)]
pub struct ServeCore<M: ServeModel> {
    shared: Arc<CoreShared>,
    model: Arc<M>,
    /// Taken by the first [`ServeCore::shutdown`] caller; `shutdown_done`
    /// lets concurrent callers wait for that first call to finish.
    supervisor: Mutex<Option<JoinHandle<()>>>,
    shutdown_done: (Mutex<bool>, Condvar),
}

impl<M: ServeModel> ServeCore<M> {
    /// Starts the core: validates the configuration and launches the
    /// supervisor, which spawns the worker threads (each owning one
    /// [`ModelRunner`]) and respawns them if they die.
    ///
    /// # Errors
    ///
    /// Returns a config error for a zero `max_batch`/`queue_capacity`, an
    /// out-of-range `high_water` or a backoff cap below the base backoff.
    pub fn start(model: M, config: ServeConfig) -> Result<Self, ServeError> {
        Self::start_with_observer(model, config, None)
    }

    /// Like [`ServeCore::start`], additionally installing a
    /// [`ResultObserver`] that the workers call with every successful
    /// result. The registry uses this to feed its per-model drift tracker.
    ///
    /// # Errors
    ///
    /// Same as [`ServeCore::start`].
    pub fn start_with_observer(
        model: M,
        config: ServeConfig,
        observer: Option<ResultObserver>,
    ) -> Result<Self, ServeError> {
        let (high_water, workers) = config.validated()?;
        let shared = Arc::new(CoreShared {
            queue: BoundedQueue::new(config.queue_capacity),
            high_water,
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            default_timeout: config.default_timeout,
            workers,
            restart_backoff: config.restart_backoff,
            restart_backoff_cap: config.restart_backoff_cap,
            stats: Mutex::new(StatsState::new()),
            supervision: Mutex::new(SupervisionState::default()),
            supervisor_wake: Condvar::new(),
            observer: ObserverCell(observer),
            wedged: std::sync::atomic::AtomicBool::new(false),
        });
        let model = Arc::new(model);
        let supervisor = {
            let shared = Arc::clone(&shared);
            let model = Arc::clone(&model);
            std::thread::Builder::new()
                .name("snn-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &model, workers))
                .expect("failed to spawn serve supervisor thread")
        };
        Ok(ServeCore {
            shared,
            model,
            supervisor: Mutex::new(Some(supervisor)),
            shutdown_done: (Mutex::new(false), Condvar::new()),
        })
    }

    /// Submits a request. **Never blocks**: the request is either queued
    /// (returning a [`ResponseHandle`] to wait on) or refused immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] once the queue depth reaches the
    /// high-water mark, [`ServeError::DeadlineUnmeetable`] when the request
    /// carries a deadline (or [`ServeConfig::default_timeout`] applies one)
    /// that the current queue-wait estimate — queue depth × the median
    /// per-request service time from the core's streaming
    /// [`LogHistogram`] — already exceeds, and
    /// [`ServeError::ShuttingDown`] after [`ServeCore::shutdown`].
    pub fn submit(&self, request: InferenceRequest) -> Result<ResponseHandle, ServeError> {
        let budget = request.deadline.or(self.shared.default_timeout);
        if let Some(budget) = budget {
            self.check_admission(budget)?;
        }
        let slot = Arc::new(ResponseSlot::new());
        let deadline = budget.map(|b| Instant::now() + b);
        let job = Job {
            request,
            ticket: Ticket::new(Arc::clone(&slot), deadline),
        };
        match self.shared.queue.try_push(job, self.shared.high_water) {
            Ok(_) => {
                self.shared.stats.lock().expect("stats poisoned").submitted += 1;
                Ok(ResponseHandle { slot })
            }
            Err((job, refusal)) => {
                // The refused ticket must not trip its drop-guard into a
                // spurious ShuttingDown fill on the handle we never return.
                job.ticket.disarm();
                match refusal {
                    PushRefusal::Full { depth } => {
                        self.shared.stats.lock().expect("stats poisoned").rejected += 1;
                        Err(ServeError::Overloaded {
                            depth,
                            limit: self.shared.high_water,
                        })
                    }
                    PushRefusal::Closed => Err(ServeError::ShuttingDown),
                }
            }
        }
    }

    /// Deadline admission control: estimate the queue wait a new arrival
    /// would see (depth × median per-request service time ÷ workers, from
    /// the streaming service-time histogram) and pre-reject the request if
    /// its deadline budget is already unmeetable. Queueing it anyway would
    /// waste queue space and, without the dequeue-time check, model compute
    /// on a result the caller cannot use.
    fn check_admission(&self, budget: Duration) -> Result<(), ServeError> {
        let depth = self.shared.queue.depth() as u64;
        if depth == 0 {
            return Ok(());
        }
        let mut stats = self.shared.stats.lock().expect("stats poisoned");
        if stats.service.count() < ADMISSION_WARMUP {
            return Ok(());
        }
        let service_p50 = stats.service.quantile(0.5);
        let estimated_us = depth
            .saturating_mul(service_p50)
            .checked_div(self.shared.workers as u64)
            .unwrap_or(u64::MAX);
        let deadline_us = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
        if estimated_us > deadline_us {
            stats.deadline_rejected += 1;
            return Err(ServeError::DeadlineUnmeetable {
                estimated_us,
                deadline_us,
            });
        }
        Ok(())
    }

    /// Convenience: [`ServeCore::submit`] then [`ResponseHandle::wait`].
    ///
    /// # Errors
    ///
    /// Same as [`ServeCore::submit`], plus any model error.
    pub fn infer(&self, request: InferenceRequest) -> Result<ServedResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServeStats {
        let stats = self.shared.stats.lock().expect("stats poisoned");
        ServeStats {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected: stats.rejected,
            deadline_rejected: stats.deadline_rejected,
            deadline_expired: stats.deadline_expired,
            model_errors: stats.model_errors,
            model_panics: stats.model_panics,
            worker_restarts: stats.worker_restarts,
            batches: stats.batches,
            peak_batch: stats.peak_batch,
            mean_batch: if stats.batches == 0 {
                0.0
            } else {
                stats.coalesced as f64 / stats.batches as f64
            },
            queue_depth: self.shared.queue.depth(),
            peak_queue_depth: self.shared.queue.peak_depth(),
            latency_p50_us: stats.latency.quantile(0.5),
            latency_p99_us: stats.latency.quantile(0.99),
            latency_max_us: stats.latency.max(),
            latency_mean_us: stats.latency.mean(),
            queue_p50_us: stats.queue_wait.quantile(0.5),
            queue_p99_us: stats.queue_wait.quantile(0.99),
            service_p50_us: stats.service.quantile(0.5),
        }
    }

    /// The served model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Whether the supervisor has declared the model wedged: workers died
    /// `WEDGE_LIMIT` (8) consecutive times without a single batch of
    /// progress, the queue was closed and the backlog failed with typed
    /// errors. Monotonic — a wedged core never recovers (replace the model
    /// via the registry instead).
    pub fn is_wedged(&self) -> bool {
        self.shared
            .wedged
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Stops accepting requests, drains everything already queued (in-flight
    /// requests complete; their waiters are answered), and joins the
    /// supervisor and its workers.
    ///
    /// Idempotent and race-safe: a second call — sequential or concurrent —
    /// is a no-op that merely waits for the first call to finish, so
    /// transports and drop-guards may all call it without coordinating.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        {
            let mut sup = self
                .shared
                .supervision
                .lock()
                .expect("supervision poisoned");
            sup.closing = true;
        }
        self.shared.supervisor_wake.notify_all();
        // Exactly one caller takes the handle and joins; everyone else waits
        // for that caller to flag completion.
        let handle = self
            .supervisor
            .lock()
            .expect("supervisor handle poisoned")
            .take();
        let (done_flag, done_cv) = &self.shutdown_done;
        match handle {
            Some(handle) => {
                // The supervisor joins the workers itself; it never panics.
                let _ = handle.join();
                let mut done = done_flag.lock().expect("shutdown flag poisoned");
                *done = true;
                done_cv.notify_all();
            }
            None => {
                let mut done = done_flag.lock().expect("shutdown flag poisoned");
                while !*done {
                    done = done_cv.wait(done).expect("shutdown flag poisoned");
                }
            }
        }
    }
}

impl<M: ServeModel> Drop for ServeCore<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Notifies the supervisor of this worker's death when the worker exits —
/// on the normal return path and on an unwinding panic alike, so a dead
/// worker can never go unnoticed.
struct DeathGuard<'a> {
    shared: &'a CoreShared,
    slot: usize,
}

impl Drop for DeathGuard<'_> {
    fn drop(&mut self) {
        let mut sup = self
            .shared
            .supervision
            .lock()
            .expect("supervision poisoned");
        sup.dead.push(self.slot);
        drop(sup);
        self.shared.supervisor_wake.notify_all();
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

/// One worker: build the runner, then drain coalesced batches until the
/// queue closes and empties.
///
/// Fault containment: the runner is constructed and every batch is executed
/// under `catch_unwind`. A panicking batch answers all of its tickets with
/// [`ServeError::ModelPanicked`] and the worker then exits — the runner may
/// hold arbitrary poisoned state after an unwind, so it is discarded and the
/// supervisor spawns a replacement with a fresh one. Tickets whose deadline
/// passed while queued are dropped before the model sees them.
fn worker_loop<M: ServeModel>(shared: &CoreShared, model: &M, slot: usize) {
    let _death = DeathGuard { shared, slot };
    let Ok(mut runner) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.runner()))
    else {
        // Construction panicked: die quietly; the supervisor backs off,
        // retries, and declares the model wedged if this never succeeds.
        return;
    };
    let mut jobs: Vec<Job> = Vec::with_capacity(shared.max_batch);
    let mut requests: Vec<InferenceRequest> = Vec::with_capacity(shared.max_batch);
    let mut tickets: Vec<Ticket> = Vec::with_capacity(shared.max_batch);
    // (end-to-end latency, queue wait) per answered ticket, buffered so the
    // stats lock is taken once per batch, after the waiters are released.
    let mut timings: Vec<(u64, u64)> = Vec::with_capacity(shared.max_batch);
    while shared
        .queue
        .pop_batch(&mut jobs, shared.max_batch, shared.max_delay)
    {
        requests.clear();
        tickets.clear();
        // Deadline shedding at dequeue: expired requests get their typed
        // error now and never reach the model — the inference they would
        // have cost goes to requests that can still make their deadlines.
        let now = Instant::now();
        let mut expired = 0u64;
        for job in jobs.drain(..) {
            if job.ticket.deadline.is_some_and(|d| now >= d) {
                let queued_us = elapsed_us(job.ticket.enqueued);
                expired += 1;
                job.ticket
                    .complete(Err(ServeError::DeadlineExceeded { queued_us }));
            } else {
                requests.push(job.request);
                tickets.push(job.ticket);
            }
        }
        if expired > 0 {
            let mut stats = shared.stats.lock().expect("stats poisoned");
            stats.deadline_expired += expired;
        }
        let batch_size = requests.len();
        if batch_size == 0 {
            continue;
        }
        let started = Instant::now();
        let batch = std::mem::take(&mut requests);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run_batch(batch)));
        let batch_us = elapsed_us(started);
        let mut results = match outcome {
            Ok(results) => results,
            Err(payload) => {
                // The panic is contained here: exactly this batch's waiters
                // observe it, typed; then this worker dies and is respawned
                // by the supervisor with a fresh (unpoisoned) runner.
                let message = panic_message(payload.as_ref());
                let mut stats = shared.stats.lock().expect("stats poisoned");
                stats.model_panics += 1;
                drop(stats);
                for ticket in tickets.drain(..) {
                    ticket.complete(Err(ServeError::ModelPanicked {
                        message: message.clone(),
                    }));
                }
                return;
            }
        };
        // A conforming runner answers every request; if one under-delivers,
        // the unanswered tail gets a model error rather than a hang.
        while results.len() < batch_size {
            results.push(Err(SnnError::config(
                "runner",
                "model runner returned fewer results than requests",
            )));
        }
        timings.clear();
        let mut completed = 0u64;
        let mut model_errors = 0u64;
        let outcomes: Vec<_> = tickets.drain(..).zip(results).collect();
        for (ticket, result) in &outcomes {
            timings.push((
                elapsed_us(ticket.enqueued),
                duration_us(started.saturating_duration_since(ticket.enqueued)),
            ));
            match result {
                Ok(_) => completed += 1,
                Err(_) => model_errors += 1,
            }
        }
        // Record statistics *before* releasing any waiter — a caller that
        // observed its response must find it counted — but take the lock
        // only this once per batch.
        {
            let mut stats = shared.stats.lock().expect("stats poisoned");
            stats.batches += 1;
            stats.coalesced += batch_size as u64;
            stats.peak_batch = stats.peak_batch.max(batch_size);
            // Per-request service share feeding the admission-control
            // estimator.
            stats.service.record((batch_us / batch_size as u64).max(1));
            stats.completed += completed;
            stats.model_errors += model_errors;
            for &(latency_us, queued_us) in &timings {
                stats.latency.record(latency_us);
                stats.queue_wait.record(queued_us);
            }
        }
        // Answer the waiters (and run the observer) outside the stats lock:
        // the observer is arbitrary registry code (the drift tracker) and
        // must never run under a core lock.
        for (ticket, result) in outcomes {
            let queued_us = duration_us(started.saturating_duration_since(ticket.enqueued));
            match result {
                Ok(result) => {
                    if let Some(observer) = &shared.observer.0 {
                        observer(&result);
                    }
                    ticket.complete(Ok(ServedResponse {
                        result,
                        queued_us,
                        batch_us,
                        batch_size,
                    }));
                }
                Err(e) => {
                    ticket.complete(Err(ServeError::Model(e)));
                }
            }
        }
    }
}

/// The supervisor: spawns the initial worker pool, then loops joining dead
/// workers and respawning them with capped exponential backoff until the
/// queue is shut down (closed and drained) and every worker has exited.
///
/// Two exits are distinguished by [`BoundedQueue::is_shutdown`] (monotonic):
/// a worker that died while the queue was still live is abnormal and is
/// respawned (counted in [`ServeStats::worker_restarts`]); workers exiting
/// after shutdown are normal and simply joined. If workers die
/// `WEDGE_LIMIT` (8) consecutive times without a single batch of progress —
/// the model cannot even construct a runner — the supervisor declares the
/// model wedged: it closes the queue and fails the backlog with typed
/// [`ServeError::ModelPanicked`] responses instead of respawning forever
/// while waiters hang.
fn supervisor_loop<M: ServeModel>(shared: &Arc<CoreShared>, model: &Arc<M>, workers: usize) {
    let spawn = |slot: usize| {
        let shared = Arc::clone(shared);
        let model = Arc::clone(model);
        std::thread::Builder::new()
            .name(format!("snn-serve-worker-{slot}"))
            .spawn(move || worker_loop(&shared, &*model, slot))
            .expect("failed to spawn serve worker thread")
    };
    let mut handles: Vec<Option<JoinHandle<()>>> = (0..workers).map(|w| Some(spawn(w))).collect();
    let mut alive = workers;
    let mut backoff = shared.restart_backoff;
    let mut no_progress_deaths = 0u32;
    let mut last_batches = 0u64;
    loop {
        let dead: Vec<usize> = {
            let mut sup = shared.supervision.lock().expect("supervision poisoned");
            while sup.dead.is_empty() && !(sup.closing && alive == 0) {
                sup = shared
                    .supervisor_wake
                    .wait(sup)
                    .expect("supervision poisoned");
            }
            std::mem::take(&mut sup.dead)
        };
        for slot in dead {
            if let Some(handle) = handles[slot].take() {
                let _ = handle.join();
                alive -= 1;
            }
            if shared.queue.is_shutdown() {
                // Normal drain-complete exit; nothing to respawn.
                continue;
            }
            // Abnormal death with work (potentially) still flowing: respawn.
            let batches = {
                let mut stats = shared.stats.lock().expect("stats poisoned");
                stats.worker_restarts += 1;
                stats.batches
            };
            if batches > last_batches {
                // Progress since the last death: the model works, this was
                // an isolated fault. Restart eagerly again.
                last_batches = batches;
                backoff = shared.restart_backoff;
                no_progress_deaths = 0;
            } else {
                no_progress_deaths += 1;
                if no_progress_deaths >= WEDGE_LIMIT {
                    // Wedged: no worker has ever made progress. Stop the
                    // respawn loop and fail the backlog instead of hanging
                    // its waiters forever.
                    shared
                        .wedged
                        .store(true, std::sync::atomic::Ordering::Relaxed);
                    shared.queue.close();
                    fail_backlog(shared);
                    continue;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(shared.restart_backoff_cap);
            }
            handles[slot] = Some(spawn(slot));
            alive += 1;
        }
        let sup = shared.supervision.lock().expect("supervision poisoned");
        if sup.closing && alive == 0 && sup.dead.is_empty() {
            return;
        }
    }
}

/// Drains whatever is still queued on a wedged core and answers every
/// ticket with a typed error, so no waiter hangs on a model that will never
/// run again.
fn fail_backlog(shared: &CoreShared) {
    let mut jobs: Vec<Job> = Vec::new();
    // The queue is closed, so pop_batch drains without waiting and returns
    // false once empty.
    while shared
        .queue
        .pop_batch(&mut jobs, usize::MAX, Duration::ZERO)
    {
        for job in jobs.drain(..) {
            job.ticket.complete(Err(ServeError::ModelPanicked {
                message: "model wedged: workers died repeatedly without progress".to_string(),
            }));
        }
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn elapsed_us(since: Instant) -> u64 {
    duration_us(since.elapsed())
}
