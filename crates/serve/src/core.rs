//! The transport-agnostic serving core: dynamic batching over a bounded
//! queue, dedicated model workers, and streaming latency statistics.
//!
//! # Ownership model
//!
//! ```text
//!  acceptors (any thread)          worker threads (N = ServeConfig::workers)
//!  ─────────────────────           ──────────────────────────────────────────
//!  submit(request) ──try_push──▶  BoundedQueue ──pop_batch──▶ [r0 r1 .. rk]
//!      │     (never blocks;                     (coalesce ≤ max_batch or
//!      │      sheds Overloaded)                  flush at max_delay)
//!      ▼                                             │ Runner::run_batch
//!  ResponseHandle ◀──────────── per-request slots ◀──┘ (owns the model
//!      .wait()                                          session; results
//!                                                       land in order)
//! ```
//!
//! The model is owned by the workers: each worker thread builds its own
//! [`ModelRunner`] from the shared [`ServeModel`] at startup (mirroring the
//! per-worker `RunState` of `Session::run_batch`) and drains the queue until
//! shutdown. Requests never share mutable state; responses travel back
//! through one-shot slots.
//!
//! # Determinism
//!
//! Batching is a *scheduling* decision, never a numerical one: every request
//! carries its own seed, and a conforming [`ModelRunner`] (the engine-backed
//! one in the `snn` facade runs `Session::run_batch_with_seeds`) produces
//! bitwise-identical results whether a request is served alone or coalesced
//! into any batch, in any position, at any worker/thread count.

use crate::error::ServeError;
use crate::queue::{BoundedQueue, PushRefusal};
use serde::Serialize;
use snn_accel::accelerator::InferenceReport;
use snn_core::network::LayerTrace;
use snn_core::spike::SpikeRecord;
use snn_core::stats::LogHistogram;
use snn_core::tensor::Tensor;
use snn_core::SnnError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One inference request: the input image plus the encoder seed it must run
/// under. The seed travels with the request so that coalescing requests into
/// a batch cannot change any result (see the module docs on determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// The input tensor (e.g. `[C, H, W]` image planes).
    pub image: Tensor,
    /// Encoder seed for this request (only stochastic encoders consume it;
    /// deterministic direct coding ignores the value but the contract is
    /// uniform).
    pub seed: u64,
}

impl InferenceRequest {
    /// Builds a request with seed 0.
    pub fn new(image: Tensor) -> Self {
        InferenceRequest { image, seed: 0 }
    }

    /// Builds a request with an explicit seed.
    pub fn seeded(image: Tensor, seed: u64) -> Self {
        InferenceRequest { image, seed }
    }
}

/// One inference result, mirroring the facade's `RunReport`: classification
/// output, spike traces, and (when the model computes one) the accelerator's
/// hardware estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Per-class scores.
    pub logits: Vec<f32>,
    /// Index of the predicted class.
    pub prediction: usize,
    /// Per-layer spike record (summed over timesteps).
    pub record: SpikeRecord,
    /// Detailed per-layer traces.
    pub traces: Vec<LayerTrace>,
    /// Number of timesteps simulated.
    pub timesteps: usize,
    /// The accelerator's latency/energy/resource estimate, if the model
    /// produces one (stub models in tests may not).
    pub hardware: Option<InferenceReport>,
}

impl InferenceResult {
    /// Builds a minimal result from logits alone (prediction = argmax, no
    /// traces, no hardware estimate). Intended for stub models in tests and
    /// examples.
    pub fn from_logits(logits: Vec<f32>) -> Self {
        let prediction = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        InferenceResult {
            logits,
            prediction,
            record: SpikeRecord::new(0),
            traces: Vec::new(),
            timesteps: 0,
            hardware: None,
        }
    }
}

/// The per-worker execution handle: owns whatever mutable state one worker
/// needs (the engine-backed runner owns a `Session`) and runs coalesced
/// batches.
pub trait ModelRunner: Send {
    /// Runs one coalesced batch and returns one result per request, in
    /// request order. Implementations must attribute failures per request
    /// (a malformed request must not fail its batch neighbours) and must be
    /// batching-invariant: request `i`'s result depends only on
    /// `(requests[i].image, requests[i].seed)`.
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>>;
}

/// A servable model: cheap to share across worker threads, vending one
/// [`ModelRunner`] per worker.
pub trait ServeModel: Send + Sync + 'static {
    /// The per-worker runner type.
    type Runner: ModelRunner + 'static;

    /// Builds one worker's runner (called once per worker thread at
    /// startup).
    fn runner(&self) -> Self::Runner;
}

/// Configuration of [`ServeCore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of queued requests coalesced into one model batch
    /// (default 8).
    pub max_batch: usize,
    /// Latency budget of the batcher: once the first request of a batch has
    /// been picked up, the batch is flushed after at most this long even if
    /// it is not full (default 2 ms).
    pub max_delay: Duration,
    /// Hard bound on the request queue (default 128). The queue can never
    /// hold more than this many requests.
    pub queue_capacity: usize,
    /// Load-shedding threshold: submissions are rejected with
    /// [`ServeError::Overloaded`] once the queue depth reaches this mark
    /// (default: `queue_capacity`). Must be `1..=queue_capacity`.
    pub high_water: Option<usize>,
    /// Number of batch worker threads (default 1 — the engine-backed runner
    /// already fans a batch out over the engine's own worker threads).
    /// Resolved through the shared `snn_core::resolve_threads` clamp rule.
    pub workers: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            high_water: None,
            workers: Some(1),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, resolving defaults.
    fn validated(&self) -> Result<(usize, usize), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Model(SnnError::config(
                "max_batch",
                "dynamic batches must hold at least one request",
            )));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Model(SnnError::config(
                "queue_capacity",
                "the request queue must hold at least one request",
            )));
        }
        let high_water = self.high_water.unwrap_or(self.queue_capacity);
        if high_water == 0 || high_water > self.queue_capacity {
            return Err(ServeError::Model(SnnError::config(
                "high_water",
                format!(
                    "the shedding threshold must be in 1..={} (the queue capacity), got {high_water}",
                    self.queue_capacity
                ),
            )));
        }
        // `workers: Some(n)` goes through the shared thread-count clamp rule
        // (`snn_core::resolve_threads`); `None` means one worker, NOT the
        // machine parallelism — the engine-backed runner parallelises inside
        // the batch already, and stacking both oversubscribes.
        let workers = match self.workers {
            Some(n) => snn_core::resolve_threads(Some(n)),
            None => 1,
        };
        Ok((high_water, workers))
    }
}

/// A completed request as seen by the submitter: the model result plus the
/// serving-side timing of this request's journey through the queue and
/// batcher.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResponse {
    /// The model's result.
    pub result: InferenceResult,
    /// Microseconds spent queued before a worker picked the request up.
    pub queued_us: u64,
    /// Microseconds the model spent on the coalesced batch containing this
    /// request.
    pub batch_us: u64,
    /// Size of the coalesced batch this request ran in.
    pub batch_size: usize,
}

/// One-shot completion slot shared by a queued job and its
/// [`ResponseHandle`].
#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<Option<Result<ServedResponse, ServeError>>>,
    done: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fill(&self, value: Result<ServedResponse, ServeError>) {
        let mut state = self.state.lock().expect("response slot poisoned");
        if state.is_none() {
            *state = Some(value);
            self.done.notify_all();
        }
    }
}

/// Handle on a submitted request; blocks on [`ResponseHandle::wait`] until a
/// worker completes it.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Blocks until the request completes and returns its response.
    pub fn wait(self) -> Result<ServedResponse, ServeError> {
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(value) = state.take() {
                return value;
            }
            state = self.slot.done.wait(state).expect("response slot poisoned");
        }
    }

    /// Like [`ResponseHandle::wait`] with a timeout; returns `Err(self)` so
    /// the caller can keep waiting if the request has not completed yet.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServedResponse, ServeError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(value) = state.take() {
                return Ok(value);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            let (next, _) = self
                .slot
                .done
                .wait_timeout(state, deadline - now)
                .expect("response slot poisoned");
            state = next;
        }
    }
}

/// A queued unit of work: the request plus its completion slot. If an armed
/// ticket is dropped without being completed (worker panic, core teardown),
/// the waiter is released with [`ServeError::ShuttingDown`] instead of
/// hanging.
#[derive(Debug)]
struct Ticket {
    slot: Arc<ResponseSlot>,
    enqueued: Instant,
    armed: bool,
}

impl Ticket {
    fn new(slot: Arc<ResponseSlot>) -> Self {
        Ticket {
            slot,
            enqueued: Instant::now(),
            armed: true,
        }
    }

    fn complete(mut self, value: Result<ServedResponse, ServeError>) {
        self.slot.fill(value);
        self.armed = false;
    }

    /// Defuses the drop-guard for a ticket that was never accepted into the
    /// queue (its handle is never returned, so nobody is waiting).
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.armed {
            self.slot.fill(Err(ServeError::ShuttingDown));
        }
    }
}

#[derive(Debug)]
struct Job {
    request: InferenceRequest,
    ticket: Ticket,
}

/// Aggregate counters and latency quantiles of a [`ServeCore`], snapshotted
/// by [`ServeCore::stats`]. Latencies are end-to-end (submit → completion)
/// in microseconds, tracked by the `snn-core` [`LogHistogram`] (relative
/// quantile error ≤ 2⁻⁵).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests that reached the model and failed.
    pub model_errors: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub peak_batch: usize,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Largest queue depth ever observed (never exceeds the configured
    /// capacity, by construction).
    pub peak_queue_depth: usize,
    /// Median end-to-end latency in microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile end-to-end latency in microseconds.
    pub latency_p99_us: u64,
    /// Maximum end-to-end latency in microseconds.
    pub latency_max_us: u64,
    /// Mean end-to-end latency in microseconds.
    pub latency_mean_us: f64,
    /// Median queue wait in microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait in microseconds.
    pub queue_p99_us: u64,
}

#[derive(Debug)]
struct StatsState {
    submitted: u64,
    completed: u64,
    rejected: u64,
    model_errors: u64,
    batches: u64,
    peak_batch: usize,
    coalesced: u64,
    latency: LogHistogram,
    queue_wait: LogHistogram,
}

impl StatsState {
    fn new() -> Self {
        StatsState {
            submitted: 0,
            completed: 0,
            rejected: 0,
            model_errors: 0,
            batches: 0,
            peak_batch: 0,
            coalesced: 0,
            latency: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
        }
    }
}

#[derive(Debug)]
struct CoreShared {
    queue: BoundedQueue<Job>,
    high_water: usize,
    max_batch: usize,
    max_delay: Duration,
    stats: Mutex<StatsState>,
}

/// The dynamic-batching serving core. Generic over the [`ServeModel`] it
/// serves; the `snn` facade implements the trait for its `Engine`.
///
/// See the [module docs](self) for the ownership diagram and the
/// determinism contract.
#[derive(Debug)]
pub struct ServeCore<M: ServeModel> {
    shared: Arc<CoreShared>,
    model: Arc<M>,
    workers: Vec<JoinHandle<()>>,
}

impl<M: ServeModel> ServeCore<M> {
    /// Starts the core: validates the configuration and launches the worker
    /// threads, each owning one [`ModelRunner`].
    ///
    /// # Errors
    ///
    /// Returns a config error for a zero `max_batch`/`queue_capacity` or an
    /// out-of-range `high_water`.
    pub fn start(model: M, config: ServeConfig) -> Result<Self, ServeError> {
        let (high_water, workers) = config.validated()?;
        let shared = Arc::new(CoreShared {
            queue: BoundedQueue::new(config.queue_capacity),
            high_water,
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            stats: Mutex::new(StatsState::new()),
        });
        let model = Arc::new(model);
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("snn-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &*model))
                    .expect("failed to spawn serve worker thread")
            })
            .collect();
        Ok(ServeCore {
            shared,
            model,
            workers: handles,
        })
    }

    /// Submits a request. **Never blocks**: the request is either queued
    /// (returning a [`ResponseHandle`] to wait on) or refused immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] once the queue depth reaches the
    /// high-water mark, [`ServeError::ShuttingDown`] after
    /// [`ServeCore::shutdown`].
    pub fn submit(&self, request: InferenceRequest) -> Result<ResponseHandle, ServeError> {
        let slot = Arc::new(ResponseSlot::new());
        let job = Job {
            request,
            ticket: Ticket::new(Arc::clone(&slot)),
        };
        match self.shared.queue.try_push(job, self.shared.high_water) {
            Ok(_) => {
                self.shared.stats.lock().expect("stats poisoned").submitted += 1;
                Ok(ResponseHandle { slot })
            }
            Err((job, refusal)) => {
                // The refused ticket must not trip its drop-guard into a
                // spurious ShuttingDown fill on the handle we never return.
                job.ticket.disarm();
                match refusal {
                    PushRefusal::Full { depth } => {
                        self.shared.stats.lock().expect("stats poisoned").rejected += 1;
                        Err(ServeError::Overloaded {
                            depth,
                            limit: self.shared.high_water,
                        })
                    }
                    PushRefusal::Closed => Err(ServeError::ShuttingDown),
                }
            }
        }
    }

    /// Convenience: [`ServeCore::submit`] then [`ResponseHandle::wait`].
    ///
    /// # Errors
    ///
    /// Same as [`ServeCore::submit`], plus any model error.
    pub fn infer(&self, request: InferenceRequest) -> Result<ServedResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServeStats {
        let stats = self.shared.stats.lock().expect("stats poisoned");
        ServeStats {
            submitted: stats.submitted,
            completed: stats.completed,
            rejected: stats.rejected,
            model_errors: stats.model_errors,
            batches: stats.batches,
            peak_batch: stats.peak_batch,
            mean_batch: if stats.batches == 0 {
                0.0
            } else {
                stats.coalesced as f64 / stats.batches as f64
            },
            queue_depth: self.shared.queue.depth(),
            peak_queue_depth: self.shared.queue.peak_depth(),
            latency_p50_us: stats.latency.quantile(0.5),
            latency_p99_us: stats.latency.quantile(0.99),
            latency_max_us: stats.latency.max(),
            latency_mean_us: stats.latency.mean(),
            queue_p50_us: stats.queue_wait.quantile(0.5),
            queue_p99_us: stats.queue_wait.quantile(0.99),
        }
    }

    /// The served model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Stops accepting requests, drains everything already queued (in-flight
    /// requests complete; their waiters are answered), and joins the
    /// workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            // A panicked worker already released its waiters through the
            // ticket drop-guards; nothing more to do than surface it.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl<M: ServeModel> Drop for ServeCore<M> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shared.queue.close();
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// One worker: build the runner, then drain coalesced batches until the
/// queue closes and empties.
fn worker_loop<M: ServeModel>(shared: &CoreShared, model: &M) {
    let mut runner = model.runner();
    let mut jobs: Vec<Job> = Vec::with_capacity(shared.max_batch);
    let mut requests: Vec<InferenceRequest> = Vec::with_capacity(shared.max_batch);
    let mut tickets: Vec<Ticket> = Vec::with_capacity(shared.max_batch);
    while shared
        .queue
        .pop_batch(&mut jobs, shared.max_batch, shared.max_delay)
    {
        requests.clear();
        tickets.clear();
        for job in jobs.drain(..) {
            requests.push(job.request);
            tickets.push(job.ticket);
        }
        let batch_size = requests.len();
        let started = Instant::now();
        let mut results = runner.run_batch(std::mem::take(&mut requests));
        let batch_us = elapsed_us(started);
        // A conforming runner answers every request; if one under-delivers,
        // the unanswered tail gets a model error rather than a hang.
        while results.len() < batch_size {
            results.push(Err(SnnError::config(
                "runner",
                "model runner returned fewer results than requests",
            )));
        }
        let mut stats = shared.stats.lock().expect("stats poisoned");
        stats.batches += 1;
        stats.coalesced += batch_size as u64;
        stats.peak_batch = stats.peak_batch.max(batch_size);
        for (ticket, result) in tickets.drain(..).zip(results) {
            let queued_us = duration_us(started.saturating_duration_since(ticket.enqueued));
            stats.latency.record(elapsed_us(ticket.enqueued));
            stats.queue_wait.record(queued_us);
            match result {
                Ok(result) => {
                    stats.completed += 1;
                    ticket.complete(Ok(ServedResponse {
                        result,
                        queued_us,
                        batch_us,
                        batch_size,
                    }));
                }
                Err(e) => {
                    stats.model_errors += 1;
                    ticket.complete(Err(ServeError::Model(e)));
                }
            }
        }
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn elapsed_us(since: Instant) -> u64 {
    duration_us(since.elapsed())
}
