//! A thin blocking HTTP/1.1 shim over [`ServeCore`] or a multi-model
//! [`ModelZoo`], built directly on `std::net::TcpListener` — no async
//! runtime, per the repo's vendored-deps policy. One acceptor thread, one
//! thread per connection (keep-alive supported); all batching,
//! backpressure and statistics live in the transport-agnostic core.
//!
//! # Routes
//!
//! | Route             | Body                                        | Status |
//! |-------------------|---------------------------------------------|--------|
//! | `GET /healthz` (alias `/v1/healthz`) | `ok`, or per-model health JSON (zoo) | 200, or 503 when any model is degraded/wedged |
//! | `GET /v1/stats`   | [`ZooStats`] as JSON | 200 |
//! | `POST /v1/infer`  | JSON request or binary frame (by `Content-Type`) | 200 |
//!
//! `POST /v1/infer` dispatches on `Content-Type`: `application/json` bodies
//! go through the JSON codec, `application/octet-stream` bodies through the
//! binary frame codec; the response mirrors the request format. A request
//! carrying a model id is routed to that model ([`HttpServer::bind_zoo`]
//! servers) or rejected with 404 (single-model servers, which serve only
//! unnamed requests). Responses served by a drift-Degraded model under
//! [`DriftPolicy::Annotate`](crate::registry::DriftPolicy) carry the
//! degraded marker (JSON `"degraded": true`, binary status
//! [`STATUS_OK_DEGRADED`](crate::protocol::STATUS_OK_DEGRADED)).
//!
//! `GET /v1/stats` always returns the registry shape, one section per
//! model keyed by name (single-model servers report one `"default"`
//! entry):
//!
//! ```json
//! {
//!   "default_model": "cifar",
//!   "models": {
//!     "cifar": {
//!       "version": "v2", "health": "healthy",
//!       "drift_kl": 0.04, "drift_layer": "conv1",
//!       "drift_calibrated": true, "drift_observed": 512,
//!       "swaps": 1, "validation_failures": 0, "rollbacks": 0,
//!       "serve": { "submitted": 512, "completed": 512, "...": "..." }
//!     }
//!   }
//! }
//! ```
//!
//! `GET /healthz` on a zoo server returns per-model health:
//!
//! ```json
//! {"status": "degraded",
//!  "models": {"cifar": {"health": "degraded", "kl": 1.31, "layer": "conv1"}}}
//! ```
//!
//! # Status mapping
//!
//! | [`ServeError`] variant | HTTP status |
//! |------------------------|-------------|
//! | `Overloaded`           | 503 (with `Retry-After`) — back off and retry |
//! | `ShuttingDown`         | 503         |
//! | `Degraded`             | 503 (with `Retry-After`) — drift-shed; rolled back soon |
//! | `DeadlineExceeded`     | 504         |
//! | `DeadlineUnmeetable`   | 504 (with computed `Retry-After`) |
//! | `ModelPanicked`        | 500         |
//! | `Protocol`             | 400         |
//! | `Model`                | 422         |
//! | `UnknownModel`         | 404         |
//! | `ValidationFailed`     | 422         |
//! | `Timeout`              | 408 (stalled peer; connection is closed) |
//! | `TooLarge`             | 413         |
//! | `Io`                   | 500         |
//!
//! Error bodies are always JSON: `{"error": "<message>"}`.
//!
//! # Hardening
//!
//! Connections are bounded in every dimension via [`HttpOptions`]: a head
//! that never finishes arriving ([`HttpOptions::header_timeout`]) or a body
//! that trickles ([`HttpOptions::body_timeout`]) gets 408 and the thread
//! back (slowloris protection); an oversized head or declared body gets 413
//! *before* any allocation. Writes carry [`HttpOptions::write_timeout`] so
//! a peer that stops reading cannot pin a thread either.

use crate::core::{ServeCore, ServeModel, ServedResponse};
use crate::error::ServeError;
use crate::protocol;
use crate::registry::{ModelHealth, ModelStats, ModelZoo, ZooStats};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval for idle keep-alive connections, so connection threads
/// notice shutdown promptly.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Per-connection chaos hook: called with the 0-based inference-request
/// ordinal; returning `true` makes the server drop the connection abruptly
/// (no response bytes), simulating a mid-request network failure. Only the
/// fault-injection tests install one.
pub type ConnectionChaos = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Transport limits and timeouts of the HTTP shim. The defaults are
/// generous for trusted clients; lower them at the edge.
#[derive(Clone)]
pub struct HttpOptions {
    /// Ceiling on request head (request line + headers) bytes → 413.
    pub max_head: usize,
    /// Ceiling on request body bytes (checked against `Content-Length`
    /// before any allocation) → 413.
    pub max_body: usize,
    /// How long a partially-received head may keep trickling in → 408.
    /// Idle keep-alive connections (no bytes buffered) are exempt.
    pub header_timeout: Duration,
    /// How long a body may take to arrive after the head → 408.
    pub body_timeout: Duration,
    /// Socket write timeout; a peer that stops reading loses its
    /// connection instead of pinning the thread.
    pub write_timeout: Duration,
    /// Deterministic connection-drop hook for chaos tests.
    pub chaos_drop: Option<ConnectionChaos>,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions {
            max_head: 16 * 1024,
            // Comfortably above the largest legal binary frame; hostile
            // `Content-Length` values are refused before any allocation.
            max_body: 128 << 20,
            header_timeout: Duration::from_secs(5),
            body_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            chaos_drop: None,
        }
    }
}

impl std::fmt::Debug for HttpOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpOptions")
            .field("max_head", &self.max_head)
            .field("max_body", &self.max_body)
            .field("header_timeout", &self.header_timeout)
            .field("body_timeout", &self.body_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("chaos_drop", &self.chaos_drop.is_some())
            .finish()
    }
}

/// What the server fronts: one core, or a whole registry.
enum Backend<M: ServeModel> {
    Single(ServeCore<M>),
    Zoo(ModelZoo<M>),
}

impl<M: ServeModel> Backend<M> {
    /// Routes and serves one request, reporting whether the serving model
    /// was drift-Degraded (always `false` for a single core, which has no
    /// drift tracker). A single-model server refuses named requests: it
    /// serves exactly one anonymous model.
    fn infer_annotated(
        &self,
        request: crate::core::InferenceRequest,
    ) -> Result<(ServedResponse, bool), ServeError> {
        match self {
            Backend::Single(core) => {
                if let Some(model) = &request.model {
                    return Err(ServeError::UnknownModel {
                        model: model.clone(),
                    });
                }
                Ok((core.infer(request)?, false))
            }
            Backend::Zoo(zoo) => zoo.infer_annotated(request),
        }
    }

    /// The `/v1/stats` payload: always the registry shape, so clients see
    /// one JSON schema regardless of backend. A single core reports one
    /// `"default"` section with the drift fields idle.
    fn stats(&self) -> ZooStats {
        match self {
            Backend::Single(core) => {
                let health = if core.is_wedged() {
                    ModelHealth::Wedged
                } else {
                    ModelHealth::Healthy
                };
                let mut models = std::collections::BTreeMap::new();
                models.insert(
                    "default".to_string(),
                    ModelStats {
                        version: "unversioned".to_string(),
                        health: health.as_str().to_string(),
                        drift_kl: 0.0,
                        drift_layer: None,
                        drift_calibrated: false,
                        drift_observed: 0,
                        swaps: 0,
                        validation_failures: 0,
                        rollbacks: 0,
                        serve: core.stats(),
                    },
                );
                ZooStats {
                    default_model: Some("default".to_string()),
                    models,
                }
            }
            Backend::Zoo(zoo) => zoo.stats(),
        }
    }

    /// The `/healthz` payload and status: 200 only when every model is
    /// healthy. Single healthy cores keep the classic `ok` text body so
    /// trivial probes keep working; everything else is JSON.
    fn health_response(&self) -> (u16, &'static str, Vec<u8>) {
        let health = match self {
            Backend::Single(core) => {
                if !core.is_wedged() {
                    return (200, "text/plain", b"ok".to_vec());
                }
                let mut models = std::collections::BTreeMap::new();
                models.insert("default".to_string(), ModelHealth::Wedged);
                models
            }
            Backend::Zoo(zoo) => zoo.health_all(),
        };
        let all_healthy = health.values().all(|h| *h == ModelHealth::Healthy);
        let status_word = if all_healthy {
            "ok"
        } else if health.values().any(|h| *h == ModelHealth::Wedged) {
            "wedged"
        } else {
            "degraded"
        };
        let models = health
            .into_iter()
            .map(|(name, h)| {
                let mut fields = vec![(
                    "health".to_string(),
                    serde::Value::Str(h.as_str().to_string()),
                )];
                if let ModelHealth::Degraded { kl, layer } = h {
                    fields.push(("kl".to_string(), serde::Value::F64(kl)));
                    fields.push(("layer".to_string(), serde::Value::Str(layer)));
                }
                (name, serde::Value::Obj(fields))
            })
            .collect();
        let value = serde::Value::Obj(vec![
            (
                "status".to_string(),
                serde::Value::Str(status_word.to_string()),
            ),
            ("models".to_string(), serde::Value::Obj(models)),
        ]);
        let body = serde_json::to_string(&value)
            .unwrap_or_else(|_| "{\"status\":\"unknown\"}".to_string())
            .into_bytes();
        (
            if all_healthy { 200 } else { 503 },
            "application/json",
            body,
        )
    }

    fn shutdown(&self) {
        match self {
            Backend::Single(core) => core.shutdown(),
            Backend::Zoo(zoo) => zoo.shutdown(),
        }
    }
}

struct HttpShared<M: ServeModel> {
    backend: Backend<M>,
    stop: AtomicBool,
    options: HttpOptions,
    /// Ordinal fed to the chaos hook, one per inference request served.
    chaos_requests: AtomicU64,
}

/// The blocking HTTP server. Owns the [`ServeCore`] it fronts; dropping the
/// server (or calling [`HttpServer::shutdown`]) stops the acceptor, joins
/// connection threads, and shuts the core down.
pub struct HttpServer<M: ServeModel> {
    shared: Arc<HttpShared<M>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<M: ServeModel> HttpServer<M> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections on a dedicated thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn bind(core: ServeCore<M>, addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::bind_with_options(core, addr, HttpOptions::default())
    }

    /// Like [`HttpServer::bind`] with explicit transport limits, timeouts
    /// and chaos hooks.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn bind_with_options(
        core: ServeCore<M>,
        addr: impl ToSocketAddrs,
        options: HttpOptions,
    ) -> Result<Self, ServeError> {
        Self::bind_backend(Backend::Single(core), addr, options)
    }

    /// Binds a multi-model [`ModelZoo`]: requests are routed by their
    /// model id (absent → the zoo's default model), `/v1/stats` reports
    /// one section per model, and `/healthz` reports per-model health.
    /// Keep a [`ModelZoo`] clone to drive swaps and rollbacks while the
    /// server runs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn bind_zoo(zoo: ModelZoo<M>, addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::bind_zoo_with_options(zoo, addr, HttpOptions::default())
    }

    /// Like [`HttpServer::bind_zoo`] with explicit transport limits,
    /// timeouts and chaos hooks.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn bind_zoo_with_options(
        zoo: ModelZoo<M>,
        addr: impl ToSocketAddrs,
        options: HttpOptions,
    ) -> Result<Self, ServeError> {
        Self::bind_backend(Backend::Zoo(zoo), addr, options)
    }

    fn bind_backend(
        backend: Backend<M>,
        addr: impl ToSocketAddrs,
        options: HttpOptions,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            backend,
            stop: AtomicBool::new(false),
            options,
            chaos_requests: AtomicU64::new(0),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("snn-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        Ok(HttpServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the serving statistics, in the per-model registry
    /// shape (single-core servers report one `"default"` section).
    pub fn stats(&self) -> ZooStats {
        self.shared.backend.stats()
    }

    /// Stops accepting, joins the acceptor and all connection threads, and
    /// shuts down the serving core (draining in-flight requests).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        let handles =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.backend.shutdown();
    }
}

impl<M: ServeModel> Drop for HttpServer<M> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop<M: ServeModel>(
    listener: &TcpListener,
    shared: &Arc<HttpShared<M>>,
    connections: &Mutex<Vec<JoinHandle<()>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("snn-serve-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            })
        {
            let mut conns = connections.lock().expect("connection list poisoned");
            // Opportunistically reap finished threads so long-lived servers
            // do not accumulate handles.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

struct Request {
    method: String,
    path: String,
    content_type: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// Reads one HTTP/1.1 request. Returns `Ok(None)` on clean EOF or shutdown
/// while idle (no partial request buffered).
///
/// Hardened against hostile peers: the head and body each live under a
/// timeout measured from their first byte ([`ServeError::Timeout`] → 408,
/// slowloris protection) and a size cap checked before any allocation
/// ([`ServeError::TooLarge`] → 413).
fn read_request<M: ServeModel>(
    stream: &mut TcpStream,
    shared: &HttpShared<M>,
) -> Result<Option<Request>, ServeError> {
    let options = &shared.options;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the blank line ends the head. The timeout
    // clock starts at the first byte — an *idle* keep-alive connection may
    // sit as long as it likes, a *started* head must finish promptly.
    let mut head_started: Option<Instant> = None;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > options.max_head {
            return Err(ServeError::TooLarge(format!(
                "request head exceeds {} bytes",
                options.max_head
            )));
        }
        if let Some(started) = head_started {
            if started.elapsed() > options.header_timeout {
                return Err(ServeError::Timeout(format!(
                    "request head still incomplete after {:?}",
                    options.header_timeout
                )));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ServeError::protocol("connection closed mid-request"));
            }
            Ok(n) => {
                head_started.get_or_insert_with(Instant::now);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() && shared.stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::protocol("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ServeError::protocol(format!(
            "malformed request line: {request_line:?}"
        )));
    }
    let mut content_length: usize = 0;
    let mut content_type = String::new();
    // HTTP/1.1 defaults to keep-alive.
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    ServeError::protocol(format!("invalid Content-Length {value:?}"))
                })?;
            }
            "content-type" => content_type = value.to_ascii_lowercase(),
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_length > options.max_body {
        return Err(ServeError::TooLarge(format!(
            "Content-Length {content_length} exceeds the {}-byte ceiling",
            options.max_body
        )));
    }
    // Phase 2: the body is whatever followed the head plus further reads,
    // bounded by its own timeout.
    let body_started = Instant::now();
    let mut body = buf.split_off(head_end + 4);
    if body.len() > content_length {
        return Err(ServeError::protocol(
            "request body longer than Content-Length (pipelining is not supported)",
        ));
    }
    while body.len() < content_length {
        if body_started.elapsed() > options.body_timeout {
            return Err(ServeError::Timeout(format!(
                "request body still incomplete after {:?}",
                options.body_timeout
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ServeError::protocol("connection closed mid-body")),
            Ok(n) => {
                if body.len() + n > content_length {
                    return Err(ServeError::protocol(
                        "request body longer than Content-Length (pipelining is not supported)",
                    ));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(Request {
        method,
        path,
        content_type,
        keep_alive,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        408 => "408 Request Timeout",
        413 => "413 Content Too Large",
        422 => "422 Unprocessable Entity",
        503 => "503 Service Unavailable",
        504 => "504 Gateway Timeout",
        _ => "500 Internal Server Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<Duration>,
) -> Result<(), ServeError> {
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_line(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(hint) = retry_after {
        // Retry-After is whole seconds on the wire; round hints up so the
        // client never retries before the server said it could help.
        let secs = hint.as_secs() + u64::from(hint.subsec_nanos() > 0);
        head.push_str(&format!("Retry-After: {}\r\n", secs.max(1)));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(())
}

/// Maps a [`ServeError`] onto its HTTP status (see the module docs).
fn error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded { .. } | ServeError::ShuttingDown | ServeError::Degraded { .. } => {
            503
        }
        ServeError::DeadlineExceeded { .. } | ServeError::DeadlineUnmeetable { .. } => 504,
        ServeError::Protocol(_) => 400,
        ServeError::Model(_) | ServeError::ValidationFailed { .. } => 422,
        ServeError::UnknownModel { .. } => 404,
        ServeError::Timeout(_) => 408,
        ServeError::TooLarge(_) => 413,
        ServeError::ModelPanicked { .. } | ServeError::Io(_) => 500,
    }
}

fn error_body(e: &ServeError) -> Vec<u8> {
    let value = serde::Value::Obj(vec![(
        "error".to_string(),
        serde::Value::Str(e.to_string()),
    )]);
    serde_json::to_string(&value)
        .unwrap_or_else(|_| "{\"error\":\"serialization failure\"}".to_string())
        .into_bytes()
}

fn serve_connection<M: ServeModel>(
    mut stream: TcpStream,
    shared: &HttpShared<M>,
) -> Result<(), ServeError> {
    stream.set_write_timeout(Some(shared.options.write_timeout))?;
    loop {
        let request = match read_request(&mut stream, shared) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Best-effort error report; the connection is unusable after
                // a framing failure either way.
                let _ = write_response(
                    &mut stream,
                    error_status(&e),
                    "application/json",
                    &error_body(&e),
                    false,
                    e.retry_after(),
                );
                return Err(e);
            }
        };
        let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz" | "/v1/healthz") => {
                let (status, content_type, body) = shared.backend.health_response();
                write_response(&mut stream, status, content_type, &body, keep_alive, None)?;
            }
            ("GET", "/v1/stats") => {
                let body = serde_json::to_string(&shared.backend.stats())
                    .unwrap_or_else(|_| "{}".to_string())
                    .into_bytes();
                write_response(
                    &mut stream,
                    200,
                    "application/json",
                    &body,
                    keep_alive,
                    None,
                )?;
            }
            ("POST", "/v1/infer") => {
                if let Some(chaos) = &shared.options.chaos_drop {
                    let ordinal = shared.chaos_requests.fetch_add(1, Ordering::SeqCst);
                    if chaos(ordinal) {
                        // Simulated network failure: hang up without a
                        // response, exactly as a dying peer would.
                        return Ok(());
                    }
                }
                let binary = request.content_type.contains("octet-stream");
                let outcome = if binary {
                    protocol::decode_frame_request(&request.body)
                } else {
                    protocol::decode_json_request(&request.body)
                }
                .and_then(|req| shared.backend.infer_annotated(req));
                match outcome {
                    Ok((response, degraded)) => {
                        if binary {
                            let body =
                                protocol::encode_frame_response_with_health(&response, degraded);
                            write_response(
                                &mut stream,
                                200,
                                "application/octet-stream",
                                &body,
                                keep_alive,
                                None,
                            )?;
                        } else {
                            let body =
                                protocol::encode_json_response_with_health(&response, degraded)?;
                            write_response(
                                &mut stream,
                                200,
                                "application/json",
                                &body,
                                keep_alive,
                                None,
                            )?;
                        }
                    }
                    Err(e) => {
                        write_response(
                            &mut stream,
                            error_status(&e),
                            "application/json",
                            &error_body(&e),
                            keep_alive,
                            e.retry_after(),
                        )?;
                    }
                }
            }
            ("POST" | "GET", _) => {
                let e = ServeError::protocol(format!("no such route: {}", request.path));
                write_response(
                    &mut stream,
                    404,
                    "application/json",
                    &error_body(&e),
                    keep_alive,
                    None,
                )?;
            }
            _ => {
                let e = ServeError::protocol(format!("method {} not allowed", request.method));
                write_response(
                    &mut stream,
                    405,
                    "application/json",
                    &error_body(&e),
                    keep_alive,
                    None,
                )?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}
