//! A thin blocking HTTP/1.1 shim over [`ServeCore`], built directly on
//! `std::net::TcpListener` — no async runtime, per the repo's vendored-deps
//! policy. One acceptor thread, one thread per connection (keep-alive
//! supported); all batching, backpressure and statistics live in the
//! transport-agnostic core.
//!
//! # Routes
//!
//! | Route             | Body                                        | Status |
//! |-------------------|---------------------------------------------|--------|
//! | `GET /v1/healthz` | `ok`                                        | 200    |
//! | `GET /v1/stats`   | [`ServeStats`](crate::ServeStats) as JSON   | 200    |
//! | `POST /v1/infer`  | JSON request or binary frame (by `Content-Type`) | 200 |
//!
//! `POST /v1/infer` dispatches on `Content-Type`: `application/json` bodies
//! go through the JSON codec, `application/octet-stream` bodies through the
//! binary frame codec; the response mirrors the request format.
//!
//! # Status mapping
//!
//! | [`ServeError`] variant | HTTP status |
//! |------------------------|-------------|
//! | `Overloaded`           | 503 (with `Retry-After: 1`) — back off and retry |
//! | `ShuttingDown`         | 503         |
//! | `Protocol`             | 400         |
//! | `Model`                | 422         |
//! | `Io`                   | 500         |
//!
//! Error bodies are always JSON: `{"error": "<message>"}`.

use crate::core::{ServeCore, ServeModel};
use crate::error::ServeError;
use crate::protocol;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard ceiling on request head (request line + headers) bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Hard ceiling on request body bytes (comfortably above the largest legal
/// binary frame; hostile `Content-Length` values are refused before any
/// allocation).
const MAX_BODY: usize = 128 << 20;
/// Poll interval for idle keep-alive connections, so connection threads
/// notice shutdown promptly.
const IDLE_POLL: Duration = Duration::from_millis(100);

struct HttpShared<M: ServeModel> {
    core: ServeCore<M>,
    stop: AtomicBool,
}

/// The blocking HTTP server. Owns the [`ServeCore`] it fronts; dropping the
/// server (or calling [`HttpServer::shutdown`]) stops the acceptor, joins
/// connection threads, and shuts the core down.
pub struct HttpServer<M: ServeModel> {
    shared: Arc<HttpShared<M>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<M: ServeModel> HttpServer<M> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections on a dedicated thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn bind(core: ServeCore<M>, addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            core,
            stop: AtomicBool::new(false),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("snn-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        Ok(HttpServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the underlying core's statistics.
    pub fn stats(&self) -> crate::core::ServeStats {
        self.shared.core.stats()
    }

    /// Stops accepting, joins the acceptor and all connection threads, and
    /// shuts down the serving core (draining in-flight requests).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        let handles =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<M: ServeModel> Drop for HttpServer<M> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop<M: ServeModel>(
    listener: &TcpListener,
    shared: &Arc<HttpShared<M>>,
    connections: &Mutex<Vec<JoinHandle<()>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("snn-serve-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            })
        {
            let mut conns = connections.lock().expect("connection list poisoned");
            // Opportunistically reap finished threads so long-lived servers
            // do not accumulate handles.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

struct Request {
    method: String,
    path: String,
    content_type: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// Reads one HTTP/1.1 request. Returns `Ok(None)` on clean EOF or shutdown
/// while idle (no partial request buffered).
fn read_request<M: ServeModel>(
    stream: &mut TcpStream,
    shared: &HttpShared<M>,
) -> Result<Option<Request>, ServeError> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the blank line ends the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(ServeError::protocol(format!(
                "request head exceeds {MAX_HEAD} bytes"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ServeError::protocol("connection closed mid-request"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() && shared.stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::protocol("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ServeError::protocol(format!(
            "malformed request line: {request_line:?}"
        )));
    }
    let mut content_length: usize = 0;
    let mut content_type = String::new();
    // HTTP/1.1 defaults to keep-alive.
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    ServeError::protocol(format!("invalid Content-Length {value:?}"))
                })?;
            }
            "content-type" => content_type = value.to_ascii_lowercase(),
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Err(ServeError::protocol(format!(
            "Content-Length {content_length} exceeds the {MAX_BODY}-byte ceiling"
        )));
    }
    // Phase 2: the body is whatever followed the head plus further reads.
    let mut body = buf.split_off(head_end + 4);
    if body.len() > content_length {
        return Err(ServeError::protocol(
            "request body longer than Content-Length (pipelining is not supported)",
        ));
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ServeError::protocol("connection closed mid-body")),
            Ok(n) => {
                if body.len() + n > content_length {
                    return Err(ServeError::protocol(
                        "request body longer than Content-Length (pipelining is not supported)",
                    ));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(Request {
        method,
        path,
        content_type,
        keep_alive,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        422 => "422 Unprocessable Entity",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), ServeError> {
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_line(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if status == 503 {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(())
}

/// Maps a [`ServeError`] onto its HTTP status (see the module docs).
fn error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded { .. } | ServeError::ShuttingDown => 503,
        ServeError::Protocol(_) => 400,
        ServeError::Model(_) => 422,
        ServeError::Io(_) => 500,
    }
}

fn error_body(e: &ServeError) -> Vec<u8> {
    let value = serde::Value::Obj(vec![(
        "error".to_string(),
        serde::Value::Str(e.to_string()),
    )]);
    serde_json::to_string(&value)
        .unwrap_or_else(|_| "{\"error\":\"serialization failure\"}".to_string())
        .into_bytes()
}

fn serve_connection<M: ServeModel>(
    mut stream: TcpStream,
    shared: &HttpShared<M>,
) -> Result<(), ServeError> {
    loop {
        let request = match read_request(&mut stream, shared) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Best-effort error report; the connection is unusable after
                // a framing failure either way.
                let _ = write_response(
                    &mut stream,
                    error_status(&e),
                    "application/json",
                    &error_body(&e),
                    false,
                );
                return Err(e);
            }
        };
        let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/v1/healthz") => {
                write_response(&mut stream, 200, "text/plain", b"ok", keep_alive)?;
            }
            ("GET", "/v1/stats") => {
                let body = serde_json::to_string(&shared.core.stats())
                    .unwrap_or_else(|_| "{}".to_string())
                    .into_bytes();
                write_response(&mut stream, 200, "application/json", &body, keep_alive)?;
            }
            ("POST", "/v1/infer") => {
                let binary = request.content_type.contains("octet-stream");
                let outcome = if binary {
                    protocol::decode_frame_request(&request.body)
                } else {
                    protocol::decode_json_request(&request.body)
                }
                .and_then(|req| shared.core.infer(req));
                match outcome {
                    Ok(response) => {
                        if binary {
                            let body = protocol::encode_frame_response(&response);
                            write_response(
                                &mut stream,
                                200,
                                "application/octet-stream",
                                &body,
                                keep_alive,
                            )?;
                        } else {
                            let body = protocol::encode_json_response(&response)?;
                            write_response(
                                &mut stream,
                                200,
                                "application/json",
                                &body,
                                keep_alive,
                            )?;
                        }
                    }
                    Err(e) => {
                        write_response(
                            &mut stream,
                            error_status(&e),
                            "application/json",
                            &error_body(&e),
                            keep_alive,
                        )?;
                    }
                }
            }
            ("POST" | "GET", _) => {
                let e = ServeError::protocol(format!("no such route: {}", request.path));
                write_response(
                    &mut stream,
                    404,
                    "application/json",
                    &error_body(&e),
                    keep_alive,
                )?;
            }
            _ => {
                let e = ServeError::protocol(format!("method {} not allowed", request.method));
                write_response(
                    &mut stream,
                    405,
                    "application/json",
                    &error_body(&e),
                    keep_alive,
                )?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}
