//! Deadline semantics: expired requests are shed at dequeue *before* any
//! inference is spent on them, each with exactly one typed
//! [`ServeError::DeadlineExceeded`]; admission control pre-rejects deadlines
//! the queue-wait estimate already exceeds; `default_timeout` applies the
//! policy to requests that carry no explicit deadline.

use proptest::prelude::*;
use snn_core::tensor::Tensor;
use snn_core::SnnError;
use snn_serve::{
    InferenceRequest, InferenceResult, ModelRunner, ResponseHandle, ServeConfig, ServeCore,
    ServeError, ServeModel,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sleeps `delay` per batch and records every seed the model actually ran.
struct RecordingModel {
    delay: Duration,
    executed: Arc<Mutex<HashSet<u64>>>,
}

struct RecordingRunner {
    delay: Duration,
    executed: Arc<Mutex<HashSet<u64>>>,
}

impl ModelRunner for RecordingRunner {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>> {
        std::thread::sleep(self.delay);
        let mut executed = self.executed.lock().unwrap();
        requests
            .into_iter()
            .map(|r| {
                executed.insert(r.seed);
                Ok(InferenceResult::from_logits(vec![r.seed as f32, 0.0]))
            })
            .collect()
    }
}

impl ServeModel for RecordingModel {
    type Runner = RecordingRunner;

    fn runner(&self) -> RecordingRunner {
        RecordingRunner {
            delay: self.delay,
            executed: Arc::clone(&self.executed),
        }
    }
}

fn recording_model(delay_ms: u64) -> (RecordingModel, Arc<Mutex<HashSet<u64>>>) {
    let executed = Arc::new(Mutex::new(HashSet::new()));
    (
        RecordingModel {
            delay: Duration::from_millis(delay_ms),
            executed: Arc::clone(&executed),
        },
        executed,
    )
}

fn request(i: u64) -> InferenceRequest {
    InferenceRequest::seeded(Tensor::from_vec(vec![i as f32, 1.0], &[2]).unwrap(), i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core contract, across (deadline, queue depth, batch budget):
    /// a request whose deadline expires while queued is never executed by
    /// the model and resolves with exactly one `DeadlineExceeded` carrying
    /// its measured queue wait; requests without deadlines always execute.
    #[test]
    fn expired_requests_never_execute(
        deadline_ms in 1_u64..=3,
        burst in 1_usize..=12,
        max_batch in 1_usize..=8,
    ) {
        let plug_ms = 25;
        let (model, executed) = recording_model(plug_ms);
        let core = ServeCore::start(
            model,
            ServeConfig {
                max_batch,
                max_delay: Duration::from_millis(1),
                queue_capacity: 64,
                workers: Some(1),
                ..ServeConfig::default()
            },
        )
        .unwrap();

        // Plug the single worker with a deadline-free request, and give it
        // time to be popped so the burst below cannot share its batch.
        let plug = core.submit(request(0)).unwrap();
        std::thread::sleep(Duration::from_millis(5));

        // The burst queues behind the 25 ms plug batch: deadlined entries
        // (budget <= 3 ms) must expire while waiting; deadline-free ones
        // must all execute.
        let handles: Vec<(u64, bool, ResponseHandle)> = (1..=burst as u64)
            .map(|i| {
                let deadlined = i % 2 == 1;
                let req = if deadlined {
                    request(i).with_deadline(Duration::from_millis(deadline_ms))
                } else {
                    request(i)
                };
                (i, deadlined, core.submit(req).unwrap())
            })
            .collect();

        plug.wait().unwrap();
        let mut expired = 0_u64;
        for (seed, deadlined, handle) in handles {
            let outcome = handle
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("request {seed} hung"));
            if deadlined {
                match outcome {
                    Err(ServeError::DeadlineExceeded { queued_us }) => {
                        expired += 1;
                        // It waited at least its whole budget.
                        prop_assert!(
                            queued_us >= deadline_ms * 1000,
                            "queued_us {queued_us} below the {deadline_ms} ms budget"
                        );
                        prop_assert!(
                            !executed.lock().unwrap().contains(&seed),
                            "expired request {seed} must never reach the model"
                        );
                    }
                    other => panic!(
                        "deadlined request {seed} queued behind a {plug_ms} ms batch \
                         must expire, got {other:?}"
                    ),
                }
            } else {
                let response = outcome.unwrap_or_else(|e| {
                    panic!("deadline-free request {seed} must execute, got {e:?}")
                });
                prop_assert_eq!(response.result.logits[0], seed as f32);
                prop_assert!(executed.lock().unwrap().contains(&seed));
            }
        }
        let stats = core.stats();
        prop_assert_eq!(stats.deadline_expired, expired);
        core.shutdown();
    }
}

/// Admission control: once the service-time histogram is warm and the queue
/// is deep, a deadline the wait estimate already exceeds is rejected at
/// submit — with a computed retry hint — instead of being queued to die.
#[test]
fn hopeless_deadlines_are_rejected_at_submit() {
    let (model, _executed) = recording_model(5);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 1, // one request per 5 ms batch: service p50 ~ 5000 us
            max_delay: Duration::from_millis(1),
            queue_capacity: 64,
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Warm the estimator past its 16-sample threshold.
    let warmup: Vec<ResponseHandle> = (0..20).map(|i| core.submit(request(i)).unwrap()).collect();
    for handle in warmup {
        handle.wait().unwrap();
    }

    // Build queue depth with deadline-free requests, then ask for 1 ms.
    let backlog: Vec<ResponseHandle> = (100..110)
        .map(|i| core.submit(request(i)).unwrap())
        .collect();
    let verdict = core.submit(request(999).with_deadline(Duration::from_millis(1)));
    match verdict {
        Err(
            err @ ServeError::DeadlineUnmeetable {
                estimated_us,
                deadline_us,
            },
        ) => {
            assert_eq!(deadline_us, 1000);
            assert!(
                estimated_us > deadline_us,
                "rejection must carry an estimate above the deadline \
                 ({estimated_us} vs {deadline_us})"
            );
            let hint = err
                .retry_after()
                .expect("unmeetable deadlines carry a retry hint");
            assert!(hint >= Duration::from_millis(1));
        }
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }
    assert_eq!(core.stats().deadline_rejected, 1);

    // A generous deadline is still admitted on the same deep queue.
    let admitted = core
        .submit(request(1000).with_deadline(Duration::from_secs(30)))
        .expect("generous deadline admitted");
    for handle in backlog {
        handle.wait().unwrap();
    }
    admitted.wait().expect("admitted request completes");
    core.shutdown();
}

/// `ServeConfig::default_timeout` gives every bare request a deadline; an
/// explicit per-request deadline still wins.
#[test]
fn default_timeout_applies_to_bare_requests() {
    let (model, executed) = recording_model(25);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 64,
            workers: Some(1),
            default_timeout: Some(Duration::from_millis(2)),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let plug = core.submit(request(0).with_deadline(Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(5));

    // Bare request: inherits the 2 ms default and expires behind the plug.
    let bare = core.submit(request(1)).unwrap();
    // Explicit deadline overrides the default: long enough to survive.
    let patient = core
        .submit(request(2).with_deadline(Duration::from_secs(30)))
        .unwrap();

    plug.unwrap().wait().unwrap();
    match bare.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("bare request must inherit default_timeout, got {other:?}"),
    }
    assert!(!executed.lock().unwrap().contains(&1));
    patient
        .wait()
        .expect("explicit deadline overrides the default");
    assert!(executed.lock().unwrap().contains(&2));
    assert_eq!(core.stats().deadline_expired, 1);
    core.shutdown();
}
