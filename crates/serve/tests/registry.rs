//! The registry's lifecycle guarantees, proven against hostile schedules:
//! named routing with typed 404s, golden-probe validation that keeps bad
//! candidates out without disturbing the incumbent, epoch-pinned hot swaps
//! under concurrent load (every accepted request resolves exactly once,
//! bitwise-equal to *some* published version — never a torn blend), and
//! spike-rate drift detection driving the per-model health state machine
//! under both the annotate and shed policies.

use snn_core::spike::SpikeRecord;
use snn_core::stats::DriftConfig;
use snn_core::tensor::Tensor;
use snn_core::SnnError;
use snn_serve::{
    DriftPolicy, InferenceRequest, InferenceResult, ModelHealth, ModelRunner, ModelZoo, ProbeSpec,
    ServeConfig, ServeError, ServeModel, ZooConfig,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a stub (mis)behaves — the candidate zoo for validation tests.
#[derive(Clone, Copy)]
enum Mode {
    Normal,
    NonFinite,
    WrongClasses,
    Panics,
}

/// A deterministic stub model: logits are a pure function of
/// `(image, seed, scale)`, and the spike record's rates are proportional
/// to the input magnitude — so shifting the traffic distribution shifts
/// the per-layer spike rates the drift tracker sees, exactly like a real
/// workload drifting off its calibration set.
#[derive(Clone)]
struct Stub {
    scale: f32,
    mode: Mode,
}

impl Stub {
    fn normal(scale: f32) -> Self {
        Stub {
            scale,
            mode: Mode::Normal,
        }
    }
}

fn stub_logits(sum: f32, seed: u64, scale: f32) -> Vec<f32> {
    vec![sum * scale, sum + (seed % 1024) as f32]
}

struct StubRunner {
    scale: f32,
    mode: Mode,
}

impl ModelRunner for StubRunner {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>> {
        requests
            .into_iter()
            .map(|r| {
                if matches!(self.mode, Mode::Panics) {
                    panic!("defective candidate");
                }
                let sum: f32 = r.image.as_slice().iter().sum();
                let logits = match self.mode {
                    Mode::NonFinite => vec![f32::NAN, 0.0],
                    Mode::WrongClasses => vec![sum, sum, sum],
                    _ => stub_logits(sum, r.seed, self.scale),
                };
                let mut result = InferenceResult::from_logits(logits);
                let spikes = (sum.abs() * 100.0) as u64;
                let mut record = SpikeRecord::new(2);
                record.push_layer("conv1", spikes, spikes, 1000);
                record.push_layer("fc", spikes, spikes / 2 + 1, 500);
                result.record = record;
                Ok(result)
            })
            .collect()
    }
}

impl ServeModel for Stub {
    type Runner = StubRunner;

    fn runner(&self) -> StubRunner {
        StubRunner {
            scale: self.scale,
            mode: self.mode,
        }
    }
}

fn image(v: f32) -> Tensor {
    Tensor::from_vec(vec![v; 4], &[4]).unwrap()
}

fn probe() -> ProbeSpec {
    ProbeSpec::sanity(image(0.25), 7, 2)
}

fn config() -> ZooConfig {
    ZooConfig {
        serve: ServeConfig {
            workers: Some(2),
            queue_capacity: 256,
            ..ServeConfig::default()
        },
        probes: vec![probe()],
        ..ZooConfig::default()
    }
}

/// Small drift window so tests flip the health state in tens of requests.
fn drift_config() -> DriftConfig {
    DriftConfig {
        calibration: 8,
        window: 16,
        min_window: 8,
        threshold: 0.5,
    }
}

#[test]
fn routes_by_name_with_typed_unknown_model() {
    let zoo = ModelZoo::new();
    zoo.register("alpha", "v1", Stub::normal(1.0), config())
        .unwrap();
    zoo.register("beta", "v1", Stub::normal(2.0), config())
        .unwrap();
    assert_eq!(zoo.models(), vec!["alpha".to_string(), "beta".to_string()]);
    assert_eq!(zoo.default_model().as_deref(), Some("alpha"));

    let sum = 4.0 * 0.5;
    let a = zoo
        .infer(InferenceRequest::seeded(image(0.5), 3).with_model("alpha"))
        .unwrap();
    assert_eq!(a.result.logits, stub_logits(sum, 3, 1.0));
    let b = zoo
        .infer(InferenceRequest::seeded(image(0.5), 3).with_model("beta"))
        .unwrap();
    assert_eq!(b.result.logits, stub_logits(sum, 3, 2.0));
    // No model id → the first registered model.
    let d = zoo.infer(InferenceRequest::seeded(image(0.5), 3)).unwrap();
    assert_eq!(d.result.logits, a.result.logits);

    match zoo.infer(InferenceRequest::seeded(image(0.5), 3).with_model("gamma")) {
        Err(ServeError::UnknownModel { model }) => assert_eq!(model, "gamma"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    // Duplicate names are refused without disturbing the original.
    assert!(zoo
        .register("alpha", "v9", Stub::normal(9.0), config())
        .is_err());
    assert_eq!(zoo.models().len(), 2);
    zoo.shutdown();
}

/// The hot-reload safety core: a candidate failing validation — NaN
/// logits, wrong class count, a panic, or a golden mismatch — never
/// serves a request, and the incumbent's results stay bitwise unchanged
/// through every rejected swap.
#[test]
fn failed_validation_never_serves_and_never_disturbs_incumbent() {
    let zoo = ModelZoo::new();
    zoo.register("m", "v1", Stub::normal(1.0), config())
        .unwrap();
    let want = zoo
        .infer(InferenceRequest::seeded(image(0.75), 11))
        .unwrap()
        .result
        .logits;

    for (version, mode) in [
        ("nan", Mode::NonFinite),
        ("ragged", Mode::WrongClasses),
        ("panicky", Mode::Panics),
    ] {
        let candidate = Stub { scale: 1.0, mode };
        match zoo.swap("m", version, candidate) {
            Err(ServeError::ValidationFailed { version: v, .. }) => assert_eq!(v, version),
            other => panic!("candidate {version} must fail validation, got {other:?}"),
        }
        // The incumbent keeps serving, bitwise unchanged.
        let got = zoo
            .infer(InferenceRequest::seeded(image(0.75), 11))
            .unwrap();
        assert_eq!(got.result.logits, want);
    }

    let stats = zoo.stats();
    let m = &stats.models["m"];
    assert_eq!(m.version, "v1");
    assert_eq!(m.validation_failures, 3);
    assert_eq!(m.swaps, 0);
    zoo.shutdown();
}

/// Golden probes pin the *exact* outputs: after recording goldens from a
/// known-good version, a candidate whose logits differ bitwise is
/// refused; a bit-identical reload passes.
#[test]
fn golden_probes_require_bitwise_reproduction() {
    let zoo = ModelZoo::new();
    zoo.register("m", "v1", Stub::normal(1.0), config())
        .unwrap();
    zoo.record_golden("m").unwrap();

    match zoo.swap("m", "v2-different", Stub::normal(2.0)) {
        Err(ServeError::ValidationFailed { reason, .. }) => {
            assert!(reason.contains("golden"), "got: {reason}");
        }
        other => panic!("diverging candidate must fail golden probes, got {other:?}"),
    }
    // A bit-identical reload of the same weights passes the same probes.
    zoo.swap("m", "v2-same", Stub::normal(1.0)).unwrap();
    assert_eq!(zoo.stats().models["m"].version, "v2-same");
    assert_eq!(zoo.rollback("m").unwrap(), "v1");
    zoo.shutdown();
}

/// The chaos suite: four producers hammer the zoo while the main thread
/// runs repeated validated swap / rollback cycles between scales 1.0 and
/// 3.0. Every accepted request must resolve exactly once with a typed
/// outcome, and every successful response must be bitwise-equal to what a
/// sequential run on *one* of the published versions produces — a torn or
/// blended result fails the assertion.
#[test]
fn hot_swap_under_concurrent_load_is_exactly_once_and_never_torn() {
    let zoo = ModelZoo::new();
    zoo.register("m", "v1", Stub::normal(1.0), config())
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let accepted = Arc::new(AtomicUsize::new(0));
    let succeeded = Arc::new(AtomicUsize::new(0));
    let typed_errors = Arc::new(AtomicUsize::new(0));
    let mut producers = Vec::new();
    for t in 0..4u64 {
        let zoo = zoo.clone();
        let stop = Arc::clone(&stop);
        let accepted = Arc::clone(&accepted);
        let succeeded = Arc::clone(&succeeded);
        let typed_errors = Arc::clone(&typed_errors);
        producers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = ((t * 31 + i) % 17) as f32 * 0.25 + 0.5;
                let seed = t * 1_000_000 + i;
                match zoo.submit(InferenceRequest::seeded(image(v), seed)) {
                    Ok(handle) => {
                        accepted.fetch_add(1, Ordering::Relaxed);
                        match handle.wait() {
                            Ok(response) => {
                                let sum = v * 4.0;
                                let on_v1 = stub_logits(sum, seed, 1.0);
                                let on_v2 = stub_logits(sum, seed, 3.0);
                                assert!(
                                    response.result.logits == on_v1
                                        || response.result.logits == on_v2,
                                    "torn result: {:?} is neither version's output",
                                    response.result.logits
                                );
                                succeeded.fetch_add(1, Ordering::Relaxed);
                            }
                            // Any *typed* failure is an acceptable outcome
                            // under chaos; a hang or panic is not.
                            Err(_) => {
                                typed_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Err(ServeError::Overloaded { .. }) => {}
                    Err(e) => panic!("unexpected submit error: {e:?}"),
                }
                i += 1;
            }
        }));
    }

    for cycle in 0..6 {
        zoo.swap("m", format!("v2-{cycle}"), Stub::normal(3.0))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(zoo.rollback("m").unwrap(), "v1");
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for p in producers {
        p.join().expect("producer panicked");
    }

    // Exactly once: every accepted request produced one typed outcome.
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        succeeded.load(Ordering::Relaxed) + typed_errors.load(Ordering::Relaxed)
    );
    assert!(
        succeeded.load(Ordering::Relaxed) > 0,
        "no request succeeded"
    );
    let stats = zoo.stats();
    assert_eq!(stats.models["m"].swaps, 6);
    assert_eq!(stats.models["m"].rollbacks, 6);
    assert_eq!(stats.models["m"].version, "v1");
    zoo.shutdown();
}

/// Drift lifecycle under the annotate policy: stationary traffic stays
/// Healthy, a 16× spike-rate shift flips the model to Degraded (naming
/// the diverging layer and its KL) within one tracker window, responses
/// get the degraded annotation, and a rollback clears the flag by
/// recalibrating against current traffic.
#[test]
fn drift_flags_degraded_within_window_and_rollback_clears() {
    let zoo = ModelZoo::new();
    let cfg = ZooConfig {
        drift: drift_config(),
        drift_policy: DriftPolicy::Annotate,
        ..config()
    };
    zoo.register("m", "v1", Stub::normal(1.0), cfg).unwrap();
    // Publish v2 so a rollback target exists; the tracker recalibrates.
    zoo.swap("m", "v2", Stub::normal(1.0)).unwrap();

    // Calibration + window fill on stationary traffic (sum = 1 → ~100
    // spikes/layer): Healthy throughout.
    for i in 0..24u64 {
        let (response, degraded) = zoo
            .infer_annotated(InferenceRequest::seeded(image(0.25), i))
            .unwrap();
        assert!(!degraded);
        assert!(response.result.logits[0].is_finite());
    }
    assert_eq!(zoo.health("m").unwrap(), ModelHealth::Healthy);
    assert!(zoo.stats().models["m"].drift_calibrated);

    // Inject the shift: 16× the calibrated spike rate. One full window of
    // shifted traffic must flip the health state.
    let mut flipped = false;
    for i in 0..16u64 {
        let (_, degraded) = zoo
            .infer_annotated(InferenceRequest::seeded(image(4.0), 1000 + i))
            .unwrap();
        flipped |= degraded;
    }
    assert!(flipped, "degraded annotation never appeared");
    match zoo.health("m").unwrap() {
        ModelHealth::Degraded { kl, layer } => {
            assert!(kl > 0.5, "kl = {kl}");
            assert!(layer == "conv1" || layer == "fc", "layer = {layer}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    let stats = zoo.stats();
    assert_eq!(stats.models["m"].health, "degraded");
    assert!(stats.models["m"].drift_kl > 0.5);

    // Rollback restores v1 and resets the tracker: the flag clears (the
    // restored version recalibrates against whatever traffic is current).
    assert_eq!(zoo.rollback("m").unwrap(), "v1");
    assert_eq!(zoo.health("m").unwrap(), ModelHealth::Healthy);
    assert!(!zoo.stats().models["m"].drift_calibrated);
    zoo.shutdown();
}

/// Under the shed policy a Degraded model refuses new work with the
/// retryable typed error instead of annotating responses.
#[test]
fn shed_policy_rejects_degraded_models_with_retryable_error() {
    let zoo = ModelZoo::new();
    let cfg = ZooConfig {
        drift: drift_config(),
        drift_policy: DriftPolicy::Shed,
        ..config()
    };
    zoo.register("m", "v1", Stub::normal(1.0), cfg).unwrap();

    for i in 0..24u64 {
        zoo.infer(InferenceRequest::seeded(image(0.25), i)).unwrap();
    }
    for i in 0..16u64 {
        // Keep pushing shifted traffic until the tracker flips; under the
        // shed policy the *next* submission is then refused.
        if zoo
            .infer(InferenceRequest::seeded(image(4.0), 1000 + i))
            .is_err()
        {
            break;
        }
    }
    match zoo.infer(InferenceRequest::seeded(image(4.0), 9999)) {
        Err(e @ ServeError::Degraded { .. }) => {
            assert!(e.is_retryable());
            assert!(e.retry_after().is_some());
        }
        other => panic!("expected Degraded shed, got {other:?}"),
    }
    zoo.shutdown();
}
