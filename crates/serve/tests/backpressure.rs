//! Backpressure integration: a deliberately slow model stub, a burst of
//! submissions beyond the queue's high-water mark, and the contract that
//! (a) excess submissions are shed immediately with `Overloaded`, (b) every
//! accepted request still completes, and (c) the observed queue depth never
//! exceeds the configured bound.

use snn_core::tensor::Tensor;
use snn_core::SnnError;
use snn_serve::{
    InferenceRequest, InferenceResult, ModelRunner, ResponseHandle, ServeConfig, ServeCore,
    ServeError, ServeModel,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A model whose every batch takes `delay`; counts batches and requests.
struct SlowModel {
    delay: Duration,
    batches: Arc<AtomicUsize>,
    served: Arc<AtomicUsize>,
}

struct SlowRunner {
    delay: Duration,
    batches: Arc<AtomicUsize>,
    served: Arc<AtomicUsize>,
}

impl ModelRunner for SlowRunner {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>> {
        std::thread::sleep(self.delay);
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.served.fetch_add(requests.len(), Ordering::SeqCst);
        requests
            .into_iter()
            .map(|r| {
                let sum: f32 = r.image.as_slice().iter().sum();
                Ok(InferenceResult::from_logits(vec![sum, r.seed as f32]))
            })
            .collect()
    }
}

impl ServeModel for SlowModel {
    type Runner = SlowRunner;

    fn runner(&self) -> SlowRunner {
        SlowRunner {
            delay: self.delay,
            batches: Arc::clone(&self.batches),
            served: Arc::clone(&self.served),
        }
    }
}

fn slow_model(delay_ms: u64) -> (SlowModel, Arc<AtomicUsize>, Arc<AtomicUsize>) {
    let batches = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    (
        SlowModel {
            delay: Duration::from_millis(delay_ms),
            batches: Arc::clone(&batches),
            served: Arc::clone(&served),
        },
        batches,
        served,
    )
}

fn request(i: usize) -> InferenceRequest {
    InferenceRequest::seeded(
        Tensor::from_vec(vec![i as f32, 1.0], &[2]).unwrap(),
        i as u64,
    )
}

#[test]
fn burst_sheds_overloaded_while_inflight_completes() {
    let (model, _batches, served) = slow_model(30);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 8,
            high_water: Some(6),
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Burst far past the high-water mark, faster than the 30 ms batches can
    // drain. The worker may have already popped up to one batch, so the
    // number of accepted requests is bounded by high_water + max_batch.
    let mut handles: Vec<ResponseHandle> = Vec::new();
    let mut rejections = 0usize;
    for i in 0..40 {
        match core.submit(request(i)) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::Overloaded { depth, limit }) => {
                assert_eq!(limit, 6);
                assert!(depth >= 6, "shed below the high-water mark: {depth}");
                rejections += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        rejections >= 40 - (6 + 4),
        "a 40-deep burst into a 6-high-water queue must shed (got {rejections} rejections)"
    );
    assert!(!handles.is_empty(), "some requests must be accepted");

    // Every accepted request completes, with its own result.
    let accepted = handles.len();
    for handle in handles {
        let response = handle.wait().expect("accepted request completes");
        assert_eq!(response.result.logits.len(), 2);
        assert!(response.batch_size >= 1 && response.batch_size <= 4);
    }
    assert_eq!(served.load(Ordering::SeqCst), accepted);

    let stats = core.stats();
    assert_eq!(stats.submitted as usize, accepted);
    assert_eq!(stats.rejected as usize, rejections);
    assert_eq!(stats.completed as usize, accepted);
    // The hard bound holds at all times: peak depth never exceeds high_water
    // (which itself never exceeds capacity).
    assert!(
        stats.peak_queue_depth <= 6,
        "peak depth {} exceeded the high-water mark",
        stats.peak_queue_depth
    );
    core.shutdown();
}

#[test]
fn recovered_queue_accepts_again() {
    let (model, _batches, _served) = slow_model(5);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            queue_capacity: 2,
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Fill to the brim; at least one of a fast triple must be shed.
    let h0 = core.submit(request(0));
    let h1 = core.submit(request(1));
    let h2 = core.submit(request(2));
    let h3 = core.submit(request(3));
    let early: Vec<ResponseHandle> = [h0, h1, h2, h3].into_iter().flatten().collect();
    for handle in early {
        handle.wait().expect("early requests complete");
    }

    // After the queue drains, submissions are accepted again.
    let response = core.infer(request(9)).expect("recovered queue accepts");
    assert_eq!(response.result.logits[1], 9.0);
    core.shutdown();
}

#[test]
fn batches_coalesce_under_load() {
    let (model, batches, served) = slow_model(10);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 64,
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // While the worker sleeps through batch 1, the next 16 submissions pile
    // up and must coalesce into far fewer batches than requests.
    let handles: Vec<ResponseHandle> = (0..17)
        .map(|i| core.submit(request(i)).expect("queue holds the burst"))
        .collect();
    for handle in handles {
        handle.wait().expect("completes");
    }
    assert_eq!(served.load(Ordering::SeqCst), 17);
    let executed = batches.load(Ordering::SeqCst);
    assert!(
        executed < 17,
        "17 queued requests must coalesce into fewer than 17 batches (got {executed})"
    );
    let stats = core.stats();
    assert!(
        stats.peak_batch >= 2,
        "coalescing never produced a batch > 1"
    );
    assert!(stats.mean_batch > 1.0);
    core.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests() {
    let (model, _batches, served) = slow_model(10);
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 32,
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handles: Vec<ResponseHandle> = (0..10)
        .map(|i| core.submit(request(i)).expect("accepted"))
        .collect();
    // Shut down with work still queued: every accepted request must still be
    // answered (drain-then-stop), not dropped.
    core.shutdown();
    for handle in handles {
        handle.wait().expect("drained during shutdown");
    }
    assert_eq!(served.load(Ordering::SeqCst), 10);
}

#[test]
fn invalid_configs_are_rejected_at_start() {
    for bad in [
        ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            queue_capacity: 8,
            high_water: Some(9),
            ..ServeConfig::default()
        },
        ServeConfig {
            high_water: Some(0),
            ..ServeConfig::default()
        },
    ] {
        let (model, _, _) = slow_model(1);
        match ServeCore::start(model, bad.clone()) {
            Err(ServeError::Model(_)) => {}
            Err(e) => panic!("config {bad:?} must be a config error, got {e:?}"),
            Ok(_) => panic!("config {bad:?} must be rejected"),
        }
    }
}

#[test]
fn per_request_failures_do_not_poison_neighbours() {
    /// Fails exactly the requests whose seed is odd.
    struct PickyModel;
    struct PickyRunner;
    impl ModelRunner for PickyRunner {
        fn run_batch(
            &mut self,
            requests: Vec<InferenceRequest>,
        ) -> Vec<Result<InferenceResult, SnnError>> {
            requests
                .into_iter()
                .map(|r| {
                    if r.seed % 2 == 1 {
                        Err(SnnError::config("stub", "odd seeds are rejected"))
                    } else {
                        Ok(InferenceResult::from_logits(vec![r.seed as f32]))
                    }
                })
                .collect()
        }
    }
    impl ServeModel for PickyModel {
        type Runner = PickyRunner;
        fn runner(&self) -> PickyRunner {
            PickyRunner
        }
    }

    let core = ServeCore::start(
        PickyModel,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(5),
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handles: Vec<(usize, ResponseHandle)> = (0..8)
        .map(|i| (i, core.submit(request(i)).expect("accepted")))
        .collect();
    for (i, handle) in handles {
        match handle.wait() {
            Ok(response) => {
                assert_eq!(i % 2, 0, "odd request {i} should have failed");
                assert_eq!(response.result.logits[0], i as f32);
            }
            Err(ServeError::Model(e)) => {
                assert_eq!(i % 2, 1, "even request {i} should have succeeded");
                assert!(e.to_string().contains("odd seeds"));
            }
            Err(e) => panic!("unexpected error for request {i}: {e}"),
        }
    }
    let stats = core.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.model_errors, 4);
    core.shutdown();
}
