//! Chaos suite: the serving core under every injected fault mix, across a
//! seed matrix. The invariants, whatever the faults do:
//!
//! 1. no panic ever escapes `ServeCore` (a failing model must not take the
//!    test thread, the acceptor, or sibling requests down),
//! 2. every accepted request gets exactly one *typed* response — no hangs,
//!    no silent drops,
//! 3. surviving `Ok` results are bitwise-identical to what the bare model
//!    computes for the same request (fault injection perturbs scheduling,
//!    never arithmetic),
//! 4. worker deaths are observed in `ServeStats` (`model_panics`,
//!    `worker_restarts`) and the pool keeps serving afterwards,
//! 5. shutdown always drains: handles in flight at shutdown still resolve.

use snn_core::tensor::Tensor;
use snn_core::SnnError;
use snn_serve::{
    Fault, FaultPlan, FaultyModel, InferenceRequest, InferenceResult, ModelRunner, ResponseHandle,
    ServeConfig, ServeCore, ServeError, ServeModel,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The seed matrix every fault mix runs under (CI runs the whole suite with
/// `SNN_THREADS=4`).
const PLAN_SEEDS: [u64; 4] = [1, 7, 42, 1337];

/// A deterministic base model: logits are a pure function of (image, seed),
/// so the sequential reference is exact. Records every executed seed.
#[derive(Clone)]
struct BaseModel {
    executed: Arc<Mutex<HashSet<u64>>>,
}

struct BaseRunner {
    executed: Arc<Mutex<HashSet<u64>>>,
}

fn base_logits(request: &InferenceRequest) -> Vec<f32> {
    let sum: f32 = request.image.as_slice().iter().sum();
    let mixed = (request.seed.wrapping_mul(0x9E37_79B9) % 1009) as f32;
    vec![sum + mixed, sum * 0.5 - mixed, mixed - sum]
}

impl ModelRunner for BaseRunner {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<InferenceResult, SnnError>> {
        let mut executed = self.executed.lock().unwrap();
        requests
            .into_iter()
            .map(|r| {
                executed.insert(r.seed);
                Ok(InferenceResult::from_logits(base_logits(&r)))
            })
            .collect()
    }
}

impl ServeModel for BaseModel {
    type Runner = BaseRunner;

    fn runner(&self) -> BaseRunner {
        BaseRunner {
            executed: Arc::clone(&self.executed),
        }
    }
}

fn request(i: u64) -> InferenceRequest {
    InferenceRequest::seeded(
        Tensor::from_vec(vec![i as f32 * 0.25, 1.0 - i as f32 * 0.125], &[2]).unwrap(),
        i,
    )
}

/// Drives one chaos round and checks invariants 1–4.
fn chaos_round(plan: FaultPlan, workers: usize, n_requests: u64) {
    let executed = Arc::new(Mutex::new(HashSet::new()));
    let model = FaultyModel::new(
        BaseModel {
            executed: Arc::clone(&executed),
        },
        plan,
    );
    let core = ServeCore::start(
        model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 512,
            workers: Some(workers),
            restart_backoff: Duration::from_micros(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let handles: Vec<(u64, ResponseHandle)> = (0..n_requests)
        .map(|i| (i, core.submit(request(i)).expect("queue sized for burst")))
        .collect();

    let mut panicked_batches = 0u64;
    for (seed, handle) in handles {
        // Invariant 2: exactly one typed response, within bounded time.
        let outcome = handle
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("request {seed} hung: no response within 30s"));
        match (plan.fault_for(seed), outcome) {
            // Invariant 3: a surviving result is bitwise what the bare
            // model computes — faults never perturb neighbours' arithmetic.
            (Fault::None | Fault::Latency(_), Ok(response)) => {
                assert_eq!(
                    response.result.logits,
                    base_logits(&request(seed)),
                    "request {seed}: surviving result must be bitwise-identical"
                );
            }
            // An unfaulted request may still be collateral of a batch
            // neighbour's injected panic — but only with a typed error.
            (Fault::None | Fault::Latency(_), Err(ServeError::ModelPanicked { .. })) => {
                panicked_batches += 1;
            }
            (Fault::Error, Err(ServeError::Model(_) | ServeError::ModelPanicked { .. })) => {}
            (Fault::Panic, Err(ServeError::ModelPanicked { message })) => {
                assert!(
                    message.contains("injected fault"),
                    "panic payload must surface: {message}"
                );
                panicked_batches += 1;
            }
            (fault, outcome) => {
                panic!("request {seed} with fault {fault:?} got unexpected outcome {outcome:?}")
            }
        }
        // Invariant 3 (contrapositive): a request whose plan says Panic
        // must never have been executed to completion by the model.
        if plan.fault_for(seed) == Fault::Panic {
            assert!(
                !executed.lock().unwrap().contains(&seed),
                "panic-faulted request {seed} must not produce a model result"
            );
        }
    }

    // Invariant 4: worker deaths are observable and the pool recovered.
    let stats = core.stats();
    assert_eq!(stats.submitted, n_requests);
    if panicked_batches > 0 {
        assert!(stats.model_panics >= 1, "panics must be counted");
        assert!(
            stats.worker_restarts >= 1,
            "a contained panic costs a worker restart"
        );
    }
    if plan.panic_rate == 0.0 {
        assert_eq!(stats.model_panics, 0);
        assert_eq!(stats.worker_restarts, 0);
    }
    // The core still serves after all injected chaos: a fresh unfaulted
    // request (seed chosen fault-free) completes.
    if let Some(clean) =
        (n_requests..n_requests + 10_000).find(|&s| plan.fault_for(s) == Fault::None)
    {
        let response = core.infer(request(clean)).expect("pool recovered");
        assert_eq!(response.result.logits, base_logits(&request(clean)));
    }
    core.shutdown();
}

#[test]
fn model_errors_only() {
    for seed in PLAN_SEEDS {
        chaos_round(FaultPlan::new(seed).with_error_rate(0.3), 2, 64);
    }
}

#[test]
fn model_panics_only() {
    for seed in PLAN_SEEDS {
        chaos_round(FaultPlan::new(seed).with_panic_rate(0.15), 2, 64);
    }
}

#[test]
fn latency_only() {
    for seed in PLAN_SEEDS {
        chaos_round(
            FaultPlan::new(seed).with_latency(0.3, Duration::from_millis(2)),
            2,
            64,
        );
    }
}

#[test]
fn mixed_fault_storm() {
    for seed in PLAN_SEEDS {
        chaos_round(
            FaultPlan::new(seed)
                .with_panic_rate(0.1)
                .with_error_rate(0.2)
                .with_latency(0.2, Duration::from_millis(1)),
            3,
            96,
        );
    }
}

/// Invariant 5: shutdown drains. Requests in flight when `shutdown` is
/// called still resolve with a typed outcome — even while the model is
/// panicking under them.
#[test]
fn shutdown_always_drains_under_faults() {
    for seed in PLAN_SEEDS {
        let plan = FaultPlan::new(seed)
            .with_panic_rate(0.1)
            .with_error_rate(0.1);
        let model = FaultyModel::new(
            BaseModel {
                executed: Arc::new(Mutex::new(HashSet::new())),
            },
            plan,
        );
        let core = Arc::new(
            ServeCore::start(
                model,
                ServeConfig {
                    max_batch: 4,
                    max_delay: Duration::from_millis(1),
                    queue_capacity: 256,
                    workers: Some(2),
                    restart_backoff: Duration::from_micros(100),
                    ..ServeConfig::default()
                },
            )
            .unwrap(),
        );
        let handles: Vec<ResponseHandle> = (0..64)
            .map(|i| core.submit(request(i)).expect("fits"))
            .collect();
        // Shut down from another thread while the burst is in flight.
        let shutdown = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.shutdown())
        };
        for (i, handle) in handles.into_iter().enumerate() {
            // Ok, Model, ModelPanicked — all fine; hanging is the failure.
            let _ = handle
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("request {i} hung across shutdown"));
        }
        shutdown.join().unwrap();
    }
}

/// Idempotent shutdown: a second sequential call and a stampede of
/// concurrent calls are all no-ops that return once the first completes.
#[test]
fn shutdown_is_idempotent_and_race_safe() {
    let model = BaseModel {
        executed: Arc::new(Mutex::new(HashSet::new())),
    };
    let core = Arc::new(ServeCore::start(model, ServeConfig::default()).unwrap());
    let response = core.infer(request(1)).expect("serves before shutdown");
    assert_eq!(response.result.logits, base_logits(&request(1)));

    let racers: Vec<_> = (0..4)
        .map(|_| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.shutdown())
        })
        .collect();
    core.shutdown();
    for racer in racers {
        racer.join().expect("concurrent shutdown must not panic");
    }
    // Sequential repeat after completion: still a no-op.
    core.shutdown();
    assert!(matches!(
        core.submit(request(2)),
        Err(ServeError::ShuttingDown)
    ));
}

/// A model that cannot even construct its runner: the supervisor must not
/// respawn forever — it declares the model wedged, fails the backlog with
/// typed errors, and shutdown still returns.
#[test]
fn wedged_model_fails_backlog_instead_of_hanging() {
    struct WedgedModel;
    struct NeverRunner;
    impl ModelRunner for NeverRunner {
        fn run_batch(
            &mut self,
            _requests: Vec<InferenceRequest>,
        ) -> Vec<Result<InferenceResult, SnnError>> {
            unreachable!("runner construction always panics")
        }
    }
    impl ServeModel for WedgedModel {
        type Runner = NeverRunner;
        fn runner(&self) -> NeverRunner {
            panic!("injected fault: runner construction failure");
        }
    }

    let core = ServeCore::start(
        WedgedModel,
        ServeConfig {
            workers: Some(2),
            restart_backoff: Duration::from_micros(50),
            restart_backoff_cap: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handles: Vec<ResponseHandle> = (0..8)
        .filter_map(|i| core.submit(request(i)).ok())
        .collect();
    assert!(
        !handles.is_empty(),
        "queue accepts before the wedge verdict"
    );
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("request {i} hung on a wedged model"));
        assert!(
            matches!(
                outcome,
                Err(ServeError::ModelPanicked { .. } | ServeError::ShuttingDown)
            ),
            "wedged backlog must fail typed, got {outcome:?}"
        );
    }
    let stats = core.stats();
    assert!(stats.worker_restarts >= 1, "deaths were observed");
    core.shutdown();
}
