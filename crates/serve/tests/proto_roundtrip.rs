//! Property coverage of the wire protocol: JSON and binary frames must
//! round-trip losslessly for every legal request, and every corruption —
//! truncation at any byte, a lying length prefix, oversized declared shapes,
//! ragged shape/data pairings — must yield a typed `ServeError::Protocol`,
//! never a panic and never an allocation driven by an unvalidated length.

use proptest::prelude::*;
use snn_core::tensor::Tensor;
use snn_serve::protocol::{
    decode_frame_request, decode_frame_response, decode_json_request, encode_frame_request,
    encode_frame_response, encode_json_request, encode_json_response, MAX_DIMS, MAX_ELEMENTS,
    REQUEST_MAGIC,
};
use snn_serve::{InferenceRequest, InferenceResult, ServeError, ServedResponse};
use std::time::Duration;

/// A legal random request: 1–4 dims of 1–4 each, matching data.
fn sample_request(shape: &[usize], fill: &[f32], seed: u64) -> InferenceRequest {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|i| fill[i % fill.len()]).collect();
    InferenceRequest::seeded(Tensor::from_vec(data, shape).expect("legal tensor"), seed)
}

fn sample_response(logits: Vec<f32>, queued_us: u64, batch_size: usize) -> ServedResponse {
    ServedResponse {
        result: InferenceResult::from_logits(logits),
        queued_us,
        batch_us: queued_us / 2 + 1,
        batch_size,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_request_roundtrips(
        dims in collection::vec(1_usize..5, 1..5),
        fill in collection::vec(-100.0_f32..100.0, 1..8),
        seed in any::<u64>(),
        deadline_us in 0_u64..=10_000_000,
    ) {
        let mut request = sample_request(&dims, &fill, seed);
        if deadline_us > 0 {
            request = request.with_deadline(Duration::from_micros(deadline_us));
        }
        let encoded = encode_frame_request(&request);
        let decoded = decode_frame_request(&encoded).expect("legal frame decodes");
        prop_assert_eq!(decoded.seed, request.seed);
        prop_assert_eq!(decoded.deadline, request.deadline);
        prop_assert_eq!(decoded.image.shape(), request.image.shape());
        prop_assert_eq!(decoded.image.as_slice(), request.image.as_slice());
    }

    /// The wire deadline field under hostile values: every u64 bit pattern
    /// must decode without panicking, 0 must mean "no deadline", and the
    /// JSON field must accept absence, zero and huge values alike.
    #[test]
    fn wire_deadline_field_is_hostile_proof(
        raw_deadline in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let request = sample_request(&[2], &[0.5], seed);
        let mut encoded = encode_frame_request(&request);
        // The deadline field sits right after the 8-byte header and the
        // 8-byte seed; overwrite it with an arbitrary bit pattern.
        encoded[16..24].copy_from_slice(&raw_deadline.to_le_bytes());
        let decoded = decode_frame_request(&encoded).expect("frame stays legal");
        match raw_deadline {
            0 => prop_assert_eq!(decoded.deadline, None),
            us => prop_assert_eq!(decoded.deadline, Some(Duration::from_micros(us))),
        }
        let body = format!(
            "{{\"shape\": [2], \"data\": [0.5, 0.5], \"deadline_us\": {raw_deadline}}}"
        );
        let decoded = decode_json_request(body.as_bytes()).expect("body stays legal");
        match raw_deadline {
            0 => prop_assert_eq!(decoded.deadline, None),
            us => prop_assert_eq!(decoded.deadline, Some(Duration::from_micros(us))),
        }
        // A non-numeric deadline is a typed protocol error, not a panic.
        let bad = b"{\"shape\": [1], \"data\": [1.0], \"deadline_us\": \"soon\"}";
        prop_assert!(matches!(
            decode_json_request(bad),
            Err(ServeError::Protocol(_))
        ));
    }

    /// The wire model-id field under hostile values: an arbitrary byte
    /// string spliced into the model slot must either decode (iff it is
    /// valid UTF-8) or yield a typed protocol error — never a panic.
    #[test]
    fn wire_model_field_is_hostile_proof(
        model_bytes in collection::vec(0_u8..=255, 0..16),
        seed in any::<u64>(),
    ) {
        let base = encode_frame_request(&sample_request(&[2], &[0.5], seed));
        // Rebuild the frame with the arbitrary model field spliced in after
        // seed + deadline (the base frame carries model_len = 0 at byte 24).
        let mut frame = base[..24].to_vec();
        frame.push(model_bytes.len() as u8);
        frame.extend_from_slice(&model_bytes);
        frame.extend_from_slice(&base[25..]);
        let payload_len = (frame.len() - 8) as u32;
        frame[4..8].copy_from_slice(&payload_len.to_le_bytes());
        match decode_frame_request(&frame) {
            Ok(decoded) => {
                let text = std::str::from_utf8(&model_bytes)
                    .expect("a decoded model id implies valid UTF-8");
                if model_bytes.is_empty() {
                    prop_assert_eq!(decoded.model, None);
                } else {
                    prop_assert_eq!(decoded.model.as_deref(), Some(text));
                }
            }
            Err(ServeError::Protocol(_)) => {
                prop_assert!(std::str::from_utf8(&model_bytes).is_err());
            }
            Err(other) => {
                panic!("hostile model field must decode or error typed, got {other:?}")
            }
        }
    }

    #[test]
    fn json_request_roundtrips(
        dims in collection::vec(1_usize..5, 1..5),
        fill in collection::vec(-8.0_f32..8.0, 1..8),
        seed in any::<u64>(),
    ) {
        // f32 values that survive the shim's decimal text round-trip: the
        // fill set is quantized to multiples of 1/64.
        let fill: Vec<f32> = fill.iter().map(|v| (v * 64.0).round() / 64.0).collect();
        let request = sample_request(&dims, &fill, seed);
        let body = encode_json_request(&request).expect("encodes");
        let decoded = decode_json_request(&body).expect("legal body decodes");
        prop_assert_eq!(decoded.seed, request.seed);
        prop_assert_eq!(decoded.image.shape(), request.image.shape());
        prop_assert_eq!(decoded.image.as_slice(), request.image.as_slice());
    }

    #[test]
    fn truncated_binary_frames_error_not_panic(
        dims in collection::vec(1_usize..5, 1..5),
        cut_fraction in 0.0_f64..1.0,
        seed in any::<u64>(),
    ) {
        let request = sample_request(&dims, &[1.5], seed);
        let encoded = encode_frame_request(&request);
        // Strictly shorter than the full frame, down to the empty buffer.
        let cut = (encoded.len() as f64 * cut_fraction) as usize;
        let truncated = &encoded[..cut.min(encoded.len() - 1)];
        match decode_frame_request(truncated) {
            Err(ServeError::Protocol(_)) => {}
            other => panic!("truncated frame must be a protocol error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_byte_never_panics(
        dims in collection::vec(1_usize..4, 1..4),
        pos_fraction in 0.0_f64..1.0,
        flip in 1_u8..=255,
        seed in any::<u64>(),
    ) {
        let request = sample_request(&dims, &[0.25, -0.75], seed);
        let mut encoded = encode_frame_request(&request);
        let pos = ((encoded.len() - 1) as f64 * pos_fraction) as usize;
        encoded[pos] ^= flip;
        // Any outcome is fine except a panic; a decode that still succeeds
        // (the flip hit tensor data) must satisfy the shape/data contract.
        if let Ok(decoded) = decode_frame_request(&encoded) {
            let n: usize = decoded.image.shape().iter().product();
            prop_assert_eq!(decoded.image.as_slice().len(), n);
        }
    }

    #[test]
    fn ragged_json_shapes_error(
        dims in collection::vec(1_usize..5, 1..4),
        extra in 1_usize..7,
    ) {
        let n: usize = dims.iter().product();
        let dims_json: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
        let data_json: Vec<String> = (0..n + extra).map(|i| format!("{}.0", i)).collect();
        let body = format!(
            "{{\"shape\": [{}], \"data\": [{}]}}",
            dims_json.join(","),
            data_json.join(",")
        );
        match decode_json_request(body.as_bytes()) {
            Err(ServeError::Protocol(msg)) => prop_assert!(msg.contains("elements")),
            other => panic!("ragged body must be a protocol error, got {other:?}"),
        }
    }

    #[test]
    fn binary_response_roundtrips(
        logits in collection::vec(-50.0_f32..50.0, 1..12),
        queued_us in any::<u64>(),
        batch_size in 1_usize..64,
    ) {
        let response = sample_response(logits, queued_us, batch_size);
        let encoded = encode_frame_response(&response);
        let decoded = decode_frame_response(&encoded).expect("legal response decodes");
        prop_assert_eq!(decoded.status, 0);
        prop_assert_eq!(&decoded.logits, &response.result.logits);
        prop_assert_eq!(decoded.prediction as usize, response.result.prediction);
        prop_assert_eq!(decoded.queued_us, response.queued_us);
        prop_assert_eq!(decoded.batch_us, response.batch_us);
        prop_assert_eq!(decoded.batch_size as usize, response.batch_size);
        prop_assert_eq!(decoded.hardware, None);
    }
}

/// A hostile length prefix or dimension vector must be refused up front —
/// before any allocation it implies — with a typed protocol error.
#[test]
fn oversized_declared_sizes_are_refused_before_allocation() {
    // 1. Huge payload_len over a tiny actual buffer.
    let mut frame = Vec::new();
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        decode_frame_request(&frame),
        Err(ServeError::Protocol(_))
    ));

    // 2. Consistent payload_len, but dims multiplying past MAX_ELEMENTS.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7_u64.to_le_bytes()); // seed
    payload.extend_from_slice(&0_u64.to_le_bytes()); // deadline_us (none)
    payload.push(0); // model_len (no model id)
    payload.push(4); // ndim
    for _ in 0..4 {
        payload.extend_from_slice(&4096_u32.to_le_bytes()); // 4096^4 >> MAX_ELEMENTS
    }
    let mut frame = Vec::new();
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    match decode_frame_request(&frame) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("ceiling"), "got: {msg}"),
        other => panic!("oversized shape must be refused, got {other:?}"),
    }

    // 3. Too many dimensions.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0_u64.to_le_bytes()); // seed
    payload.extend_from_slice(&0_u64.to_le_bytes()); // deadline_us (none)
    payload.push(0); // model_len (no model id)
    payload.push((MAX_DIMS + 1) as u8);
    for _ in 0..=MAX_DIMS {
        payload.extend_from_slice(&1_u32.to_le_bytes());
    }
    let mut frame = Vec::new();
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(
        decode_frame_request(&frame),
        Err(ServeError::Protocol(_))
    ));

    // 4. JSON declaring an astronomically large shape (no giant data vector
    // needed: the shape check fires first).
    let body = "{\"shape\": [16777216, 16777216], \"data\": [1.0]}";
    match decode_json_request(body.as_bytes()) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("ceiling"), "got: {msg}"),
        other => panic!("oversized JSON shape must be refused, got {other:?}"),
    }
    let _ = MAX_ELEMENTS;
}

/// The optional model id must round-trip on both codecs, tolerate JSON
/// absence/null, refuse non-string JSON values and lying binary length
/// prefixes, and respect the u8 length bound at a UTF-8 char boundary.
#[test]
fn model_id_roundtrips_and_is_bounded() {
    let request = sample_request(&[2], &[1.0], 3).with_model("cifar-fp32");
    let decoded = decode_frame_request(&encode_frame_request(&request)).unwrap();
    assert_eq!(decoded.model.as_deref(), Some("cifar-fp32"));
    let body = encode_json_request(&request).unwrap();
    let decoded = decode_json_request(&body).unwrap();
    assert_eq!(decoded.model.as_deref(), Some("cifar-fp32"));

    // JSON: absent and null both mean "route to the default model".
    let decoded = decode_json_request(b"{\"shape\": [1], \"data\": [1.0]}").unwrap();
    assert_eq!(decoded.model, None);
    let decoded =
        decode_json_request(b"{\"shape\": [1], \"data\": [1.0], \"model\": null}").unwrap();
    assert_eq!(decoded.model, None);
    // A non-string model id is a typed protocol error, not a panic.
    assert!(matches!(
        decode_json_request(b"{\"shape\": [1], \"data\": [1.0], \"model\": 7}"),
        Err(ServeError::Protocol(_))
    ));

    // The u8 length prefix bounds names at 255 bytes; the encoder truncates
    // at a char boundary rather than emitting an illegal frame.
    let long = "\u{b5}".repeat(400); // 2 bytes per char
    let encoded = encode_frame_request(&sample_request(&[1], &[1.0], 0).with_model(long));
    let model = decode_frame_request(&encoded).unwrap().model.unwrap();
    assert!(model.len() <= 255);
    assert!(!model.is_empty() && model.chars().all(|c| c == '\u{b5}'));

    // A lying model_len over a short payload is refused before allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0_u64.to_le_bytes()); // seed
    payload.extend_from_slice(&0_u64.to_le_bytes()); // deadline_us
    payload.push(200); // claims 200 bytes of model id...
    payload.extend_from_slice(b"abc"); // ...delivers 3
    let mut frame = Vec::new();
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(
        decode_frame_request(&frame),
        Err(ServeError::Protocol(_))
    ));
}

#[test]
fn bad_magic_and_trailing_bytes_are_refused() {
    let request = InferenceRequest::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
    let mut encoded = encode_frame_request(&request);
    encoded[0] = b'X';
    assert!(matches!(
        decode_frame_request(&encoded),
        Err(ServeError::Protocol(_))
    ));

    // Trailing bytes (with a length prefix that includes them) are refused:
    // the tensor-data section must end the payload exactly.
    let mut encoded = encode_frame_request(&request);
    encoded.push(0xAB);
    let len = (encoded.len() - 8) as u32;
    encoded[4..8].copy_from_slice(&len.to_le_bytes());
    match decode_frame_request(&encoded) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("trailing"), "got: {msg}"),
        other => panic!("trailing bytes must be refused, got {other:?}"),
    }
}

#[test]
fn json_seed_is_optional_and_errors_report_offsets() {
    let decoded =
        decode_json_request(b"{\"shape\": [2], \"data\": [0.5, 1.5]}").expect("seedless body");
    assert_eq!(decoded.seed, 0);
    assert_eq!(decoded.image.as_slice(), &[0.5, 1.5]);

    // Malformed JSON reports the byte offset through the serde_json shim.
    match decode_json_request(b"{\"shape\": [2], \"data\": [0.5, }") {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("offset"), "got: {msg}"),
        other => panic!("malformed JSON must be a protocol error, got {other:?}"),
    }
}

#[test]
fn json_response_carries_serving_metadata() {
    let response = sample_response(vec![3.0, 1.0, 2.0], 42, 5);
    let body = encode_json_response(&response).expect("encodes");
    let text = String::from_utf8(body).expect("utf8");
    assert!(text.contains("\"prediction\":0"), "got: {text}");
    assert!(text.contains("\"queued_us\":42"), "got: {text}");
    assert!(text.contains("\"batch_size\":5"), "got: {text}");
    // No hardware estimate on the stub result: nullable fields stay null.
    assert!(text.contains("\"latency_ms\":null"), "got: {text}");
}
