//! Table I — area utilisation and power of the int4 vs fp32 hardware.
//!
//! The paper reports per-layer LUT/FF, BRAM/URAM and instance-level dynamic
//! power of the CIFAR-100 accelerator in its `perf2` configuration, for both
//! weight precisions. This experiment rebuilds both designs with the
//! resource/power models and prints the same rows, plus the device
//! utilisation and the fp32/int4 ratios the paper highlights (≈8× LUTs,
//! ≈3.4× memory blocks, 2.82× dynamic power).

use crate::experiments::paper_network;
use serde::{Deserialize, Serialize};
use snn_accel::config::{HwConfig, PerfScale};
use snn_accel::power;
use snn_accel::resources::estimate_layers;
use snn_core::error::SnnError;
use snn_core::quant::Precision;

/// One row of the Table I reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerRow {
    /// Layer name.
    pub name: String,
    /// LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM36 blocks.
    pub bram: u64,
    /// URAM blocks.
    pub uram: u64,
    /// Instance-level dynamic power in watts.
    pub power_watts: f64,
}

/// One precision's half of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// The precision.
    pub precision: String,
    /// Per-layer rows.
    pub layers: Vec<LayerRow>,
    /// Total LUTs.
    pub total_luts: u64,
    /// Total FFs.
    pub total_ffs: u64,
    /// Total BRAM blocks.
    pub total_bram: u64,
    /// Total URAM blocks.
    pub total_uram: u64,
    /// Total dynamic power in watts.
    pub total_dynamic_watts: f64,
    /// Device static power in watts.
    pub static_watts: f64,
    /// LUT utilisation fraction of the XCVU13P.
    pub lut_utilization: f64,
    /// BRAM utilisation fraction.
    pub bram_utilization: f64,
    /// URAM utilisation fraction.
    pub uram_utilization: f64,
}

/// The full Table I report (both precisions and their ratios).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    /// The int4 design.
    pub int4: PrecisionReport,
    /// The fp32 design.
    pub fp32: PrecisionReport,
    /// fp32 / int4 LUT ratio.
    pub lut_ratio: f64,
    /// fp32 / int4 memory block (BRAM + URAM) ratio.
    pub memory_ratio: f64,
    /// fp32 / int4 dynamic power ratio.
    pub power_ratio: f64,
}

fn precision_report(precision: Precision) -> Result<PrecisionReport, SnnError> {
    let network = paper_network("cifar100")?;
    let geometry = network.geometry()?;
    let config = HwConfig::paper("cifar100", precision, PerfScale::Perf2)?;
    let resources = estimate_layers(&geometry, &config, 2)?;
    let power_est = power::estimate(&resources, precision, config.clock_gating);
    let layers = resources
        .layers
        .iter()
        .zip(power_est.layers.iter())
        .map(|(r, p)| LayerRow {
            name: r.name.clone(),
            luts: r.luts,
            ffs: r.ffs,
            bram: r.bram,
            uram: r.uram,
            power_watts: p.dynamic_watts,
        })
        .collect();
    Ok(PrecisionReport {
        precision: precision.to_string(),
        layers,
        total_luts: resources.total_luts(),
        total_ffs: resources.total_ffs(),
        total_bram: resources.total_bram(),
        total_uram: resources.total_uram(),
        total_dynamic_watts: power_est.total_dynamic_watts(),
        static_watts: power_est.static_watts,
        lut_utilization: resources.lut_utilization(),
        bram_utilization: resources.bram_utilization(),
        uram_utilization: resources.uram_utilization(),
    })
}

/// Runs the Table I experiment (no training involved, so there is no scale
/// parameter).
///
/// # Errors
///
/// Propagates model errors.
pub fn run() -> Result<Table1Report, SnnError> {
    let int4 = precision_report(Precision::Int4)?;
    let fp32 = precision_report(Precision::Fp32)?;
    let mem_int4 = (int4.total_bram + int4.total_uram).max(1);
    let mem_fp32 = fp32.total_bram + fp32.total_uram;
    Ok(Table1Report {
        lut_ratio: fp32.total_luts as f64 / int4.total_luts.max(1) as f64,
        memory_ratio: mem_fp32 as f64 / mem_int4 as f64,
        power_ratio: fp32.total_dynamic_watts / int4.total_dynamic_watts.max(1e-12),
        int4,
        fp32,
    })
}

/// Renders the report as two paper-style tables plus the ratio summary.
pub fn render(report: &Table1Report) -> String {
    use crate::report::{format_table, num};
    let mut out = String::new();
    for pr in [&report.int4, &report.fp32] {
        out.push_str(&format!("\n{} hardware (CIFAR-100, perf2)\n", pr.precision));
        let rows: Vec<Vec<String>> = pr
            .layers
            .iter()
            .map(|l| {
                vec![
                    l.name.clone(),
                    format!("{:.1}K & {:.1}K", l.luts as f64 / 1e3, l.ffs as f64 / 1e3),
                    format!("{} & {}", l.bram, l.uram),
                    num(l.power_watts, 3),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["Layer", "LUT & FF", "BRAM & URAM", "Power [W]"],
            &rows,
        ));
        out.push_str(&format!(
            "Total: {:.1}K LUT, {:.1}K FF, {} BRAM, {} URAM, {:.3} W dynamic ({:.2} W static)\n",
            pr.total_luts as f64 / 1e3,
            pr.total_ffs as f64 / 1e3,
            pr.total_bram,
            pr.total_uram,
            pr.total_dynamic_watts,
            pr.static_watts
        ));
        out.push_str(&format!(
            "Utilization: {:.2}% LUT, {:.2}% BRAM, {:.2}% URAM\n",
            pr.lut_utilization * 100.0,
            pr.bram_utilization * 100.0,
            pr.uram_utilization * 100.0
        ));
    }
    out.push_str(&format!(
        "\nfp32 / int4 ratios: {:.1}x LUTs, {:.1}x memory blocks, {:.2}x dynamic power (paper: ~8x, ~3.4x, 2.82x)\n",
        report.lut_ratio, report.memory_ratio, report.power_ratio
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratios_follow_the_paper_direction() {
        let report = run().unwrap();
        assert!(report.lut_ratio > 1.0, "fp32 must need more LUTs");
        assert!(
            report.memory_ratio > 1.0,
            "fp32 must need more memory blocks"
        );
        assert!(
            report.power_ratio > 1.5,
            "fp32 must burn more dynamic power"
        );
        assert_eq!(report.int4.layers.len(), 9);
        let text = render(&report);
        assert!(text.contains("CONV1_1"));
        assert!(text.contains("fp32 / int4 ratios"));
    }
}
