//! Plain-text table formatting shared by the experiment binaries.
//!
//! The binaries print paper-style tables to stdout and optionally dump the
//! underlying report structs as JSON (for EXPERIMENTS.md provenance).

/// Formats a table with a header row and aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<w$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimal places, rendering NaN as
/// a dash (matching the paper's "—" for unreported values).
pub fn num(value: f64, decimals: usize) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{value:.decimals$}")
    }
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}x")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_headers_and_rows() {
        let t = format_table(
            &["Layer", "LUT"],
            &[
                vec!["CONV1_1".to_string(), "1900".to_string()],
                vec!["FC".to_string(), "6000".to_string()],
            ],
        );
        assert!(t.contains("Layer"));
        assert!(t.contains("CONV1_1"));
        assert!(t.contains("6000"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn columns_are_aligned() {
        let t = format_table(&["A", "B"], &[vec!["xxxx".to_string(), "1".to_string()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn num_and_ratio_formatting() {
        assert_eq!(num(2.71729, 2), "2.72");
        assert_eq!(num(f64::NAN, 2), "-");
        assert_eq!(ratio(26.43), "26.4x");
        assert_eq!(ratio(f64::INFINITY), "-");
    }
}
