//! Fig. 1 — quantization effect on the total number of spikes.
//!
//! The paper trains fp32 and int4 (QAT) versions of the VGG9 on SVHN,
//! CIFAR-10 and CIFAR-100 and reports (a) near-identical accuracy and (b)
//! 6.1% / 10.1% / 15.2% fewer spikes for the int4 models.
//!
//! At this reproduction's reduced training scale, two *independently* trained
//! models differ more because of training noise than because of their
//! precision, which would bury the quantization effect. The experiment
//! therefore isolates the quantization effect the way a post-training
//! ablation would: it trains one fp32 model per dataset and evaluates the
//! *same weights* at fp32 and after int4 fake-quantization, so every spike
//! difference is attributable to the quantization of the weights (small
//! coefficients collapsing to zero, marginal neurons dropping below
//! threshold). The deviation from the paper's QAT-vs-QAT protocol is recorded
//! in EXPERIMENTS.md.

use crate::experiments::{
    paper_accuracy_reference, small_dataset, small_network, ExperimentScale, DATASETS,
};
use serde::{Deserialize, Serialize};
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::quant::Precision;
use snn_data::Split;
use snn_train::trainer::{evaluate, TrainConfig, Trainer};

/// One dataset's fp32-vs-int4 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetComparison {
    /// Dataset name.
    pub dataset: String,
    /// fp32 accuracy (fraction in `[0, 1]`).
    pub fp32_accuracy: f64,
    /// int4 accuracy.
    pub int4_accuracy: f64,
    /// Total spikes of the fp32 model over the evaluation set.
    pub fp32_spikes: u64,
    /// Total spikes of the int4 model over the evaluation set.
    pub int4_spikes: u64,
    /// Spike reduction of int4 vs fp32 in percent (positive = sparser).
    pub spike_reduction_percent: f64,
    /// Accuracy drop of int4 vs fp32 in percentage points.
    pub accuracy_drop_percent: f64,
    /// The paper's reported fp32 accuracy (for context).
    pub paper_fp32_accuracy: f64,
    /// The paper's reported int4 accuracy (for context).
    pub paper_int4_accuracy: f64,
}

/// Full Fig. 1 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Report {
    /// Per-dataset comparisons.
    pub datasets: Vec<DatasetComparison>,
}

/// Runs the Fig. 1 experiment.
///
/// # Errors
///
/// Propagates training/inference errors.
pub fn run(scale: ExperimentScale) -> Result<Fig1Report, SnnError> {
    let encoder = Encoder::paper_direct();
    let mut datasets = Vec::new();
    for dataset in DATASETS {
        let data = small_dataset(dataset, scale);
        let mut network = small_network(dataset)?;
        let mut cfg = TrainConfig::quick();
        cfg.encoder = encoder;
        cfg.epochs = scale.epochs();
        cfg.max_train_samples = Some(scale.train_samples());
        cfg.batch_size = 8;
        Trainer::new(cfg)?.fit(&mut network, &data)?;

        // Evaluate the same trained weights at both precisions.
        let mut fp32_net = network.clone();
        let fp32 = evaluate(
            &mut fp32_net,
            &data,
            Split::Test,
            &encoder,
            Some(scale.eval_samples()),
        )?;
        let mut int4_net = network;
        int4_net.apply_precision(Precision::Int4)?;
        let int4 = evaluate(
            &mut int4_net,
            &data,
            Split::Test,
            &encoder,
            Some(scale.eval_samples()),
        )?;

        let fp32_spikes = fp32.total_spikes;
        let int4_spikes = int4.total_spikes;
        let reduction = if fp32_spikes == 0 {
            0.0
        } else {
            (1.0 - int4_spikes as f64 / fp32_spikes as f64) * 100.0
        };
        datasets.push(DatasetComparison {
            dataset: dataset.to_string(),
            fp32_accuracy: fp32.accuracy,
            int4_accuracy: int4.accuracy,
            fp32_spikes,
            int4_spikes,
            spike_reduction_percent: reduction,
            accuracy_drop_percent: (fp32.accuracy - int4.accuracy) * 100.0,
            paper_fp32_accuracy: paper_accuracy_reference(dataset, Precision::Fp32),
            paper_int4_accuracy: paper_accuracy_reference(dataset, Precision::Int4),
        });
    }
    Ok(Fig1Report { datasets })
}

/// Renders the report as a paper-style table.
pub fn render(report: &Fig1Report) -> String {
    use crate::report::{format_table, num};
    let rows: Vec<Vec<String>> = report
        .datasets
        .iter()
        .map(|d| {
            vec![
                d.dataset.clone(),
                num(d.fp32_accuracy * 100.0, 1),
                num(d.int4_accuracy * 100.0, 1),
                d.fp32_spikes.to_string(),
                d.int4_spikes.to_string(),
                num(d.spike_reduction_percent, 1),
                format!(
                    "{} / {}",
                    num(d.paper_fp32_accuracy, 1),
                    num(d.paper_int4_accuracy, 1)
                ),
            ]
        })
        .collect();
    format_table(
        &[
            "Dataset",
            "fp32 acc [%]",
            "int4 acc [%]",
            "fp32 spikes",
            "int4 spikes",
            "spike redn [%]",
            "paper acc fp32/int4 [%]",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_datasets() {
        let report = Fig1Report {
            datasets: vec![DatasetComparison {
                dataset: "cifar10".to_string(),
                fp32_accuracy: 0.5,
                int4_accuracy: 0.48,
                fp32_spikes: 1000,
                int4_spikes: 900,
                spike_reduction_percent: 10.0,
                accuracy_drop_percent: 2.0,
                paper_fp32_accuracy: 86.6,
                paper_int4_accuracy: 86.2,
            }],
        };
        let text = render(&report);
        assert!(text.contains("cifar10"));
        assert!(text.contains("10.0"));
        assert!(text.contains("86.6"));
    }
}
