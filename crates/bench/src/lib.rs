//! # snn-bench
//!
//! Experiment harnesses that regenerate every table and figure of the paper's
//! evaluation section, plus shared helpers for the Criterion benchmarks.
//!
//! Each experiment lives in its own module and exposes a `run(scale)`
//! function returning a serialisable report; the `src/bin/*` binaries are
//! thin wrappers that call these functions and print the paper-style tables.
//! Integration tests exercise the same functions at
//! [`ExperimentScale::Smoke`] so that every experiment stays runnable.
//!
//! | Paper result | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (quantization vs. sparsity) | [`fig1`] | `fig1_quant_sparsity` |
//! | Table I (area & power) | [`table1`] | `table1_resources` |
//! | Fig. 4 (energy, fp32 vs int4 × LW/perf2/perf4) | [`fig4`] | `fig4_energy` |
//! | Table II (direct vs rate coding) | [`table2`] | `table2_coding` |
//! | Table III (comparison to prior work) | [`table3`] | `table3_comparison` |

pub mod experiments;
pub mod fig1;
pub mod fig4;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;

pub use experiments::ExperimentScale;
