//! Shared experiment infrastructure: scales, dataset/model pairings and the
//! trained-model cache used by the accuracy experiments.

use snn::{Engine, PerfScale};
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::network::{vgg9, SnnNetwork, Vgg9Config};
use snn_core::quant::Precision;
use snn_core::tensor::Tensor;
use snn_data::{Dataset, Split, SyntheticConfig, SyntheticDataset};
use snn_train::trainer::{evaluate, EvalReport, TrainConfig, Trainer};

/// How much compute an experiment run is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minimal settings used by integration tests (seconds).
    Smoke,
    /// The default command-line settings (a couple of minutes on a laptop).
    Full,
}

impl ExperimentScale {
    /// Parses `--smoke` style command-line arguments (anything containing
    /// "smoke" selects the smoke scale).
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a.contains("smoke")) {
            ExperimentScale::Smoke
        } else {
            ExperimentScale::Full
        }
    }

    /// Training samples per epoch for accuracy experiments.
    pub fn train_samples(self) -> usize {
        match self {
            ExperimentScale::Smoke => 20,
            ExperimentScale::Full => 120,
        }
    }

    /// Evaluation samples for accuracy/sparsity measurements.
    pub fn eval_samples(self) -> usize {
        match self {
            ExperimentScale::Smoke => 10,
            ExperimentScale::Full => 60,
        }
    }

    /// Training epochs for accuracy experiments.
    pub fn epochs(self) -> usize {
        match self {
            ExperimentScale::Smoke => 1,
            ExperimentScale::Full => 4,
        }
    }

    /// Number of images used to collect paper-scale hardware traces.
    pub fn trace_images(self) -> usize {
        match self {
            ExperimentScale::Smoke => 1,
            ExperimentScale::Full => 2,
        }
    }
}

/// The three evaluation datasets of the paper.
pub const DATASETS: [&str; 3] = ["svhn", "cifar10", "cifar100"];

/// Builds the scaled-down synthetic dataset used for the *trainable*
/// experiments (Fig. 1 accuracy/sparsity, Table II accuracy).
pub fn small_dataset(name: &str, scale: ExperimentScale) -> SyntheticDataset {
    let base = match name {
        "svhn" => SyntheticConfig::svhn_like(),
        "cifar100" => SyntheticConfig::cifar100_like(),
        _ => SyntheticConfig::cifar10_like(),
    };
    SyntheticDataset::generate(base.scaled_down(16, scale.train_samples(), scale.eval_samples()))
}

/// Builds the scaled-down VGG9 matching [`small_dataset`].
pub fn small_network(name: &str) -> Result<SnnNetwork, SnnError> {
    let cfg = match name {
        "svhn" => Vgg9Config::svhn_small(),
        "cifar100" => Vgg9Config::cifar100_small(),
        _ => Vgg9Config::cifar10_small(),
    };
    vgg9(&cfg)
}

/// Builds the paper-scale VGG9 for a dataset (used for the hardware-model
/// experiments where only the layer geometry and spike statistics matter).
pub fn paper_network(name: &str) -> Result<SnnNetwork, SnnError> {
    let cfg = match name {
        "svhn" => Vgg9Config::svhn(),
        "cifar100" => Vgg9Config::cifar100(),
        _ => Vgg9Config::cifar10(),
    };
    vgg9(&cfg)
}

/// A trained model together with its evaluation report.
#[derive(Debug)]
pub struct TrainedModel {
    /// The trained network (weights already at the requested precision for
    /// inference).
    pub network: SnnNetwork,
    /// Evaluation on the held-out split.
    pub eval: EvalReport,
    /// The precision the model was trained/evaluated at.
    pub precision: Precision,
}

/// Trains a scaled-down VGG9 on a synthetic dataset at the given precision
/// (QAT when quantized) and evaluates it with the given encoder.
///
/// # Errors
///
/// Propagates training/inference errors.
pub fn train_and_evaluate(
    dataset_name: &str,
    precision: Precision,
    encoder: Encoder,
    scale: ExperimentScale,
) -> Result<TrainedModel, SnnError> {
    let data = small_dataset(dataset_name, scale);
    let mut network = small_network(dataset_name)?;
    let mut cfg = TrainConfig::quick_qat(precision);
    cfg.encoder = encoder;
    cfg.epochs = scale.epochs();
    cfg.max_train_samples = Some(scale.train_samples());
    cfg.batch_size = 8;
    let mut trainer = Trainer::new(cfg)?;
    trainer.fit(&mut network, &data)?;
    // Materialise the quantized weights for inference, as the hardware does.
    network.apply_precision(precision)?;
    let eval = evaluate(
        &mut network,
        &data,
        Split::Test,
        &encoder,
        Some(scale.eval_samples()),
    )?;
    Ok(TrainedModel {
        network,
        eval,
        precision,
    })
}

/// Builds an [`Engine`] around the paper-scale VGG9 for a dataset: weights
/// quantized to `precision`, the given encoder, and the paper's lightweight
/// (`LW`) hardware preset. Hardware sweeps derive scaled variants via
/// [`Engine::with_hardware`], which shares the quantized weights.
///
/// # Errors
///
/// Propagates model/hardware validation errors.
pub fn paper_engine(
    dataset_name: &str,
    precision: Precision,
    encoder: Encoder,
) -> Result<Engine, SnnError> {
    Engine::builder()
        .network(paper_network(dataset_name)?)
        .encoder(encoder)
        .precision(precision)
        .hardware_paper(dataset_name, PerfScale::Lw)
        .build()
}

/// Synthetic paper-scale (32×32) test images for a dataset, used to drive
/// hardware-model experiments through [`paper_engine`].
pub fn paper_scale_images(dataset_name: &str, images: usize) -> Vec<Tensor> {
    let config = match dataset_name {
        "svhn" => SyntheticConfig::svhn_like(),
        "cifar100" => SyntheticConfig::cifar100_like(),
        _ => SyntheticConfig::cifar10_like(),
    };
    let count = images.max(1);
    let data = SyntheticDataset::generate(config.scaled_down(32, count, count));
    (0..count)
        .map(|i| {
            data.sample(Split::Test, i % data.len(Split::Test))
                .image
                .clone()
        })
        .collect()
}

/// Convenience: a deterministic synthetic image of a given shape, used by the
/// Criterion benches.
pub fn bench_image(shape: &[usize]) -> Tensor {
    Tensor::from_fn(shape, |i| ((i as f32) * 0.0137).sin().abs())
}

/// Maps a dataset name to the population accuracy reference of the paper
/// (used for context lines in the printed reports).
pub fn paper_accuracy_reference(dataset: &str, precision: Precision) -> f64 {
    match (dataset, precision.is_quantized()) {
        ("svhn", false) => 94.3,
        ("svhn", true) => 93.8,
        ("cifar10", false) => 86.6,
        ("cifar10", true) => 86.2,
        ("cifar100", false) => 57.3,
        ("cifar100", true) => 54.2,
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_budgets() {
        assert_eq!(
            ExperimentScale::from_args(&["--smoke".to_string()]),
            ExperimentScale::Smoke
        );
        assert_eq!(ExperimentScale::from_args(&[]), ExperimentScale::Full);
        assert!(ExperimentScale::Full.train_samples() > ExperimentScale::Smoke.train_samples());
        assert!(ExperimentScale::Full.epochs() >= ExperimentScale::Smoke.epochs());
        assert!(ExperimentScale::Smoke.trace_images() >= 1);
        assert!(ExperimentScale::Smoke.eval_samples() > 0);
    }

    #[test]
    fn small_dataset_and_network_are_consistent() {
        for name in DATASETS {
            let data = small_dataset(name, ExperimentScale::Smoke);
            let net = small_network(name).unwrap();
            assert_eq!(net.num_classes(), data.num_classes());
            assert_eq!(net.input_shape(), data.image_shape());
        }
    }

    #[test]
    fn paper_network_matches_paper_population() {
        let c100 = paper_network("cifar100").unwrap();
        assert_eq!(c100.population(), 5000);
        assert_eq!(c100.num_classes(), 100);
        let c10 = paper_network("cifar10").unwrap();
        assert_eq!(c10.population(), 1000);
    }

    #[test]
    fn accuracy_references_match_fig1_caption() {
        assert_eq!(paper_accuracy_reference("svhn", Precision::Fp32), 94.3);
        assert_eq!(paper_accuracy_reference("cifar100", Precision::Int4), 54.2);
        assert!(paper_accuracy_reference("mnist", Precision::Fp32).is_nan());
    }

    #[test]
    fn bench_image_is_deterministic() {
        assert_eq!(bench_image(&[1, 4, 4]), bench_image(&[1, 4, 4]));
    }
}
