//! Table III — comparison to prior work.
//!
//! The paper compares its `perf2` / `perf4` configurations against SyncNN
//! \[15\] on SVHN and CIFAR-10, and against Gerlinghoff et al. \[7\] on
//! CIFAR-100, reporting up to 51× higher throughput and 2× lower power than
//! the latter. This experiment produces the same table: our rows come from
//! the accelerator model driven by paper-scale spike traces, the prior-work
//! rows are the published operating points, and the summary lines report the
//! throughput/power ratios.

use crate::experiments::{paper_accuracy_reference, paper_network, ExperimentScale};
use serde::{Deserialize, Serialize};
use snn_accel::accelerator::HybridAccelerator;
use snn_accel::baseline::{compare, Comparison, PriorWork};
use snn_accel::config::{HwConfig, PerfScale};
use snn_accel::trace::{synthetic_traces, ActivityProfile};
use snn_core::error::SnnError;
use snn_core::quant::Precision;

/// One of our accelerator's rows in Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OurRow {
    /// Dataset.
    pub dataset: String,
    /// Configuration name (`perf2` / `perf4`).
    pub config: String,
    /// Accuracy in percent (the paper's reported accuracy for context, since
    /// the full-scale network is not trained in this reproduction).
    pub accuracy_percent: f64,
    /// Clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Dynamic power in watts.
    pub power_watts: f64,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Energy per image in millijoules.
    pub energy_mj: f64,
    /// Throughput in frames per second.
    pub throughput_fps: f64,
}

/// One dataset's comparison block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetBlock {
    /// The prior-work row.
    pub prior: PriorWork,
    /// Our row.
    pub ours: OurRow,
    /// Derived ratios.
    pub comparison: Comparison,
}

/// The full Table III report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Report {
    /// One block per dataset.
    pub blocks: Vec<DatasetBlock>,
}

/// The Fig. 1 int4 spike reductions, used to derive int4 activity from the
/// calibrated fp32 activity profile.
fn int4_spike_reduction(dataset: &str) -> f64 {
    match dataset {
        "svhn" => 6.1,
        "cifar100" => 15.2,
        _ => 10.1,
    }
}

fn our_row(dataset: &str, hw_scale: PerfScale) -> Result<OurRow, SnnError> {
    let geometry = paper_network(dataset)?.geometry()?;
    let cfg = HwConfig::paper(dataset, Precision::Int4, hw_scale)?;
    let clock = cfg.clock_mhz;
    // Activity calibrated to the paper's reported spike statistics for a
    // trained, quantized, direct-coded VGG9 (see `snn_accel::trace`).
    let profile = ActivityProfile::paper_direct(geometry.len())
        .with_quantization_reduction(int4_spike_reduction(dataset));
    let traces = synthetic_traces(&geometry, &profile)?;
    let accel = HybridAccelerator::from_geometry(geometry, cfg)?;
    let report = accel.estimate(&traces)?;
    Ok(OurRow {
        dataset: dataset.to_string(),
        config: hw_scale.to_string(),
        accuracy_percent: paper_accuracy_reference(dataset, Precision::Int4),
        fmax_mhz: clock,
        power_watts: report.total_dynamic_watts,
        latency_ms: report.latency_ms,
        energy_mj: report.dynamic_energy_mj,
        throughput_fps: report.throughput_fps,
    })
}

/// Runs the Table III experiment.
///
/// # Errors
///
/// Propagates model errors.
pub fn run(_scale: ExperimentScale) -> Result<Table3Report, SnnError> {
    // The paper uses perf4 for SVHN and CIFAR-100, perf2 for CIFAR-10.
    let pairs = [
        ("svhn", PerfScale::Perf4, PriorWork::syncnn_svhn()),
        ("cifar10", PerfScale::Perf2, PriorWork::syncnn_cifar10()),
        (
            "cifar100",
            PerfScale::Perf4,
            PriorWork::gerlinghoff_cifar100(),
        ),
    ];
    let mut blocks = Vec::new();
    for (dataset, hw_scale, prior) in pairs {
        let ours = our_row(dataset, hw_scale)?;
        let comparison = compare(
            &prior,
            ours.throughput_fps,
            ours.power_watts,
            ours.accuracy_percent,
        );
        blocks.push(DatasetBlock {
            prior,
            ours,
            comparison,
        });
    }
    Ok(Table3Report { blocks })
}

/// Renders the report as a paper-style table.
pub fn render(report: &Table3Report) -> String {
    use crate::report::{format_table, num, ratio};
    let mut rows = Vec::new();
    for block in &report.blocks {
        let p = &block.prior;
        rows.push(vec![
            p.dataset.clone(),
            p.name.clone(),
            p.network.clone(),
            p.weight_precision.clone(),
            num(p.accuracy_percent, 1),
            p.platform.clone(),
            num(p.fmax_mhz, 0),
            num(p.power_watts, 2),
            p.latency_ms.map_or("-".to_string(), |v| num(v, 0)),
            p.energy_mj.map_or("-".to_string(), |v| num(v, 1)),
            num(p.throughput_fps, 0),
        ]);
        let o = &block.ours;
        rows.push(vec![
            o.dataset.clone(),
            format!("ours ({})", o.config),
            "VGG9".to_string(),
            "4-bit".to_string(),
            num(o.accuracy_percent, 1),
            "XCVU13P".to_string(),
            num(o.fmax_mhz, 0),
            num(o.power_watts, 2),
            num(o.latency_ms, 0),
            num(o.energy_mj, 1),
            num(o.throughput_fps, 0),
        ]);
    }
    let mut out = format_table(
        &[
            "Dataset",
            "Study",
            "Network",
            "Prec",
            "Acc [%]",
            "Platform",
            "FMax [MHz]",
            "Power [W]",
            "Latency [ms]",
            "Energy [mJ]",
            "FPS",
        ],
        &rows,
    );
    for block in &report.blocks {
        out.push_str(&format!(
            "{} vs {}: throughput {}, power {}, accuracy delta {:+.1} pp\n",
            block.ours.dataset,
            block.prior.name,
            ratio(block.comparison.throughput_ratio),
            ratio(block.comparison.power_ratio),
            block.comparison.accuracy_delta_percent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_both_rows_per_block() {
        let prior = PriorWork::gerlinghoff_cifar100();
        let ours = OurRow {
            dataset: "cifar100".into(),
            config: "perf4".into(),
            accuracy_percent: 56.9,
            fmax_mhz: 100.0,
            power_watts: 2.35,
            latency_ms: 37.0,
            energy_mj: 16.1,
            throughput_fps: 218.0,
        };
        let comparison = compare(
            &prior,
            ours.throughput_fps,
            ours.power_watts,
            ours.accuracy_percent,
        );
        let report = Table3Report {
            blocks: vec![DatasetBlock {
                prior,
                ours,
                comparison,
            }],
        };
        let text = render(&report);
        assert!(text.contains("Gerlinghoff"));
        assert!(text.contains("ours (perf4)"));
        assert!(text.contains("throughput"));
    }
}
