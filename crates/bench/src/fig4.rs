//! Fig. 4 — energy per image for fp32 vs int4 across LW / perf2 / perf4.
//!
//! The paper plots the per-image energy of the fp32 and int4 designs for the
//! three datasets and the three hardware scales, showing (a) int4 reduces the
//! average energy by 3.4× (CIFAR-10) / 1.7× (CIFAR-100), and (b) scaling
//! resources up *reduces* energy (perf4 int4 is ~28% below LW int4) because
//! latency shrinks faster than power grows.
//!
//! This experiment runs the paper-scale VGG9 on synthetic images to obtain
//! spike traces, then evaluates every (precision × scale) configuration on
//! the same traces with the accelerator model.

use crate::experiments::{paper_engine, paper_scale_images, ExperimentScale, DATASETS};
use serde::{Deserialize, Serialize};
use snn_accel::config::{HwConfig, PerfScale};
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::quant::Precision;

/// Energy of one (dataset, precision, scale) point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyPoint {
    /// Dataset name.
    pub dataset: String,
    /// Precision (`fp32` / `int4`).
    pub precision: String,
    /// Hardware scale (`LW` / `perf2` / `perf4`).
    pub scale: String,
    /// Mean dynamic energy per image in millijoules.
    pub energy_mj: f64,
    /// Mean single-image latency in milliseconds.
    pub latency_ms: f64,
    /// Total dynamic power of the design in watts.
    pub dynamic_watts: f64,
}

/// The full Fig. 4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Report {
    /// Every measured point.
    pub points: Vec<EnergyPoint>,
}

impl Fig4Report {
    /// Finds one point.
    pub fn point(&self, dataset: &str, precision: &str, scale: &str) -> Option<&EnergyPoint> {
        self.points
            .iter()
            .find(|p| p.dataset == dataset && p.precision == precision && p.scale == scale)
    }

    /// Mean fp32 / int4 energy ratio across scales for a dataset.
    pub fn energy_ratio(&self, dataset: &str) -> f64 {
        let mut ratios = Vec::new();
        for scale in ["LW", "perf2", "perf4"] {
            if let (Some(f), Some(i)) = (
                self.point(dataset, "fp32", scale),
                self.point(dataset, "int4", scale),
            ) {
                if i.energy_mj > 0.0 {
                    ratios.push(f.energy_mj / i.energy_mj);
                }
            }
        }
        if ratios.is_empty() {
            f64::NAN
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates inference / model errors.
pub fn run(scale: ExperimentScale) -> Result<Fig4Report, SnnError> {
    let encoder = Encoder::paper_direct();
    let mut points = Vec::new();
    for dataset in DATASETS {
        for precision in [Precision::Fp32, Precision::Int4] {
            // One engine runs the network batch; scaled engines share the
            // quantized weights and re-estimate the recorded traces under
            // LW / perf2 / perf4 hardware.
            let engine = paper_engine(dataset, precision, encoder)?;
            let images = paper_scale_images(dataset, scale.trace_images());
            let batch = engine.session().run_batch(&images)?;
            for hw_scale in PerfScale::all() {
                let scaled =
                    engine.with_hardware(HwConfig::paper(dataset, precision, hw_scale)?)?;
                let plan = scaled.plan();
                let mut energy = 0.0;
                let mut latency = 0.0;
                let mut watts = 0.0;
                for run in &batch.reports {
                    let report = plan.estimate(&run.traces)?;
                    energy += report.dynamic_energy_mj;
                    latency += report.latency_ms;
                    watts = report.total_dynamic_watts;
                }
                let n = batch.len().max(1) as f64;
                points.push(EnergyPoint {
                    dataset: dataset.to_string(),
                    precision: precision.to_string(),
                    scale: hw_scale.to_string(),
                    energy_mj: energy / n,
                    latency_ms: latency / n,
                    dynamic_watts: watts,
                });
            }
        }
    }
    Ok(Fig4Report { points })
}

/// Renders the report as one table per dataset.
pub fn render(report: &Fig4Report) -> String {
    use crate::report::{format_table, num};
    let mut out = String::new();
    for dataset in DATASETS {
        out.push_str(&format!("\nEnergy per image — {dataset}\n"));
        let rows: Vec<Vec<String>> = report
            .points
            .iter()
            .filter(|p| p.dataset == dataset)
            .map(|p| {
                vec![
                    p.precision.clone(),
                    p.scale.clone(),
                    num(p.energy_mj, 3),
                    num(p.latency_ms, 3),
                    num(p.dynamic_watts, 3),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &[
                "Precision",
                "Config",
                "Energy [mJ]",
                "Latency [ms]",
                "Dyn. power [W]",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "fp32 / int4 mean energy ratio: {:.2}x\n",
            report.energy_ratio(dataset)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lookup_and_ratio() {
        let report = Fig4Report {
            points: vec![
                EnergyPoint {
                    dataset: "cifar10".into(),
                    precision: "fp32".into(),
                    scale: "LW".into(),
                    energy_mj: 30.0,
                    latency_ms: 10.0,
                    dynamic_watts: 3.0,
                },
                EnergyPoint {
                    dataset: "cifar10".into(),
                    precision: "int4".into(),
                    scale: "LW".into(),
                    energy_mj: 10.0,
                    latency_ms: 8.0,
                    dynamic_watts: 1.2,
                },
            ],
        };
        assert!(report.point("cifar10", "int4", "LW").is_some());
        assert!(report.point("cifar10", "int4", "perf2").is_none());
        assert!((report.energy_ratio("cifar10") - 3.0).abs() < 1e-9);
        assert!(report.energy_ratio("svhn").is_nan());
        let text = render(&report);
        assert!(text.contains("cifar10"));
    }
}
