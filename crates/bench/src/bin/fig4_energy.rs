//! Regenerates Fig. 4: energy per image for fp32 vs int4 across the LW,
//! perf2 and perf4 configurations of all three datasets.
//!
//! Usage: `cargo run --release -p snn-bench --bin fig4_energy [--smoke] [--json]`

use snn_bench::experiments::ExperimentScale;
use snn_bench::fig4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    println!("Fig. 4 — energy per image, fp32 vs int4 (scale: {scale:?})");
    match fig4::run(scale) {
        Ok(report) => {
            println!("{}", fig4::render(&report));
            if args.iter().any(|a| a == "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(err) => eprintln!("failed to serialise report: {err}"),
                }
            }
        }
        Err(err) => {
            eprintln!("fig4 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
