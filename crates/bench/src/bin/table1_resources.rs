//! Regenerates Table I: area utilisation and power of the int4 vs fp32
//! CIFAR-100 hardware (perf2 configuration).
//!
//! Usage: `cargo run --release -p snn-bench --bin table1_resources [--json]`

use snn_bench::table1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Table I — area utilisation and power (CIFAR-100, perf2)");
    match table1::run() {
        Ok(report) => {
            println!("{}", table1::render(&report));
            if args.iter().any(|a| a == "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(err) => eprintln!("failed to serialise report: {err}"),
                }
            }
        }
        Err(err) => {
            eprintln!("table1 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
