//! Regenerates Table II: direct vs rate coding on CIFAR-10 (quantized LW
//! hardware).
//!
//! Usage: `cargo run --release -p snn-bench --bin table2_coding [--smoke] [--json]`

use snn_bench::experiments::ExperimentScale;
use snn_bench::table2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    println!("Table II — direct vs rate coding on CIFAR-10 (scale: {scale:?})");
    match table2::run(scale) {
        Ok(report) => {
            println!("{}", table2::render(&report));
            if args.iter().any(|a| a == "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(err) => eprintln!("failed to serialise report: {err}"),
                }
            }
        }
        Err(err) => {
            eprintln!("table2 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
