//! Regenerates Fig. 1: quantization effect on the total number of spikes.
//!
//! Usage: `cargo run --release -p snn-bench --bin fig1_quant_sparsity [--smoke] [--json]`

use snn_bench::experiments::ExperimentScale;
use snn_bench::fig1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    println!("Fig. 1 — quantization effect on total spikes (scale: {scale:?})");
    match fig1::run(scale) {
        Ok(report) => {
            println!("{}", fig1::render(&report));
            if args.iter().any(|a| a == "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(err) => eprintln!("failed to serialise report: {err}"),
                }
            }
        }
        Err(err) => {
            eprintln!("fig1 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
