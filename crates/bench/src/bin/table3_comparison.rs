//! Regenerates Table III: comparison of our perf2/perf4 configurations
//! against SyncNN \[15\] and Gerlinghoff et al. \[7\].
//!
//! Usage: `cargo run --release -p snn-bench --bin table3_comparison [--smoke] [--json]`

use snn_bench::experiments::ExperimentScale;
use snn_bench::table3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    println!("Table III — comparison to previous work (scale: {scale:?})");
    match table3::run(scale) {
        Ok(report) => {
            println!("{}", table3::render(&report));
            if args.iter().any(|a| a == "--json") {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(err) => eprintln!("failed to serialise report: {err}"),
                }
            }
        }
        Err(err) => {
            eprintln!("table3 experiment failed: {err}");
            std::process::exit(1);
        }
    }
}
