//! Table II — direct coding vs rate coding on CIFAR-10.
//!
//! The paper compares the two input encodings on the quantized lightweight
//! (`LW`) hardware: direct coding at 2 timesteps against rate coding at 25
//! timesteps. Direct coding needs the hybrid architecture (dense + sparse
//! cores) while the rate-coded network only needs sparse cores, so the dense
//! core is switched off for the rate-coded run. The paper reports 2.6× fewer
//! spikes, ~10% higher accuracy and 26.4× less energy per image for direct
//! coding.
//!
//! This experiment trains a scaled-down CIFAR-10-like model once per coding
//! scheme (for the accuracy column) and drives the paper-scale accelerator
//! model with activity profiles calibrated to the paper's reported spike
//! statistics (see `snn_accel::trace`) for the hardware columns (spikes,
//! latency, energy).

use crate::experiments::{paper_network, train_and_evaluate, ExperimentScale};
use serde::{Deserialize, Serialize};
use snn_accel::accelerator::HybridAccelerator;
use snn_accel::config::{HwConfig, PerfScale};
use snn_accel::trace::{synthetic_traces, total_spikes, ActivityProfile};
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::quant::Precision;

/// One coding scheme's row of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodingRow {
    /// `direct` or `rate`.
    pub coding: String,
    /// Number of timesteps.
    pub timesteps: usize,
    /// Total spikes of the paper-scale run (across all layers and timesteps).
    pub total_spikes: u64,
    /// Accuracy of the trained scaled-down model, in percent.
    pub accuracy_percent: f64,
    /// Single-image latency on the LW int4 hardware, in milliseconds.
    pub latency_ms: f64,
    /// Dynamic energy per image, in millijoules.
    pub energy_mj: f64,
}

/// The full Table II report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Report {
    /// Direct-coding row.
    pub direct: CodingRow,
    /// Rate-coding row.
    pub rate: CodingRow,
}

impl Table2Report {
    /// Energy improvement of direct over rate coding (paper: 26.4×).
    pub fn energy_improvement(&self) -> f64 {
        if self.direct.energy_mj == 0.0 {
            f64::INFINITY
        } else {
            self.rate.energy_mj / self.direct.energy_mj
        }
    }

    /// Spike ratio of rate over direct coding (paper: 2.6×).
    pub fn spike_ratio(&self) -> f64 {
        if self.direct.total_spikes == 0 {
            f64::INFINITY
        } else {
            self.rate.total_spikes as f64 / self.direct.total_spikes as f64
        }
    }
}

fn coding_row(
    encoder: Encoder,
    label: &str,
    dense_core: bool,
    scale: ExperimentScale,
) -> Result<CodingRow, SnnError> {
    // Accuracy from the trainable scaled-down model.
    let trained = train_and_evaluate("cifar10", Precision::Int4, encoder, scale)?;
    // Hardware numbers from the paper-scale geometry on the LW int4 hardware,
    // driven by the calibrated activity of a trained, quantized VGG9.
    let geometry = paper_network("cifar10")?.geometry()?;
    let mut cfg = HwConfig::paper("cifar10", Precision::Int4, PerfScale::Lw)?;
    if !dense_core {
        // The rate-coded network receives binary spikes at the input, so the
        // dense core is powered off and the input layer gets a sparse core.
        let mut cores = vec![cfg.dense_rows.max(1)];
        cores.extend(cfg.neural_cores.iter().copied());
        cfg.neural_cores = cores;
        cfg = cfg.without_dense_core();
    }
    let profile = if dense_core {
        ActivityProfile::paper_direct(geometry.len())
    } else {
        ActivityProfile::paper_rate(geometry.len())
    }
    .with_quantization_reduction(10.1)
    .with_timesteps(encoder.timesteps);
    let traces = synthetic_traces(&geometry, &profile)?;
    let accel = HybridAccelerator::from_geometry(geometry, cfg)?;
    let report = accel.estimate(&traces)?;
    Ok(CodingRow {
        coding: label.to_string(),
        timesteps: encoder.timesteps,
        total_spikes: total_spikes(&traces),
        accuracy_percent: trained.eval.accuracy * 100.0,
        latency_ms: report.latency_ms,
        energy_mj: report.dynamic_energy_mj,
    })
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Propagates training / model errors.
pub fn run(scale: ExperimentScale) -> Result<Table2Report, SnnError> {
    let rate_timesteps = match scale {
        ExperimentScale::Smoke => 5,
        ExperimentScale::Full => 25,
    };
    let direct = coding_row(Encoder::paper_direct(), "Direct", true, scale)?;
    let rate = coding_row(Encoder::rate(rate_timesteps), "Rate", false, scale)?;
    Ok(Table2Report { direct, rate })
}

/// Renders the report as a paper-style table.
pub fn render(report: &Table2Report) -> String {
    use crate::report::{format_table, num, ratio};
    let row = |r: &CodingRow, imprv: String| {
        vec![
            r.coding.clone(),
            r.timesteps.to_string(),
            r.total_spikes.to_string(),
            num(r.accuracy_percent, 2),
            num(r.latency_ms, 1),
            num(r.energy_mj, 1),
            imprv,
        ]
    };
    let mut out = format_table(
        &[
            "Coding",
            "Time Steps",
            "Total Spikes",
            "Acc. [%]",
            "Latency [ms]",
            "Energy [mJ]",
            "Energy Imprv.",
        ],
        &[
            row(&report.rate, "—".to_string()),
            row(&report.direct, ratio(report.energy_improvement())),
        ],
    );
    out.push_str(&format!(
        "\nRate/direct spike ratio: {:.2}x (paper: 2.6x); energy improvement: {:.1}x (paper: 26.4x)\n",
        report.spike_ratio(),
        report.energy_improvement()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios() {
        let report = Table2Report {
            direct: CodingRow {
                coding: "Direct".into(),
                timesteps: 2,
                total_spikes: 41_000,
                accuracy_percent: 87.0,
                latency_ms: 11.7,
                energy_mj: 7.6,
            },
            rate: CodingRow {
                coding: "Rate".into(),
                timesteps: 25,
                total_spikes: 107_000,
                accuracy_percent: 77.4,
                latency_ms: 340.0,
                energy_mj: 201.0,
            },
        };
        assert!((report.energy_improvement() - 26.4).abs() < 0.2);
        assert!((report.spike_ratio() - 2.6).abs() < 0.1);
        let text = render(&report);
        assert!(text.contains("Direct"));
        assert!(text.contains("26.4"));
    }
}
