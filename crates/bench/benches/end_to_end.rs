//! Criterion bench of the end-to-end flow: functional VGG9 inference on the
//! scaled-down network plus the accelerator performance estimate, and a
//! clock-gating ablation of the power model.

use criterion::{criterion_group, criterion_main, Criterion};
use snn_accel::accelerator::HybridAccelerator;
use snn_accel::config::HwConfig;
use snn_bench::experiments::bench_image;
use snn_core::encoding::Encoder;
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::quant::Precision;

fn end_to_end_inference(c: &mut Criterion) {
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = bench_image(&[3, 16, 16]);
    c.bench_function("vgg9_small_direct_inference", |b| {
        b.iter(|| net.run(&image, &Encoder::paper_direct()).unwrap());
    });
}

fn accelerator_estimate(c: &mut Criterion) {
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = bench_image(&[3, 16, 16]);
    let traces = net.run(&image, &Encoder::paper_direct()).unwrap().traces;
    let cfg = HwConfig::from_allocation(
        "bench",
        Precision::Int4,
        &[1, 4, 2, 4, 2, 4, 4, 2, 1],
    )
    .unwrap();
    let accel = HybridAccelerator::new(&net, cfg).unwrap();
    c.bench_function("accelerator_estimate", |b| {
        b.iter(|| accel.estimate(&traces).unwrap());
    });
}

fn clock_gating_ablation(c: &mut Criterion) {
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = bench_image(&[3, 16, 16]);
    let traces = net.run(&image, &Encoder::paper_direct()).unwrap().traces;
    let base = HwConfig::from_allocation(
        "bench",
        Precision::Int4,
        &[1, 4, 2, 4, 2, 4, 4, 2, 1],
    )
    .unwrap();
    let mut group = c.benchmark_group("clock_gating_ablation");
    for (label, cfg) in [
        ("gated", base.clone()),
        ("ungated", base.without_clock_gating()),
    ] {
        let accel = HybridAccelerator::new(&net, cfg).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| accel.estimate(&traces).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    end_to_end_inference,
    accelerator_estimate,
    clock_gating_ablation
);
criterion_main!(benches);
