//! Criterion bench of the end-to-end flow through the `Engine`/`Session`
//! facade: fused inference + accelerator estimate on the scaled-down VGG9,
//! the amortized trace re-estimation path, and a clock-gating ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use snn::core::network::{vgg9, Vgg9Config};
use snn::{Encoder, Engine, Precision};
use snn_bench::experiments::bench_image;

fn small_engine() -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("bench", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()
        .expect("engine builds")
}

fn end_to_end_inference(c: &mut Criterion) {
    let engine = small_engine();
    let mut session = engine.session();
    let image = bench_image(&[3, 16, 16]);
    c.bench_function("session_run_fused_inference", |b| {
        b.iter(|| session.run(&image).expect("run succeeds"));
    });
}

fn accelerator_estimate(c: &mut Criterion) {
    let engine = small_engine();
    let mut session = engine.session();
    let image = bench_image(&[3, 16, 16]);
    let traces = session.run(&image).expect("run succeeds").traces;
    c.bench_function("plan_estimate_recorded_traces", |b| {
        b.iter(|| session.estimate(&traces).expect("estimate succeeds"));
    });
}

fn clock_gating_ablation(c: &mut Criterion) {
    let engine = small_engine();
    let mut session = engine.session();
    let image = bench_image(&[3, 16, 16]);
    let traces = session.run(&image).expect("run succeeds").traces;
    let mut group = c.benchmark_group("clock_gating_ablation");
    for (label, hw) in [
        ("gated", engine.hardware().clone()),
        ("ungated", engine.hardware().clone().without_clock_gating()),
    ] {
        let variant = engine.with_hardware(hw).expect("hardware is valid");
        group.bench_function(label, |b| {
            b.iter(|| variant.plan().estimate(&traces).expect("estimate succeeds"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    end_to_end_inference,
    accelerator_estimate,
    clock_gating_ablation
);
criterion_main!(benches);
