//! Criterion bench of the dense core: functional throughput of the
//! weight-stationary systolic input layer, plus an ablation over the number
//! of PE rows (the design-time parameter the paper tunes per configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_accel::dense_core::DenseCore;
use snn_bench::experiments::bench_image;
use snn_core::encoding::Encoder;
use snn_core::layers::Conv2d;
use snn_core::neuron::LifParams;

fn dense_core_functional(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // Paper-scale CONV1_1: 3 -> 64 channels on a 32x32 image.
    let conv = Conv2d::with_kaiming_init(3, 64, 3, 1, 1, &mut rng).unwrap();
    let frames = Encoder::paper_direct()
        .encode(&bench_image(&[3, 32, 32]), 0)
        .unwrap();
    let mut group = c.benchmark_group("dense_core_run");
    for rows in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let core = DenseCore::new(rows);
            b.iter(|| {
                core.run(&conv, LifParams::paper_default(), &frames)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn dense_core_timing_model(c: &mut Criterion) {
    c.bench_function("dense_core_timing_model", |b| {
        let core = DenseCore::new(4);
        b.iter(|| core.timing(64, 32, 32, 2));
    });
}

criterion_group!(benches, dense_core_functional, dense_core_timing_model);
criterion_main!(benches);
