//! Criterion bench of the sparse core: event-driven convolution throughput as
//! a function of input sparsity, neural-core count and compression chunk
//! width (the ablations behind the paper's design choices in Sec. IV-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_accel::sparse_core::SparseCore;
use snn_core::layers::Conv2d;
use snn_core::network::LayerGeometry;
use snn_core::neuron::LifParams;
use snn_core::spike::SpikeVolume;

fn spike_volume(density: f64) -> SpikeVolume {
    let mut rng = StdRng::seed_from_u64(7);
    let mut vol = SpikeVolume::new(2, 16, 16, 16);
    for t in 0..2 {
        for c in 0..16 {
            for p in 0..256 {
                if rng.gen_bool(density) {
                    vol.train_mut(t, c).set(p, true);
                }
            }
        }
    }
    vol
}

fn sparse_core_vs_density(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let conv = Conv2d::with_kaiming_init(16, 32, 3, 1, 1, &mut rng).unwrap();
    let core = SparseCore::new(8, 32);
    let mut group = c.benchmark_group("sparse_core_conv_density");
    for density in [0.02_f64, 0.1, 0.3] {
        let input = spike_volume(density);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density:.2}")),
            &input,
            |b, input| {
                b.iter(|| {
                    core.run_conv(&conv, LifParams::paper_default(), input)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn sparse_core_vs_neural_cores(c: &mut Criterion) {
    // The analytic timing model ablation: NC unroll factor sweep on a
    // paper-scale CONV3_2 layer.
    let geo = LayerGeometry {
        name: "CONV3_2".to_string(),
        is_conv: true,
        in_channels: 480,
        out_channels: 504,
        in_height: 8,
        in_width: 8,
        out_height: 8,
        out_width: 8,
        kernel: 3,
        weight_count: 480 * 504 * 9,
    };
    let events = vec![6000_u64, 5500];
    let mut group = c.benchmark_group("sparse_core_timing_ncs");
    for ncs in [4usize, 18, 72] {
        group.bench_with_input(BenchmarkId::from_parameter(ncs), &ncs, |b, &ncs| {
            let core = SparseCore::new(ncs, 32);
            b.iter(|| core.conv_timing(&events, &geo));
        });
    }
    group.finish();
}

fn sparse_core_vs_chunk_width(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let conv = Conv2d::with_kaiming_init(16, 32, 3, 1, 1, &mut rng).unwrap();
    let input = spike_volume(0.1);
    let mut group = c.benchmark_group("sparse_core_chunk_width");
    for chunk in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            let core = SparseCore::new(8, chunk);
            b.iter(|| {
                core.run_conv(&conv, LifParams::paper_default(), &input)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    sparse_core_vs_density,
    sparse_core_vs_neural_cores,
    sparse_core_vs_chunk_width
);
criterion_main!(benches);
