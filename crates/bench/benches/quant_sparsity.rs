//! Criterion bench of the quantization path: fake-quantization of weight
//! tensors, whole-network precision application and the spike-count
//! comparison that drives Fig. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snn_bench::experiments::bench_image;
use snn_core::encoding::Encoder;
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::quant::{fake_quantize, Precision, QuantizedTensor};
use snn_core::tensor::Tensor;

fn fake_quantize_weights(c: &mut Criterion) {
    let weights = Tensor::from_fn(&[64, 64, 3, 3], |i| ((i as f32) * 0.001).sin() * 0.3);
    let mut group = c.benchmark_group("fake_quantize");
    for precision in [Precision::Int8, Precision::Int4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(precision),
            &precision,
            |b, &p| {
                b.iter(|| fake_quantize(&weights, p).unwrap());
            },
        );
    }
    group.finish();
}

fn quantized_tensor_roundtrip(c: &mut Criterion) {
    let weights = Tensor::from_fn(&[112, 64, 3, 3], |i| ((i as f32) * 0.0007).cos() * 0.2);
    c.bench_function("quantized_tensor_roundtrip_int4", |b| {
        b.iter(|| {
            QuantizedTensor::quantize(&weights, Precision::Int4)
                .unwrap()
                .dequantize()
        });
    });
}

fn network_precision_and_spikes(c: &mut Criterion) {
    let image = bench_image(&[3, 16, 16]);
    let mut group = c.benchmark_group("network_precision_spikes");
    for precision in [Precision::Fp32, Precision::Int4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(precision),
            &precision,
            |b, &p| {
                b.iter(|| {
                    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
                    net.apply_precision(p).unwrap();
                    let out = net.run(&image, &Encoder::paper_direct()).unwrap();
                    out.record.total_spikes()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    fake_quantize_weights,
    quantized_tensor_roundtrip,
    network_precision_and_spikes
);
criterion_main!(benches);
