//! Design-choice ablations.
//!
//! DESIGN.md calls out the architectural knobs the paper fixes at design
//! time: the sparse-core compression chunk width, the clock-gated memory
//! organisation, the weight precision and the per-layer neural-core budget.
//! This module sweeps each knob on a fixed workload and returns structured
//! results, which the `design_space_exploration` example and the Criterion
//! benches use for the ablation studies that go beyond the paper's tables.

use crate::accelerator::{HybridAccelerator, InferenceReport};
use crate::config::HwConfig;
use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::network::LayerTrace;
use snn_core::quant::Precision;

/// One point of an ablation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable value of the swept parameter.
    pub parameter: String,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in frames per second.
    pub throughput_fps: f64,
    /// Dynamic energy per image in millijoules.
    pub energy_mj: f64,
    /// Total dynamic power in watts.
    pub dynamic_watts: f64,
}

impl AblationPoint {
    fn from_report(parameter: String, report: &InferenceReport) -> Self {
        AblationPoint {
            parameter,
            latency_ms: report.latency_ms,
            throughput_fps: report.throughput_fps,
            energy_mj: report.dynamic_energy_mj,
            dynamic_watts: report.total_dynamic_watts,
        }
    }
}

/// Sweeps the ECU compression chunk width.
///
/// # Errors
///
/// Propagates accelerator errors.
pub fn sweep_chunk_width(
    base: &HwConfig,
    geometry: &[snn_core::network::LayerGeometry],
    traces: &[LayerTrace],
    widths: &[usize],
) -> Result<Vec<AblationPoint>, SnnError> {
    let mut out = Vec::with_capacity(widths.len());
    for &width in widths {
        let mut cfg = base.clone();
        cfg.chunk_bits = width;
        cfg.name = format!("{}-chunk{}", base.name, width);
        let accel = HybridAccelerator::from_geometry(geometry.to_vec(), cfg)?;
        let report = accel.estimate(traces)?;
        out.push(AblationPoint::from_report(
            format!("chunk={width}"),
            &report,
        ));
    }
    Ok(out)
}

/// Compares clock gating on vs off.
///
/// # Errors
///
/// Propagates accelerator errors.
pub fn sweep_clock_gating(
    base: &HwConfig,
    geometry: &[snn_core::network::LayerGeometry],
    traces: &[LayerTrace],
) -> Result<Vec<AblationPoint>, SnnError> {
    let mut out = Vec::with_capacity(2);
    for (label, gating) in [("gated", true), ("ungated", false)] {
        let mut cfg = base.clone();
        cfg.clock_gating = gating;
        cfg.name = format!("{}-{}", base.name, label);
        let accel = HybridAccelerator::from_geometry(geometry.to_vec(), cfg)?;
        let report = accel.estimate(traces)?;
        out.push(AblationPoint::from_report(label.to_string(), &report));
    }
    Ok(out)
}

/// Sweeps the weight precision on otherwise identical hardware.
///
/// # Errors
///
/// Propagates accelerator errors.
pub fn sweep_precision(
    base: &HwConfig,
    geometry: &[snn_core::network::LayerGeometry],
    traces: &[LayerTrace],
) -> Result<Vec<AblationPoint>, SnnError> {
    let mut out = Vec::new();
    for precision in Precision::all() {
        let mut cfg = base.clone();
        cfg.precision = precision;
        cfg.name = format!("{}-{}", base.name, precision);
        let accel = HybridAccelerator::from_geometry(geometry.to_vec(), cfg)?;
        let report = accel.estimate(traces)?;
        out.push(AblationPoint::from_report(precision.to_string(), &report));
    }
    Ok(out)
}

/// Sweeps a uniform scaling factor of the neural-core allocation
/// (the LW → perf2 → perf4 axis, generalised to any factor).
///
/// # Errors
///
/// Propagates accelerator errors.
pub fn sweep_core_scaling(
    base: &HwConfig,
    geometry: &[snn_core::network::LayerGeometry],
    traces: &[LayerTrace],
    factors: &[usize],
) -> Result<Vec<AblationPoint>, SnnError> {
    let mut out = Vec::with_capacity(factors.len());
    for &factor in factors {
        if factor == 0 {
            return Err(SnnError::config(
                "factor",
                "scaling factor must be positive",
            ));
        }
        let mut cfg = base.clone();
        cfg.dense_rows *= factor;
        for nc in &mut cfg.neural_cores {
            *nc *= factor;
        }
        cfg.name = format!("{}-x{}", base.name, factor);
        let accel = HybridAccelerator::from_geometry(geometry.to_vec(), cfg)?;
        let report = accel.estimate(traces)?;
        out.push(AblationPoint::from_report(format!("x{factor}"), &report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{synthetic_traces, ActivityProfile};
    use snn_core::network::{vgg9, Vgg9Config};

    fn setup() -> (
        HwConfig,
        Vec<snn_core::network::LayerGeometry>,
        Vec<LayerTrace>,
    ) {
        let geometry = vgg9(&Vgg9Config::cifar10_small())
            .unwrap()
            .geometry()
            .unwrap();
        let traces =
            synthetic_traces(&geometry, &ActivityProfile::paper_direct(geometry.len())).unwrap();
        let cfg =
            HwConfig::from_allocation("ablation", Precision::Int4, &[1, 8, 4, 18, 6, 6, 20, 2, 1])
                .unwrap();
        (cfg, geometry, traces)
    }

    #[test]
    fn wider_chunks_never_slow_down_compression_bound_layers() {
        let (cfg, geo, traces) = setup();
        let points = sweep_chunk_width(&cfg, &geo, &traces, &[8, 32, 128]).unwrap();
        assert_eq!(points.len(), 3);
        // Latency is monotonically non-increasing with chunk width.
        assert!(points[1].latency_ms <= points[0].latency_ms + 1e-9);
        assert!(points[2].latency_ms <= points[1].latency_ms + 1e-9);
    }

    #[test]
    fn clock_gating_saves_power_without_changing_latency() {
        let (cfg, geo, traces) = setup();
        let points = sweep_clock_gating(&cfg, &geo, &traces).unwrap();
        assert_eq!(points.len(), 2);
        let gated = &points[0];
        let ungated = &points[1];
        assert!(gated.dynamic_watts < ungated.dynamic_watts);
        assert!((gated.latency_ms - ungated.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn precision_sweep_orders_power_as_expected() {
        let (cfg, geo, traces) = setup();
        let points = sweep_precision(&cfg, &geo, &traces).unwrap();
        assert_eq!(points.len(), 3);
        let by_name = |name: &str| {
            points
                .iter()
                .find(|p| p.parameter == name)
                .unwrap()
                .dynamic_watts
        };
        assert!(by_name("fp32") > by_name("int8"));
        assert!(by_name("int8") >= by_name("int4"));
    }

    #[test]
    fn core_scaling_improves_throughput() {
        let (cfg, geo, traces) = setup();
        let points = sweep_core_scaling(&cfg, &geo, &traces, &[1, 2, 4]).unwrap();
        // Scaling never hurts, and the x1 -> x4 step must strictly improve
        // (individual steps can saturate once a layer has one core per
        // output channel on this scaled-down network).
        assert!(points[1].throughput_fps >= points[0].throughput_fps);
        assert!(points[2].throughput_fps >= points[1].throughput_fps);
        assert!(points[2].throughput_fps > points[0].throughput_fps);
        assert!(points[2].latency_ms < points[0].latency_ms);
        assert!(sweep_core_scaling(&cfg, &geo, &traces, &[0]).is_err());
    }
}
