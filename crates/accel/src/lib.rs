//! # snn-accel
//!
//! Cycle-level simulator of the paper's hybrid dense/sparse event-driven SNN
//! accelerator, together with the FPGA area, power and energy models needed
//! to regenerate the paper's hardware results (Table I, Table II, Table III,
//! Fig. 4).
//!
//! The architecture (paper Sec. IV):
//!
//! * a **dense core** — a 27-PE weight-stationary systolic array — processes
//!   the direct-coded input layer, whose activations are analog and dense;
//! * **sparse cores** — an Event Control Unit (spike-train compression with a
//!   priority encoder + address generation) feeding `N` neural cores that
//!   update one membrane potential per cycle — process every other layer
//!   event-by-event;
//! * all weights and spike trains live in on-chip BRAM / URAM / LUTRAM with
//!   clock-gated regions; no external DRAM is used.
//!
//! Modules:
//!
//! * [`config`] — hardware configurations (precision, clock, per-layer neural
//!   core allocation; the paper's `LW` / `perf2` / `perf4` presets),
//! * [`dense_core`] — functional + timing model of the systolic input layer,
//! * [`sparse_core`] — functional + timing model of the event-driven layers,
//! * [`memory`] — on-chip memory placement (LUTRAM/BRAM/URAM) and sizing,
//! * [`resources`] — the XCVU13P device model and per-layer area estimates,
//! * [`power`] — calibrated static + dynamic power model,
//! * [`energy`] — per-image energy from per-layer latency and power,
//! * [`workload`] — Eq. 3 layer workloads expressed in sparse-core cycles,
//! * [`dse`] — design-space exploration producing balanced NC allocations,
//! * [`accelerator`] — the hybrid top level tying everything together,
//! * [`baseline`] — prior-work operating points used in Table III.

pub mod ablation;
pub mod accelerator;
pub mod baseline;
pub mod config;
pub mod dense_core;
pub mod dse;
pub mod energy;
pub mod memory;
pub mod power;
pub mod resources;
pub mod sparse_core;
pub mod trace;
pub mod workload;

pub use accelerator::{EstimatePlan, HybridAccelerator, InferenceReport, LayerPerf};
pub use config::{HwConfig, PerfScale};
pub use resources::{LayerResources, XCVU13P};
