//! Layer-wise workload model expressed in sparse-core cycles.
//!
//! The paper's design-time partitioning is driven by the Eq. 3 workload model
//! evaluated on an empirical run of the trained network. This module turns
//! the per-layer spike traces produced by `snn-core` into the per-layer cycle
//! counts a *single* neural core would need, which is what the design-space
//! exploration of [`crate::dse`] divides among the available cores.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::network::LayerTrace;

/// Workload of one weight layer in single-core cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleWorkload {
    /// Layer name.
    pub name: String,
    /// `true` for convolutions.
    pub is_conv: bool,
    /// Output channels (conv) or output neurons (FC).
    pub out_channels: usize,
    /// Total input events across all timesteps.
    pub input_events: u64,
    /// Accumulation cycles a single neural core would need (Eq. 3).
    pub single_core_cycles: u64,
}

impl CycleWorkload {
    /// Accumulation cycles when the layer is unrolled over `cores` neural
    /// cores (the output channels are strided across the cores).
    pub fn cycles_with_cores(&self, cores: usize) -> u64 {
        if cores == 0 {
            return u64::MAX;
        }
        let per_core_channels = self.out_channels.div_ceil(cores) as u64;
        let per_channel = if self.out_channels == 0 {
            0
        } else {
            self.single_core_cycles / self.out_channels as u64
        };
        per_channel * per_core_channels
    }
}

/// Computes the per-layer single-core workloads from run traces.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] if a weight layer is missing its
/// geometry (which would indicate a malformed trace).
pub fn from_traces(traces: &[LayerTrace]) -> Result<Vec<CycleWorkload>, SnnError> {
    let mut out = Vec::new();
    for trace in traces {
        let Some(geo) = trace.geometry.as_ref() else {
            // Pooling layers carry no workload (an OR gate on the datapath).
            continue;
        };
        let events = trace.total_input_events();
        let single_core_cycles = if geo.is_conv {
            events * (geo.kernel * geo.kernel) as u64 * geo.out_channels as u64
        } else {
            events * geo.out_channels as u64
        };
        out.push(CycleWorkload {
            name: trace.name.clone(),
            is_conv: geo.is_conv,
            out_channels: geo.out_channels,
            input_events: events,
            single_core_cycles,
        });
    }
    if out.is_empty() {
        return Err(SnnError::config(
            "traces",
            "no weight layers found in the provided traces",
        ));
    }
    Ok(out)
}

/// The imbalance of a latency profile: the ratio of the largest per-layer
/// latency to the mean (1.0 = perfectly balanced).
pub fn imbalance(per_layer_cycles: &[u64]) -> f64 {
    if per_layer_cycles.is_empty() {
        return 1.0;
    }
    let max = *per_layer_cycles.iter().max().unwrap_or(&0) as f64;
    let mean =
        per_layer_cycles.iter().map(|&c| c as f64).sum::<f64>() / per_layer_cycles.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::encoding::Encoder;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_core::tensor::Tensor;

    fn traces() -> Vec<LayerTrace> {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.05).sin().abs());
        net.run(&image, &Encoder::direct(2)).unwrap().traces
    }

    #[test]
    fn workloads_follow_eq3() {
        let w = from_traces(&traces()).unwrap();
        assert_eq!(w.len(), 9);
        for layer in &w {
            if layer.is_conv {
                assert_eq!(
                    layer.single_core_cycles,
                    layer.input_events * 9 * layer.out_channels as u64
                );
            } else {
                assert_eq!(
                    layer.single_core_cycles,
                    layer.input_events * layer.out_channels as u64
                );
            }
        }
    }

    #[test]
    fn cycles_divide_by_core_count() {
        let w = from_traces(&traces()).unwrap();
        let conv = w.iter().find(|l| l.is_conv && l.input_events > 0).unwrap();
        let one = conv.cycles_with_cores(1);
        let four = conv.cycles_with_cores(4);
        assert!(four < one);
        assert!(four >= one / 4);
        assert_eq!(conv.cycles_with_cores(0), u64::MAX);
    }

    #[test]
    fn from_traces_rejects_empty() {
        assert!(from_traces(&[]).is_err());
    }

    #[test]
    fn imbalance_of_uniform_profile_is_one() {
        assert!((imbalance(&[100, 100, 100]) - 1.0).abs() < 1e-12);
        assert!(imbalance(&[300, 100, 100]) > 1.5);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }
}
