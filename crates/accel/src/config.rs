//! Hardware configurations.
//!
//! A [`HwConfig`] fixes everything the synthesis flow would fix: the weight
//! precision, the clock frequency, the dense core's row count, the
//! sparse-core compression chunk width and, most importantly, the per-layer
//! neural core (NC) allocation. The paper evaluates three configurations per
//! dataset — a lightweight `LW` baseline sized by the workload model and two
//! performance-scaled versions `perf2` / `perf4` — all at 100 MHz.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::quant::Precision;
use std::fmt;

/// Performance scaling of a configuration relative to the lightweight
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfScale {
    /// The lightweight baseline (`LW`).
    Lw,
    /// Resources scaled up 2× (`perf2`).
    Perf2,
    /// Resources scaled up 4× (`perf4`).
    Perf4,
}

impl PerfScale {
    /// Multiplier applied to the LW neural-core allocation.
    pub fn factor(self) -> usize {
        match self {
            PerfScale::Lw => 1,
            PerfScale::Perf2 => 2,
            PerfScale::Perf4 => 4,
        }
    }

    /// All scales in increasing-resource order.
    pub fn all() -> [PerfScale; 3] {
        [PerfScale::Lw, PerfScale::Perf2, PerfScale::Perf4]
    }
}

impl fmt::Display for PerfScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfScale::Lw => write!(f, "LW"),
            PerfScale::Perf2 => write!(f, "perf2"),
            PerfScale::Perf4 => write!(f, "perf4"),
        }
    }
}

/// A complete hardware configuration for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Human-readable name, e.g. `"cifar10-int4-LW"`.
    pub name: String,
    /// Weight/bias precision the datapaths are built for.
    pub precision: Precision,
    /// Clock frequency in MHz (100 MHz for every paper configuration).
    pub clock_mhz: f64,
    /// Number of PE rows in the dense core (each row works on one output
    /// feature map at a time).
    pub dense_rows: usize,
    /// Per-layer neural core allocation for the sparse layers. Entry 0
    /// corresponds to the first *sparse* weight layer (CONV1_2) when the
    /// dense core is enabled.
    pub neural_cores: Vec<usize>,
    /// Compression chunk width `n` (bits scanned per cycle by the ECU).
    pub chunk_bits: usize,
    /// Whether the dense core is instantiated. Rate-coded networks disable it
    /// and process the input layer on a sparse core instead (Sec. V-D).
    pub dense_core_enabled: bool,
    /// Whether the clock-gated memory regions are enabled (Sec. IV-C).
    pub clock_gating: bool,
}

impl HwConfig {
    /// Creates a configuration from an explicit 9-entry per-layer allocation
    /// (dense core rows followed by 8 sparse-layer NC counts), the layout the
    /// paper uses for its `LW` tuples.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the allocation is empty or
    /// contains a zero.
    pub fn from_allocation(
        name: impl Into<String>,
        precision: Precision,
        allocation: &[usize],
    ) -> Result<Self, SnnError> {
        if allocation.is_empty() {
            return Err(SnnError::config(
                "allocation",
                "allocation must be non-empty",
            ));
        }
        if allocation.contains(&0) {
            return Err(SnnError::config(
                "allocation",
                "every layer needs at least one core",
            ));
        }
        Ok(HwConfig {
            name: name.into(),
            precision,
            clock_mhz: 100.0,
            dense_rows: allocation[0],
            neural_cores: allocation[1..].to_vec(),
            chunk_bits: 32,
            dense_core_enabled: true,
            clock_gating: true,
        })
    }

    /// The paper's lightweight (`LW`) allocation for a dataset, from the
    /// caption of Fig. 4: SVHN `(1,7,1,8,2,4,14,1,2)`, CIFAR-10
    /// `(1,8,4,18,6,6,20,2,1)`, CIFAR-100 `(1,7,3,12,4,18,16,4,1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for an unknown dataset name.
    pub fn paper_lw(dataset: &str, precision: Precision) -> Result<Self, SnnError> {
        let allocation: &[usize] = match dataset {
            "svhn" | "svhn-like" => &[1, 7, 1, 8, 2, 4, 14, 1, 2],
            "cifar10" | "cifar10-like" => &[1, 8, 4, 18, 6, 6, 20, 2, 1],
            "cifar100" | "cifar100-like" => &[1, 7, 3, 12, 4, 18, 16, 4, 1],
            other => {
                return Err(SnnError::config(
                    "dataset",
                    format!("no paper LW configuration for dataset `{other}`"),
                ))
            }
        };
        Self::from_allocation(format!("{dataset}-{precision}-LW"), precision, allocation)
    }

    /// The paper's configuration at a given performance scale. For
    /// CIFAR-100 `perf2` the exact allocation reported with Table I,
    /// `(1,28,12,54,16,72,70,19,4)`, is used; every other combination scales
    /// the LW allocation by the scale factor, as described in Sec. V-A.
    ///
    /// # Errors
    ///
    /// Same as [`HwConfig::paper_lw`].
    pub fn paper(dataset: &str, precision: Precision, scale: PerfScale) -> Result<Self, SnnError> {
        if scale == PerfScale::Perf2 && matches!(dataset, "cifar100" | "cifar100-like") {
            let mut cfg = Self::from_allocation(
                format!("{dataset}-{precision}-perf2"),
                precision,
                &[1, 28, 12, 54, 16, 72, 70, 19, 4],
            )?;
            cfg.name = format!("{dataset}-{precision}-{scale}");
            return Ok(cfg);
        }
        let mut cfg = Self::paper_lw(dataset, precision)?;
        let f = scale.factor();
        if f > 1 {
            cfg.dense_rows *= f;
            for nc in &mut cfg.neural_cores {
                *nc *= f;
            }
        }
        cfg.name = format!("{dataset}-{precision}-{scale}");
        Ok(cfg)
    }

    /// Returns a copy with the dense core disabled (used for rate-coded
    /// networks, which receive binary spikes at the input layer).
    pub fn without_dense_core(mut self) -> Self {
        self.dense_core_enabled = false;
        self
    }

    /// Returns a copy with clock gating disabled (used by the ablation bench).
    pub fn without_clock_gating(mut self) -> Self {
        self.clock_gating = false;
        self
    }

    /// Total number of neural cores across all sparse layers.
    pub fn total_neural_cores(&self) -> usize {
        self.neural_cores.iter().sum()
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// Neural cores allocated to sparse weight layer `index` (0 = CONV1_2
    /// when the dense core is enabled, otherwise 0 = CONV1_1).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::IndexOutOfBounds`] when the index exceeds the
    /// allocation.
    pub fn cores_for_sparse_layer(&self, index: usize) -> Result<usize, SnnError> {
        self.neural_cores.get(index).copied().ok_or_else(|| {
            SnnError::index(index, self.neural_cores.len(), "neural core allocation")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_allocation_splits_dense_and_sparse() {
        let cfg = HwConfig::from_allocation("t", Precision::Int4, &[2, 8, 4]).unwrap();
        assert_eq!(cfg.dense_rows, 2);
        assert_eq!(cfg.neural_cores, vec![8, 4]);
        assert_eq!(cfg.total_neural_cores(), 12);
        assert_eq!(cfg.clock_mhz, 100.0);
        assert!(cfg.dense_core_enabled);
    }

    #[test]
    fn from_allocation_rejects_bad_input() {
        assert!(HwConfig::from_allocation("t", Precision::Int4, &[]).is_err());
        assert!(HwConfig::from_allocation("t", Precision::Int4, &[1, 0, 2]).is_err());
    }

    #[test]
    fn paper_lw_matches_fig4_captions() {
        let svhn = HwConfig::paper_lw("svhn", Precision::Int4).unwrap();
        assert_eq!(svhn.dense_rows, 1);
        assert_eq!(svhn.neural_cores, vec![7, 1, 8, 2, 4, 14, 1, 2]);
        let c10 = HwConfig::paper_lw("cifar10", Precision::Int4).unwrap();
        assert_eq!(c10.neural_cores, vec![8, 4, 18, 6, 6, 20, 2, 1]);
        let c100 = HwConfig::paper_lw("cifar100", Precision::Fp32).unwrap();
        assert_eq!(c100.neural_cores, vec![7, 3, 12, 4, 18, 16, 4, 1]);
        assert!(HwConfig::paper_lw("imagenet", Precision::Int4).is_err());
    }

    #[test]
    fn perf_scaling_multiplies_cores() {
        let lw = HwConfig::paper("cifar10", Precision::Int4, PerfScale::Lw).unwrap();
        let p4 = HwConfig::paper("cifar10", Precision::Int4, PerfScale::Perf4).unwrap();
        assert_eq!(p4.total_neural_cores(), 4 * lw.total_neural_cores());
        assert_eq!(p4.dense_rows, 4 * lw.dense_rows);
    }

    #[test]
    fn cifar100_perf2_uses_table1_allocation() {
        let cfg = HwConfig::paper("cifar100", Precision::Int4, PerfScale::Perf2).unwrap();
        assert_eq!(cfg.dense_rows, 1);
        assert_eq!(cfg.neural_cores, vec![28, 12, 54, 16, 72, 70, 19, 4]);
    }

    #[test]
    fn perf_scale_factors_and_display() {
        assert_eq!(PerfScale::Lw.factor(), 1);
        assert_eq!(PerfScale::Perf2.factor(), 2);
        assert_eq!(PerfScale::Perf4.factor(), 4);
        assert_eq!(PerfScale::Perf2.to_string(), "perf2");
        assert_eq!(PerfScale::all().len(), 3);
    }

    #[test]
    fn modifiers_toggle_features() {
        let cfg = HwConfig::paper_lw("cifar10", Precision::Int4).unwrap();
        assert!(!cfg.clone().without_dense_core().dense_core_enabled);
        assert!(!cfg.clone().without_clock_gating().clock_gating);
        assert!(cfg.clock_gating);
    }

    #[test]
    fn cores_for_sparse_layer_bounds() {
        let cfg = HwConfig::paper_lw("cifar10", Precision::Int4).unwrap();
        assert_eq!(cfg.cores_for_sparse_layer(0).unwrap(), 8);
        assert_eq!(cfg.cores_for_sparse_layer(7).unwrap(), 1);
        assert!(cfg.cores_for_sparse_layer(8).is_err());
    }

    #[test]
    fn clock_period_is_10ns_at_100mhz() {
        let cfg = HwConfig::paper_lw("svhn", Precision::Int4).unwrap();
        assert!((cfg.clock_period_ns() - 10.0).abs() < 1e-12);
    }
}
