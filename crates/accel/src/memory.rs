//! On-chip memory sizing and placement.
//!
//! The accelerator keeps *everything* on chip (Sec. IV-C): model weights and
//! biases, the membrane potentials the neural cores are working on, and the
//! spike trains passed between layers (timestep-major, Fig. 2). This module
//! decides, per layer, how many bits of each kind are needed and which memory
//! primitive they are placed in:
//!
//! * **FF / registers** — the dense core's 27 weights per output channel,
//! * **LUTRAM** — small early-layer convolution weights (notably CONV1_2),
//! * **BRAM** (36 Kb blocks) — larger conv weights, membrane potentials and
//!   spike trains; BRAM has a minimum practical data width of 8 bits, which
//!   is why int4 weights stored in BRAM only save ~4× (not 8×) vs fp32,
//! * **URAM** (288 Kb blocks) — large fp32 fully-connected weight matrices.
//!
//! The placement policy mirrors the paper's description and reproduces the
//! Table I BRAM/URAM ordering.

use serde::{Deserialize, Serialize};
use snn_core::network::LayerGeometry;
use snn_core::quant::Precision;

/// Capacity of one BRAM36 block in bits.
pub const BRAM_BITS: u64 = 36 * 1024;
/// Capacity of one URAM block in bits.
pub const URAM_BITS: u64 = 288 * 1024;
/// Bits of distributed RAM provided by one LUT configured as LUTRAM.
pub const LUTRAM_BITS_PER_LUT: u64 = 64;
/// Minimum practical BRAM data width in bits (paper Sec. V-B).
pub const BRAM_MIN_WIDTH_BITS: u32 = 8;
/// Membrane potentials are kept in fixed-point/float words of this width.
pub const MEMBRANE_BITS: u64 = 32;

/// Which memory primitive a block of data is placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Flip-flops / registers (dense-core weight registers).
    Register,
    /// Distributed LUT RAM.
    LutRam,
    /// Block RAM (36 Kb blocks).
    Bram,
    /// Ultra RAM (288 Kb blocks).
    Uram,
}

/// Memory requirements of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMemory {
    /// Layer name.
    pub name: String,
    /// Where the weights are placed.
    pub weight_kind: MemoryKind,
    /// Weight + bias storage in bits (after width padding for BRAM).
    pub weight_bits: u64,
    /// Membrane-potential working storage in bits.
    pub membrane_bits: u64,
    /// Output spike-train storage in bits (timestep-major).
    pub spike_bits: u64,
    /// Number of BRAM36 blocks used.
    pub bram_blocks: u64,
    /// Number of URAM blocks used.
    pub uram_blocks: u64,
    /// Number of LUTs consumed as LUTRAM.
    pub lutram_luts: u64,
    /// Number of flip-flops consumed as weight registers.
    pub register_ffs: u64,
}

impl LayerMemory {
    /// Total on-chip bits (weights + membranes + spikes).
    pub fn total_bits(&self) -> u64 {
        self.weight_bits + self.membrane_bits + self.spike_bits
    }
}

/// Parameters of the memory plan: which layer runs on the dense core and how
/// many neural cores / timesteps the sparse layers are provisioned for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlanParams {
    /// Weight precision.
    pub precision: Precision,
    /// Number of timesteps the spike-train buffers are sized for.
    pub timesteps: usize,
    /// Whether layer 0 runs on the dense core (direct coding).
    pub dense_core_enabled: bool,
}

/// Builds the per-layer memory requirements for a network.
///
/// `neural_cores[i]` is the NC count of the i-th *sparse* weight layer (the
/// same convention as [`crate::config::HwConfig::neural_cores`]); when the
/// dense core is disabled the first entry applies to the first layer instead.
pub fn plan(
    geometry: &[LayerGeometry],
    neural_cores: &[usize],
    params: MemoryPlanParams,
) -> Vec<LayerMemory> {
    let bits = u64::from(params.precision.bits());
    let bram_weight_bits = u64::from(params.precision.bits().max(BRAM_MIN_WIDTH_BITS));
    let mut out = Vec::with_capacity(geometry.len());
    for (i, geo) in geometry.iter().enumerate() {
        let is_dense = params.dense_core_enabled && i == 0;
        let weight_count = geo.weight_count as u64 + geo.out_channels as u64;
        let out_plane = (geo.out_height * geo.out_width) as u64;
        let ncs = if is_dense {
            0
        } else {
            let sparse_index = if params.dense_core_enabled { i - 1 } else { i };
            neural_cores.get(sparse_index).copied().unwrap_or(1) as u64
        };

        // Spike-train buffer between this layer and the next (timestep-major).
        let spike_bits = geo.out_channels as u64 * params.timesteps as u64 * out_plane;

        let (weight_kind, weight_bits, membrane_bits) = if is_dense {
            // The dense core keeps its 27 weights per output channel in
            // registers and accumulates membranes inside the PE rows.
            (MemoryKind::Register, weight_count * bits, 0)
        } else if geo.is_conv && i <= 1 && params.precision.is_quantized() {
            // Early quantized conv weights live in LUTRAM (paper Sec. IV-C).
            (
                MemoryKind::LutRam,
                weight_count * bits,
                ncs * out_plane * MEMBRANE_BITS,
            )
        } else if geo.is_conv && i <= 1 {
            // fp32 early conv weights also use LUTRAM, but need banking for
            // parallel NC access, which the resource model accounts for.
            (
                MemoryKind::LutRam,
                weight_count * bits,
                ncs * out_plane * MEMBRANE_BITS,
            )
        } else if !geo.is_conv {
            // Larger fully-connected weight matrices use URAM for its higher
            // density (paper Sec. IV-B), at every precision.
            (
                MemoryKind::Uram,
                weight_count * bits,
                geo.out_channels as u64 * MEMBRANE_BITS,
            )
        } else if geo.is_conv {
            (
                MemoryKind::Bram,
                weight_count * bram_weight_bits,
                ncs * out_plane * MEMBRANE_BITS,
            )
        } else {
            // Unreachable for the paper's networks, kept for completeness.
            (
                MemoryKind::Bram,
                weight_count * bram_weight_bits,
                geo.out_channels as u64 * MEMBRANE_BITS,
            )
        };

        // Everything that is not LUTRAM/registers/URAM lands in BRAM:
        // weights (if placed there), membranes and spike trains.
        let bram_bits = membrane_bits
            + spike_bits
            + if weight_kind == MemoryKind::Bram {
                weight_bits
            } else {
                0
            };
        let uram_bits = if weight_kind == MemoryKind::Uram {
            weight_bits
        } else {
            0
        };
        let lutram_luts = if weight_kind == MemoryKind::LutRam {
            weight_bits.div_ceil(LUTRAM_BITS_PER_LUT)
        } else {
            0
        };
        let register_ffs = if weight_kind == MemoryKind::Register {
            weight_bits
        } else {
            0
        };

        out.push(LayerMemory {
            name: geo.name.clone(),
            weight_kind,
            weight_bits,
            membrane_bits,
            spike_bits,
            bram_blocks: bram_bits.div_ceil(BRAM_BITS),
            uram_blocks: uram_bits.div_ceil(URAM_BITS),
            lutram_luts,
            register_ffs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::{vgg9, Vgg9Config};

    fn paper_geometry() -> Vec<LayerGeometry> {
        vgg9(&Vgg9Config::cifar100()).unwrap().geometry().unwrap()
    }

    fn params(precision: Precision) -> MemoryPlanParams {
        MemoryPlanParams {
            precision,
            timesteps: 2,
            dense_core_enabled: true,
        }
    }

    #[test]
    fn dense_layer_uses_registers_and_no_bram() {
        let geo = paper_geometry();
        let ncs = [28, 12, 54, 16, 72, 70, 19, 4];
        let mem = plan(&geo, &ncs, params(Precision::Int4));
        assert_eq!(mem[0].weight_kind, MemoryKind::Register);
        // CONV1_1 stores weights in registers; its spike output is accounted
        // to its BRAM buffer which is small (64 maps × 2 steps × 1024 bits).
        assert_eq!(mem[0].register_ffs, mem[0].weight_bits);
        assert_eq!(mem[0].uram_blocks, 0);
    }

    #[test]
    fn conv1_2_weights_live_in_lutram_for_int4() {
        let geo = paper_geometry();
        let ncs = [28, 12, 54, 16, 72, 70, 19, 4];
        let mem = plan(&geo, &ncs, params(Precision::Int4));
        assert_eq!(mem[1].weight_kind, MemoryKind::LutRam);
        assert!(mem[1].lutram_luts > 0);
        // The BRAM count for CONV1_2 is in the same range as Table I (~32).
        assert!(
            (10..=80).contains(&mem[1].bram_blocks),
            "CONV1_2 BRAM blocks = {}",
            mem[1].bram_blocks
        );
    }

    #[test]
    fn fc_weights_use_uram_and_shrink_with_quantization() {
        let geo = paper_geometry();
        let ncs = [28, 12, 54, 16, 72, 70, 19, 4];
        let fp32 = plan(&geo, &ncs, params(Precision::Fp32));
        let int4 = plan(&geo, &ncs, params(Precision::Int4));
        // FC1 is layer index 7; both precisions use URAM for the large FC
        // matrices (Sec. IV-B), but the quantized one needs ~8x fewer blocks.
        assert_eq!(fp32[7].weight_kind, MemoryKind::Uram);
        assert_eq!(int4[7].weight_kind, MemoryKind::Uram);
        assert!(fp32[7].uram_blocks > int4[7].uram_blocks);
        assert!(fp32[7].uram_blocks >= 7 * int4[7].uram_blocks);
    }

    #[test]
    fn int4_uses_fewer_total_memory_blocks_than_fp32() {
        let geo = paper_geometry();
        let ncs = [28, 12, 54, 16, 72, 70, 19, 4];
        let fp32 = plan(&geo, &ncs, params(Precision::Fp32));
        let int4 = plan(&geo, &ncs, params(Precision::Int4));
        let blocks =
            |m: &[LayerMemory]| -> u64 { m.iter().map(|l| l.bram_blocks + l.uram_blocks).sum() };
        let ratio = blocks(&fp32) as f64 / blocks(&int4) as f64;
        // The paper reports ~3.4× fewer BRAM/URAM blocks for int4 (Sec. V-B).
        assert!(
            ratio > 1.5,
            "expected fp32 to need several times more memory blocks, got {ratio:.2}x"
        );
    }

    #[test]
    fn more_timesteps_grow_spike_buffers_only() {
        let geo = paper_geometry();
        let ncs = [28, 12, 54, 16, 72, 70, 19, 4];
        let t2 = plan(&geo, &ncs, params(Precision::Int4));
        let mut p = params(Precision::Int4);
        p.timesteps = 25;
        let t25 = plan(&geo, &ncs, p);
        for (a, b) in t2.iter().zip(t25.iter()) {
            assert_eq!(a.weight_bits, b.weight_bits);
            assert!(b.spike_bits > a.spike_bits);
        }
    }

    #[test]
    fn membranes_scale_with_neural_cores() {
        let geo = paper_geometry();
        let small = plan(&geo, &[1, 1, 1, 1, 1, 1, 1, 1], params(Precision::Int4));
        let big = plan(&geo, &[8, 8, 8, 8, 8, 8, 8, 8], params(Precision::Int4));
        // Conv layers: membrane working set is per-NC.
        assert_eq!(big[1].membrane_bits, 8 * small[1].membrane_bits);
    }

    #[test]
    fn disabling_dense_core_places_layer0_weights_in_lutram() {
        let geo = paper_geometry();
        let ncs = [4, 28, 12, 54, 16, 72, 70, 19, 4];
        let mut p = params(Precision::Int4);
        p.dense_core_enabled = false;
        let mem = plan(&geo, &ncs, p);
        assert_ne!(mem[0].weight_kind, MemoryKind::Register);
        assert!(mem[0].membrane_bits > 0);
    }

    #[test]
    fn total_bits_is_sum_of_components() {
        let geo = paper_geometry();
        let mem = plan(&geo, &[1; 8], params(Precision::Int4));
        for l in &mem {
            assert_eq!(
                l.total_bits(),
                l.weight_bits + l.membrane_bits + l.spike_bits
            );
        }
    }
}
