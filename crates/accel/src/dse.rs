//! Design-space exploration: neural-core allocation.
//!
//! The paper derives its lightweight (`LW`) configurations by partitioning
//! the available resources so that the execution latency difference between
//! the most and the least workload-intensive layers is minimised (Sec. V-A).
//! [`allocate_balanced`] implements that policy as a greedy water-filling
//! allocation over the Eq. 3 workloads: starting from one core per layer,
//! each additional core goes to the layer with the currently largest
//! per-layer latency, until the core budget is exhausted.

use crate::workload::{imbalance, CycleWorkload};
use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;

/// Result of a design-space exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Cores per sparse weight layer, aligned with the workload order.
    pub cores: Vec<usize>,
    /// Resulting per-layer accumulation cycles.
    pub per_layer_cycles: Vec<u64>,
    /// Max/mean latency imbalance of the result.
    pub imbalance: f64,
}

impl Allocation {
    /// Total number of neural cores used.
    pub fn total_cores(&self) -> usize {
        self.cores.iter().sum()
    }

    /// The bottleneck (maximum) per-layer cycle count, which bounds the
    /// pipeline throughput.
    pub fn bottleneck_cycles(&self) -> u64 {
        self.per_layer_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Per-layer share of the total latency in percent (the paper quotes
    /// these "layer overheads" for its CIFAR-100 perf2 allocation).
    pub fn layer_overheads_percent(&self) -> Vec<f64> {
        let total: u64 = self.per_layer_cycles.iter().sum();
        if total == 0 {
            return vec![0.0; self.per_layer_cycles.len()];
        }
        self.per_layer_cycles
            .iter()
            .map(|&c| c as f64 / total as f64 * 100.0)
            .collect()
    }
}

/// Greedily allocates `budget` neural cores across the sparse layers so the
/// per-layer latencies are as balanced as possible.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] if the budget is smaller than the
/// number of layers (every layer needs at least one core) or the workload
/// list is empty.
pub fn allocate_balanced(
    workloads: &[CycleWorkload],
    budget: usize,
) -> Result<Allocation, SnnError> {
    if workloads.is_empty() {
        return Err(SnnError::config(
            "workloads",
            "no layers to allocate cores to",
        ));
    }
    if budget < workloads.len() {
        return Err(SnnError::config(
            "budget",
            format!(
                "budget {budget} is smaller than the number of layers {}",
                workloads.len()
            ),
        ));
    }
    let mut cores = vec![1usize; workloads.len()];
    let mut remaining = budget - workloads.len();
    while remaining > 0 {
        // Give the next core to the layer with the largest current latency,
        // but only if an extra core actually helps (it cannot exceed the
        // layer's output channel count).
        let mut best: Option<(usize, u64)> = None;
        for (i, w) in workloads.iter().enumerate() {
            if cores[i] >= w.out_channels.max(1) {
                continue;
            }
            let current = w.cycles_with_cores(cores[i]);
            match best {
                Some((_, c)) if c >= current => {}
                _ => best = Some((i, current)),
            }
        }
        match best {
            Some((i, _)) => {
                cores[i] += 1;
                remaining -= 1;
            }
            None => break,
        }
    }
    let per_layer_cycles: Vec<u64> = workloads
        .iter()
        .zip(cores.iter())
        .map(|(w, &c)| w.cycles_with_cores(c))
        .collect();
    Ok(Allocation {
        imbalance: imbalance(&per_layer_cycles),
        cores,
        per_layer_cycles,
    })
}

/// Searches for the smallest core budget whose balanced allocation brings the
/// latency imbalance below `target_imbalance` (or stops at `max_budget`).
/// This reproduces how the paper finds its lightweight configurations.
///
/// # Errors
///
/// Propagates errors from [`allocate_balanced`].
pub fn lightweight_allocation(
    workloads: &[CycleWorkload],
    target_imbalance: f64,
    max_budget: usize,
) -> Result<Allocation, SnnError> {
    let mut budget = workloads.len();
    loop {
        let alloc = allocate_balanced(workloads, budget)?;
        if alloc.imbalance <= target_imbalance || budget >= max_budget {
            return Ok(alloc);
        }
        budget += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::from_traces;
    use snn_core::encoding::Encoder;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_core::tensor::Tensor;

    fn workloads() -> Vec<CycleWorkload> {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.07).cos().abs());
        let traces = net.run(&image, &Encoder::direct(2)).unwrap().traces;
        from_traces(&traces).unwrap()
    }

    #[test]
    fn allocation_uses_exactly_the_budget_when_useful() {
        let w = workloads();
        let alloc = allocate_balanced(&w, 40).unwrap();
        assert!(alloc.total_cores() <= 40);
        assert!(alloc.total_cores() >= w.len());
        assert_eq!(alloc.cores.len(), w.len());
        assert!(alloc.cores.iter().all(|&c| c >= 1));
    }

    #[test]
    fn allocation_rejects_insufficient_budget() {
        let w = workloads();
        assert!(allocate_balanced(&w, w.len() - 1).is_err());
        assert!(allocate_balanced(&[], 10).is_err());
    }

    #[test]
    fn more_budget_never_hurts_the_bottleneck() {
        let w = workloads();
        let small = allocate_balanced(&w, 12).unwrap();
        let large = allocate_balanced(&w, 60).unwrap();
        assert!(large.bottleneck_cycles() <= small.bottleneck_cycles());
    }

    #[test]
    fn heavier_layers_receive_more_cores() {
        let w = workloads();
        let alloc = allocate_balanced(&w, 50).unwrap();
        // The busiest layer (largest single-core cycles) must get at least as
        // many cores as the least busy one.
        let busiest = w
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.single_core_cycles)
            .unwrap()
            .0;
        let laziest = w
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.single_core_cycles)
            .unwrap()
            .0;
        assert!(alloc.cores[busiest] >= alloc.cores[laziest]);
    }

    #[test]
    fn balancing_reduces_imbalance() {
        let w = workloads();
        let uniform = allocate_balanced(&w, w.len()).unwrap();
        let balanced = allocate_balanced(&w, 64).unwrap();
        assert!(balanced.imbalance <= uniform.imbalance);
    }

    #[test]
    fn lightweight_allocation_reaches_target_or_budget() {
        let w = workloads();
        let alloc = lightweight_allocation(&w, 1.6, 128).unwrap();
        assert!(alloc.imbalance <= 1.6 || alloc.total_cores() >= 128);
    }

    #[test]
    fn layer_overheads_sum_to_100_percent() {
        let w = workloads();
        let alloc = allocate_balanced(&w, 32).unwrap();
        let sum: f64 = alloc.layer_overheads_percent().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }
}
