//! Dense core: the weight-stationary systolic array that processes the
//! direct-coded input layer.
//!
//! The dense core (paper Fig. 2) has a fixed column of 27 processing elements
//! (3 input channels × 3×3 filter taps) and a configurable number of PE
//! *rows*; each row works on one output feature map at a time and the rows
//! tile across the output channels. Partial sums flow horizontally, image
//! pixels flow vertically, and one output membrane potential per row is
//! produced per cycle once the pipeline is full. The Activ unit then adds the
//! bias, applies the LIF leak/threshold and writes the spike train to BRAM.
//!
//! [`DenseCore::run`] is the functional model (bit-true against
//! `Conv2d::forward` + the LIF population) and [`DenseCore::timing`] the
//! cycle model used by the accelerator's performance estimates.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::layers::Conv2d;
use snn_core::neuron::{lif_update, LifParams};
use snn_core::spike::{SpikeTrain, SpikeVolume};
use snn_core::tensor::Tensor;

/// Cycle counts of one dense-core layer execution (all timesteps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseTiming {
    /// Cycles spent streaming pixels through the PE array.
    pub compute_cycles: u64,
    /// Cycles spent filling the systolic pipeline (once per output-channel
    /// tile and timestep).
    pub pipeline_fill_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
}

/// The dense core configuration: number of PE rows.
///
/// # Example
///
/// ```
/// use snn_accel::dense_core::DenseCore;
///
/// let core = DenseCore::new(4);
/// assert_eq!(core.rows(), 4);
/// assert_eq!(core.pes(), 27 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseCore {
    rows: usize,
}

impl DenseCore {
    /// Creates a dense core with `rows` PE rows (each of 27 PEs).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "dense core needs at least one PE row");
        DenseCore { rows }
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of processing elements (27 per row).
    pub fn pes(&self) -> usize {
        27 * self.rows
    }

    /// Functionally executes the input convolution layer over all encoded
    /// frames, producing the output spike volume exactly as the hardware
    /// would (conv → bias → LIF with soft reset), together with the cycle
    /// count of the systolic schedule.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the convolution.
    pub fn run(
        &self,
        conv: &Conv2d,
        lif: LifParams,
        frames: &[Tensor],
    ) -> Result<(SpikeVolume, DenseTiming), SnnError> {
        if frames.is_empty() {
            return Err(SnnError::config(
                "frames",
                "at least one input frame is required",
            ));
        }
        let out_shape = conv.output_shape(frames[0].shape())?;
        let (out_c, out_h, out_w) = (out_shape[0], out_shape[1], out_shape[2]);
        let mut volume = SpikeVolume::new(frames.len(), out_c, out_h, out_w);
        // Persistent LIF state across timesteps, exactly like the Activ unit's
        // membrane registers.
        let mut membrane = vec![0.0_f32; out_c * out_h * out_w];
        let mut fired = vec![false; out_c * out_h * out_w];
        for (t, frame) in frames.iter().enumerate() {
            // The systolic array computes the same dot products as the im2col
            // convolution; the schedule (row tiling over output channels) only
            // affects the cycle count, not the arithmetic result.
            let currents = conv.forward(frame)?;
            let data = currents.as_slice();
            for c in 0..out_c {
                let mut train = SpikeTrain::new(out_h * out_w);
                for p in 0..out_h * out_w {
                    let idx = c * out_h * out_w + p;
                    let (u, spike) = lif_update(lif, membrane[idx], data[idx], fired[idx]);
                    membrane[idx] = u;
                    fired[idx] = spike;
                    if spike {
                        train.set(p, true);
                    }
                }
                volume.set_train(t, c, train)?;
            }
        }
        let timing = self.timing(out_c, out_h, out_w, frames.len());
        Ok((volume, timing))
    }

    /// Cycle count of the systolic schedule for a layer with `out_channels`
    /// output feature maps of `out_h × out_w` pixels over `timesteps` frames.
    ///
    /// Each group of `rows` output channels is processed in one pass over the
    /// image (one output pixel per row per cycle); every pass pays the
    /// pipeline fill latency of the 27-deep PE column plus the staggering
    /// registers.
    pub fn timing(
        &self,
        out_channels: usize,
        out_h: usize,
        out_w: usize,
        timesteps: usize,
    ) -> DenseTiming {
        let tiles = out_channels.div_ceil(self.rows) as u64;
        let pixels = (out_h * out_w) as u64;
        let fill_per_tile = 27 + self.rows as u64;
        let compute = tiles * pixels * timesteps as u64;
        let fill = tiles * fill_per_tile * timesteps as u64;
        DenseTiming {
            compute_cycles: compute,
            pipeline_fill_cycles: fill,
            total_cycles: compute + fill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_core::encoding::Encoder;
    use snn_core::neuron::LifPopulation;

    fn sample_conv() -> Conv2d {
        let mut rng = StdRng::seed_from_u64(42);
        Conv2d::with_kaiming_init(3, 8, 3, 1, 1, &mut rng).unwrap()
    }

    #[test]
    #[should_panic(expected = "at least one PE row")]
    fn zero_rows_panics() {
        DenseCore::new(0);
    }

    #[test]
    fn pes_are_27_per_row() {
        assert_eq!(DenseCore::new(1).pes(), 27);
        assert_eq!(DenseCore::new(3).pes(), 81);
    }

    #[test]
    fn functional_output_matches_reference_lif() {
        // The dense core must be bit-true against Conv2d::forward followed by
        // the reference LIF population.
        let conv = sample_conv();
        let lif = LifParams::paper_default();
        let image = Tensor::from_fn(&[3, 8, 8], |i| ((i as f32) * 0.037).sin().abs());
        let frames = Encoder::direct(3).encode(&image, 0).unwrap();

        let core = DenseCore::new(2);
        let (volume, _) = core.run(&conv, lif, &frames).unwrap();

        let mut reference = LifPopulation::new(8 * 8 * 8, lif);
        for (t, frame) in frames.iter().enumerate() {
            let current = conv.forward(frame).unwrap();
            let spikes = reference.step_tensor(&current).unwrap();
            for c in 0..8 {
                for p in 0..64 {
                    let expected = spikes.as_slice()[c * 64 + p] > 0.0;
                    assert_eq!(
                        volume.train(t, c).get(p),
                        expected,
                        "mismatch at t={t} c={c} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_rejects_empty_frames() {
        let core = DenseCore::new(1);
        assert!(core.run(&sample_conv(), LifParams::default(), &[]).is_err());
    }

    #[test]
    fn timing_scales_inversely_with_rows() {
        let one = DenseCore::new(1).timing(64, 32, 32, 2);
        let four = DenseCore::new(4).timing(64, 32, 32, 2);
        assert!(four.total_cycles < one.total_cycles);
        // 64 channels / 1 row = 64 tiles of 1024 pixels × 2 timesteps.
        assert_eq!(one.compute_cycles, 64 * 1024 * 2);
        assert_eq!(four.compute_cycles, 16 * 1024 * 2);
    }

    #[test]
    fn timing_includes_pipeline_fill_per_tile() {
        let t = DenseCore::new(2).timing(4, 4, 4, 1);
        // 2 tiles × (27 + 2) fill cycles.
        assert_eq!(t.pipeline_fill_cycles, 2 * 29);
        assert_eq!(t.total_cycles, t.compute_cycles + t.pipeline_fill_cycles);
    }

    #[test]
    fn timing_scales_linearly_with_timesteps() {
        let a = DenseCore::new(2).timing(16, 16, 16, 1);
        let b = DenseCore::new(2).timing(16, 16, 16, 4);
        assert_eq!(b.total_cycles, 4 * a.total_cycles);
    }
}
