//! The hybrid accelerator top level.
//!
//! [`HybridAccelerator`] ties the per-layer models together: the dense core
//! for the direct-coded input layer, one sparse core per remaining weight
//! layer (sized by the configuration's NC allocation), the on-chip memory
//! plan, and the power/energy models. Given the spike traces of an inference
//! run it produces an [`InferenceReport`] with per-layer cycles, power and
//! energy plus the end-to-end latency, throughput and device utilisation —
//! the numbers behind Table I, Table II, Table III and Fig. 4.

use crate::config::HwConfig;
use crate::dense_core::DenseCore;
use crate::energy;
use crate::power;
use crate::resources::{estimate_layers, ResourceEstimate};
use crate::sparse_core::SparseCore;
use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::network::{LayerGeometry, LayerTrace, SnnNetwork};
use snn_core::quant::Precision;

/// Per-layer performance summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Layer name.
    pub name: String,
    /// Neural cores allocated (0 for the dense layer).
    pub neural_cores: usize,
    /// Input events consumed across all timesteps.
    pub input_events: u64,
    /// Cycles spent on this layer for one image.
    pub cycles: u64,
    /// Busy time in milliseconds.
    pub busy_ms: f64,
    /// Instance-level dynamic power in watts.
    pub dynamic_watts: f64,
    /// Dynamic energy in millijoules.
    pub dynamic_mj: f64,
    /// LUTs used by the layer instance (logic + LUTRAM).
    pub luts: u64,
    /// Flip-flops used.
    pub ffs: u64,
    /// BRAM36 blocks used.
    pub bram: u64,
    /// URAM blocks used.
    pub uram: u64,
}

/// Full report of one simulated inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Name of the hardware configuration.
    pub config_name: String,
    /// Weight precision.
    pub precision: Precision,
    /// Number of timesteps the trace covers.
    pub timesteps: usize,
    /// Per-layer breakdown.
    pub layers: Vec<LayerPerf>,
    /// End-to-end single-image latency in milliseconds (sum of layer times).
    pub latency_ms: f64,
    /// Steady-state throughput in frames per second when images stream
    /// through the layer pipeline (bounded by the slowest layer).
    pub throughput_fps: f64,
    /// Total dynamic energy per image in millijoules.
    pub dynamic_energy_mj: f64,
    /// Total energy per image including the static share, in millijoules.
    pub total_energy_mj: f64,
    /// Sum of per-layer dynamic power in watts.
    pub total_dynamic_watts: f64,
    /// Device static power in watts.
    pub static_watts: f64,
    /// Total spikes consumed by the sparse layers.
    pub total_input_events: u64,
    /// Whether the design fits the XCVU13P.
    pub fits_device: bool,
    /// The resource estimate behind the per-layer numbers.
    pub resources: ResourceEstimate,
}

impl InferenceReport {
    /// The bottleneck layer (largest cycle count), if any.
    pub fn bottleneck(&self) -> Option<&LayerPerf> {
        self.layers.iter().max_by_key(|l| l.cycles)
    }
}

/// The hybrid dense/sparse accelerator instance for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridAccelerator {
    config: HwConfig,
    geometry: Vec<LayerGeometry>,
}

impl HybridAccelerator {
    /// Builds an accelerator for `network` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the configuration's NC
    /// allocation does not cover every sparse layer of the network.
    pub fn new(network: &SnnNetwork, config: HwConfig) -> Result<Self, SnnError> {
        Self::from_geometry(network.geometry()?, config)
    }

    /// Builds an accelerator directly from a layer geometry.
    ///
    /// # Errors
    ///
    /// Same as [`HybridAccelerator::new`].
    pub fn from_geometry(geometry: Vec<LayerGeometry>, config: HwConfig) -> Result<Self, SnnError> {
        let sparse_layers = if config.dense_core_enabled {
            geometry.len().saturating_sub(1)
        } else {
            geometry.len()
        };
        if config.neural_cores.len() < sparse_layers {
            return Err(SnnError::config(
                "neural_cores",
                format!(
                    "allocation has {} entries but the network needs {sparse_layers}",
                    config.neural_cores.len()
                ),
            ));
        }
        if geometry.is_empty() {
            return Err(SnnError::config("geometry", "network has no weight layers"));
        }
        Ok(HybridAccelerator { config, geometry })
    }

    /// The hardware configuration.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// The weight-layer geometry the accelerator was built for.
    pub fn geometry(&self) -> &[LayerGeometry] {
        &self.geometry
    }

    /// Area estimate for spike buffers sized to `timesteps`.
    ///
    /// # Errors
    ///
    /// Propagates resource-model errors.
    pub fn resources(&self, timesteps: usize) -> Result<ResourceEstimate, SnnError> {
        estimate_layers(&self.geometry, &self.config, timesteps)
    }

    /// Precomputes the trace-independent part of an estimate — the resource
    /// and power models for spike buffers sized to `timesteps` — so repeated
    /// estimates (sessions, batches) share one plan instead of re-deriving
    /// area and power per image.
    ///
    /// # Errors
    ///
    /// Propagates resource-model errors.
    pub fn plan(&self, timesteps: usize) -> Result<EstimatePlan, SnnError> {
        let resources = estimate_layers(&self.geometry, &self.config, timesteps.max(1))?;
        let power_est =
            power::estimate(&resources, self.config.precision, self.config.clock_gating);
        let watts: Vec<f64> = power_est.layers.iter().map(|l| l.dynamic_watts).collect();
        // Memoize the trace-independent half of the per-layer cycle models:
        // the dense core's timing depends only on geometry + timesteps (one
        // fixed cycle count for every image of the batch), and each sparse
        // layer's core configuration (NC count, chunk width) never changes
        // between traces. Per estimate only the spike-count folding remains.
        let cycle_models = self
            .geometry
            .iter()
            .enumerate()
            .map(|(i, geo)| {
                if self.config.dense_core_enabled && i == 0 {
                    Ok(LayerCycleModel::Dense {
                        cycles: DenseCore::new(self.config.dense_rows)
                            .timing(geo.out_channels, geo.out_height, geo.out_width, timesteps)
                            .total_cycles,
                    })
                } else {
                    let sparse_index = if self.config.dense_core_enabled {
                        i - 1
                    } else {
                        i
                    };
                    let ncs = self.config.cores_for_sparse_layer(sparse_index)?;
                    Ok(LayerCycleModel::Sparse {
                        core: SparseCore::new(ncs, self.config.chunk_bits),
                    })
                }
            })
            .collect::<Result<_, SnnError>>()?;
        let names: Vec<String> = self.geometry.iter().map(|g| g.name.clone()).collect();
        Ok(EstimatePlan {
            config: self.config.clone(),
            geometry: self.geometry.clone(),
            timesteps,
            total_dynamic_watts: power_est.total_dynamic_watts(),
            static_watts: power_est.static_watts,
            watts,
            resources,
            cycle_models,
            names,
        })
    }

    /// Estimates latency, throughput, power and energy for one inference
    /// described by the spike traces of a `snn-core` network run.
    ///
    /// The traces may include pooling layers; only weight layers (those with
    /// geometry) are consumed, in order. This derives a fresh [`EstimatePlan`]
    /// per call; hot paths should create the plan once via
    /// [`HybridAccelerator::plan`] and call [`EstimatePlan::estimate`].
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the number of weight-layer
    /// traces does not match the accelerator's geometry.
    pub fn estimate(&self, traces: &[LayerTrace]) -> Result<InferenceReport, SnnError> {
        let timesteps = traces
            .iter()
            .find(|t| t.geometry.is_some())
            .map(|t| t.input_events.len())
            .unwrap_or(0);
        self.plan(timesteps)?.estimate(traces)
    }
}

/// The precomputed, trace-independent part of an accelerator estimate: the
/// hardware configuration, layer geometry, and the resource/power models for
/// a fixed timestep count. Created by [`HybridAccelerator::plan`] and shared
/// across every image of a session or batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatePlan {
    config: HwConfig,
    geometry: Vec<LayerGeometry>,
    timesteps: usize,
    total_dynamic_watts: f64,
    static_watts: f64,
    watts: Vec<f64>,
    resources: ResourceEstimate,
    cycle_models: Vec<LayerCycleModel>,
    names: Vec<String>,
}

/// The precomputed (trace-independent) cycle model of one weight layer: the
/// dense input layer's cycle count is fixed for the plan's timestep count and
/// shared by every image of a batch, while a sparse layer keeps its
/// configured core and only folds the per-trace spike counts per estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LayerCycleModel {
    /// Dense systolic input layer: workload is input-independent.
    Dense {
        /// Total cycles for one image at the plan's timestep count.
        cycles: u64,
    },
    /// Event-driven sparse layer: cycles depend on the trace's spike counts.
    Sparse {
        /// The configured sparse-core instance.
        core: SparseCore,
    },
}

impl EstimatePlan {
    /// The timestep count the spike buffers were sized for.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// The hardware configuration behind the plan.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// The precomputed resource estimate.
    pub fn resources(&self) -> &ResourceEstimate {
        &self.resources
    }

    /// Estimates one inference from its spike traces, reusing the plan's
    /// precomputed area/power models. Only the per-layer cycle and energy
    /// calculation runs per call.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the number of weight-layer
    /// traces does not match the geometry, or [`SnnError::InvalidConfig`] if
    /// the traces cover a different timestep count than the plan was sized
    /// for.
    pub fn estimate(&self, traces: &[LayerTrace]) -> Result<InferenceReport, SnnError> {
        let weight_traces: Vec<&LayerTrace> =
            traces.iter().filter(|t| t.geometry.is_some()).collect();
        if weight_traces.len() != self.geometry.len() {
            return Err(SnnError::shape(
                &[self.geometry.len()],
                &[weight_traces.len()],
                "EstimatePlan::estimate trace count",
            ));
        }
        let timesteps = weight_traces
            .first()
            .map(|t| t.input_events.len())
            .unwrap_or(0);
        if timesteps != self.timesteps {
            return Err(SnnError::config(
                "timesteps",
                format!(
                    "plan sized for {} timesteps but traces cover {timesteps}; re-plan first",
                    self.timesteps
                ),
            ));
        }

        // Per-layer cycles: fold the trace's spike counts through the
        // memoized cycle models — the only per-trace work left in a batch.
        let mut cycles = Vec::with_capacity(self.geometry.len());
        for ((geo, trace), model) in self
            .geometry
            .iter()
            .zip(weight_traces.iter())
            .zip(self.cycle_models.iter())
        {
            let layer_cycles = match model {
                LayerCycleModel::Dense { cycles } => *cycles,
                LayerCycleModel::Sparse { core } => {
                    if geo.is_conv {
                        core.conv_timing(&trace.input_events, geo).total_cycles
                    } else {
                        core.linear_timing(&trace.input_events, geo).total_cycles
                    }
                }
            };
            cycles.push(layer_cycles);
        }

        let energy_est = energy::estimate(
            &self.names,
            &cycles,
            &self.watts,
            self.config.clock_mhz,
            self.static_watts,
        );

        let layers: Vec<LayerPerf> = self
            .geometry
            .iter()
            .enumerate()
            .map(|(i, geo)| LayerPerf {
                name: geo.name.clone(),
                neural_cores: self.resources.layers[i].neural_cores,
                input_events: weight_traces[i].total_input_events(),
                cycles: cycles[i],
                busy_ms: energy_est.layers[i].busy_ms,
                dynamic_watts: self.watts[i],
                dynamic_mj: energy_est.layers[i].dynamic_mj,
                luts: self.resources.layers[i].luts,
                ffs: self.resources.layers[i].ffs,
                bram: self.resources.layers[i].bram,
                uram: self.resources.layers[i].uram,
            })
            .collect();

        let latency_ms: f64 = layers.iter().map(|l| l.busy_ms).sum();
        let bottleneck = cycles.iter().copied().max().unwrap_or(0);
        let throughput_fps = if bottleneck == 0 {
            0.0
        } else {
            self.config.clock_mhz * 1e6 / bottleneck as f64
        };
        Ok(InferenceReport {
            config_name: self.config.name.clone(),
            precision: self.config.precision,
            timesteps,
            latency_ms,
            throughput_fps,
            dynamic_energy_mj: energy_est.dynamic_mj(),
            total_energy_mj: energy_est.total_mj(),
            total_dynamic_watts: self.total_dynamic_watts,
            static_watts: self.static_watts,
            total_input_events: layers.iter().map(|l| l.input_events).sum(),
            fits_device: self.resources.fits(),
            resources: self.resources.clone(),
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfScale;
    use snn_core::encoding::Encoder;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_core::tensor::Tensor;

    fn small_traces(encoder: &Encoder) -> (SnnNetwork, Vec<LayerTrace>) {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.011).sin().abs());
        let traces = net.run(&image, encoder).unwrap().traces;
        (net, traces)
    }

    fn small_config(precision: Precision) -> HwConfig {
        HwConfig::from_allocation("test-small", precision, &[1, 4, 2, 4, 2, 4, 4, 2, 1]).unwrap()
    }

    #[test]
    fn accelerator_builds_for_paper_scale_network() {
        let net = vgg9(&Vgg9Config::cifar100()).unwrap();
        let cfg = HwConfig::paper("cifar100", Precision::Int4, PerfScale::Perf2).unwrap();
        let accel = HybridAccelerator::new(&net, cfg).unwrap();
        assert_eq!(accel.geometry().len(), 9);
        assert!(accel.resources(2).unwrap().fits());
    }

    #[test]
    fn new_rejects_short_allocation() {
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let cfg = HwConfig::from_allocation("short", Precision::Int4, &[1, 4, 2]).unwrap();
        assert!(HybridAccelerator::new(&net, cfg).is_err());
    }

    #[test]
    fn estimate_produces_consistent_report() {
        let (net, traces) = small_traces(&Encoder::direct(2));
        let accel = HybridAccelerator::new(&net, small_config(Precision::Int4)).unwrap();
        let report = accel.estimate(&traces).unwrap();
        assert_eq!(report.layers.len(), 9);
        assert_eq!(report.timesteps, 2);
        assert!(report.latency_ms > 0.0);
        assert!(report.throughput_fps > 0.0);
        assert!(report.dynamic_energy_mj > 0.0);
        assert!(report.total_energy_mj > report.dynamic_energy_mj);
        assert!(report.fits_device);
        // Latency equals the sum of the layer busy times.
        let sum: f64 = report.layers.iter().map(|l| l.busy_ms).sum();
        assert!((report.latency_ms - sum).abs() < 1e-9);
        // The bottleneck layer bounds the throughput.
        let b = report.bottleneck().unwrap();
        assert!((report.throughput_fps - 1e8 / b.cycles as f64).abs() < 1e-6);
    }

    #[test]
    fn shared_plan_estimates_identically_to_fresh_plans() {
        // A batch of different images estimated through ONE memoized plan
        // must report exactly what per-image fresh plans (the un-memoized
        // path) report — the estimate memoization may not change a single
        // bit of the hardware numbers.
        let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let accel = HybridAccelerator::new(&net, small_config(Precision::Int4)).unwrap();
        let shared = accel.plan(2).unwrap();
        for phase in 0..4 {
            let image = Tensor::from_fn(&[3, 16, 16], |i| {
                (((i + phase * 131) as f32) * 0.011).sin().abs()
            });
            let traces = net.run(&image, &Encoder::direct(2)).unwrap().traces;
            let memoized = shared.estimate(&traces).unwrap();
            let fresh = accel.estimate(&traces).unwrap();
            assert_eq!(memoized, fresh, "image {phase}");
        }
    }

    #[test]
    fn identical_workloads_share_the_dense_cycle_model() {
        // Two runs of the same image produce identical traces; the shared
        // plan must fold them to identical reports (and the dense input
        // layer's cycles are the plan's precomputed constant).
        let (net, traces) = small_traces(&Encoder::direct(2));
        let accel = HybridAccelerator::new(&net, small_config(Precision::Int4)).unwrap();
        let plan = accel.plan(2).unwrap();
        let a = plan.estimate(&traces).unwrap();
        let b = plan.estimate(&traces).unwrap();
        assert_eq!(a, b);
        match &plan.cycle_models[0] {
            LayerCycleModel::Dense { cycles } => {
                assert_eq!(*cycles, a.layers[0].cycles);
            }
            other => panic!("input layer should use the dense model, got {other:?}"),
        }
        drop(net);
    }

    #[test]
    fn estimate_rejects_mismatched_traces() {
        let (net, traces) = small_traces(&Encoder::direct(1));
        let other = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let accel = HybridAccelerator::new(&other, small_config(Precision::Int4)).unwrap();
        // Drop one trace to break the correspondence.
        assert!(accel.estimate(&traces[..traces.len() - 1]).is_err());
        drop(net);
    }

    #[test]
    fn int4_beats_fp32_on_energy_for_the_same_trace() {
        let (net, traces) = small_traces(&Encoder::direct(2));
        let int4 = HybridAccelerator::new(&net, small_config(Precision::Int4)).unwrap();
        let fp32 = HybridAccelerator::new(&net, small_config(Precision::Fp32)).unwrap();
        let ri = int4.estimate(&traces).unwrap();
        let rf = fp32.estimate(&traces).unwrap();
        assert!(
            rf.dynamic_energy_mj > ri.dynamic_energy_mj,
            "fp32 {:.4} mJ should exceed int4 {:.4} mJ",
            rf.dynamic_energy_mj,
            ri.dynamic_energy_mj
        );
        assert!(rf.total_dynamic_watts > ri.total_dynamic_watts);
    }

    #[test]
    fn more_neural_cores_reduce_latency() {
        let (net, traces) = small_traces(&Encoder::direct(2));
        let lw = small_config(Precision::Int4);
        let mut perf4 = lw.clone();
        perf4.dense_rows *= 4;
        for nc in &mut perf4.neural_cores {
            *nc *= 4;
        }
        let a = HybridAccelerator::new(&net, lw)
            .unwrap()
            .estimate(&traces)
            .unwrap();
        let b = HybridAccelerator::new(&net, perf4)
            .unwrap()
            .estimate(&traces)
            .unwrap();
        assert!(b.latency_ms < a.latency_ms);
        assert!(b.throughput_fps > a.throughput_fps);
    }

    #[test]
    fn rate_coding_without_dense_core_still_estimates() {
        let (net, traces) = small_traces(&Encoder::rate(5));
        let cfg = HwConfig::from_allocation(
            "rate",
            Precision::Int4,
            // Without the dense core, all nine layers need sparse allocations.
            &[2, 4, 2, 4, 2, 4, 4, 2, 1, 1],
        )
        .unwrap()
        .without_dense_core();
        let accel = HybridAccelerator::new(&net, cfg).unwrap();
        let report = accel.estimate(&traces).unwrap();
        assert_eq!(report.timesteps, 5);
        assert!(report.latency_ms > 0.0);
        assert_eq!(report.layers[0].neural_cores, 4);
    }

    #[test]
    fn more_timesteps_increase_latency_and_energy() {
        let (net, t2) = small_traces(&Encoder::direct(2));
        let (_, t6) = small_traces(&Encoder::direct(6));
        let accel = HybridAccelerator::new(&net, small_config(Precision::Int4)).unwrap();
        let a = accel.estimate(&t2).unwrap();
        let b = accel.estimate(&t6).unwrap();
        assert!(b.latency_ms > a.latency_ms);
        assert!(b.dynamic_energy_mj > a.dynamic_energy_mj);
    }
}
