//! Static and dynamic power model.
//!
//! The paper reports instance-level dynamic power per layer (Table I) and a
//! device static power of 3.13 W (int4) / 3.22 W (fp32). This module models
//! those numbers with an activity-based estimate:
//!
//! ```text
//! P_dyn(layer) = a_lut · LUT + a_ff · FF + a_bram · BRAM_active + a_uram · URAM_active
//! ```
//!
//! where the *active* memory block count is halved when the clock-gated
//! two-region memory organisation of Sec. IV-C is enabled. The coefficients
//! in [`calib`] are fitted to the int4 rows of Table I (e.g. CONV3_2: 5.7 K
//! LUT, 5.2 K FF, 216 BRAM → 0.293 W) and reproduce every int4 row within a
//! small factor, which is sufficient to preserve the paper's ratios
//! (fp32 ≈ 2.8 × int4 dynamic power).

use crate::resources::{LayerResources, ResourceEstimate};
use serde::{Deserialize, Serialize};
use snn_core::quant::Precision;

/// Calibration constants of the power model, fitted to Table I.
pub mod calib {
    /// Dynamic power per logic LUT at 100 MHz, in watts.
    /// Fitted so CONV1_2 int4 (11.7 K LUT) contributes ≈ 0.12 W of LUT power.
    pub const WATT_PER_LUT: f64 = 10e-6;
    /// Dynamic power per LUT used as distributed weight RAM. Weight LUTRAM
    /// toggles only when its word is read, so its activity is far below a
    /// logic LUT's — this keeps the fp32 CONV1_2 power near the published
    /// 0.25 W despite its very large LUTRAM footprint.
    pub const WATT_PER_LUTRAM_LUT: f64 = 1.0e-6;
    /// Dynamic power per flip-flop at 100 MHz, in watts.
    pub const WATT_PER_FF: f64 = 5e-6;
    /// Dynamic power per *active* BRAM36 block at 100 MHz, in watts.
    /// Fitted so CONV3_2 int4 (216 BRAM, gated to ~108 active) contributes
    /// ≈ 0.16 W.
    pub const WATT_PER_BRAM: f64 = 1.5e-3;
    /// Dynamic power per *active* URAM block at 100 MHz, in watts.
    pub const WATT_PER_URAM: f64 = 2.2e-3;
    /// Device static power for the quantized design (paper Table I footnote).
    pub const STATIC_WATT_INT: f64 = 3.13;
    /// Device static power for the fp32 design (paper Table I footnote).
    pub const STATIC_WATT_FP32: f64 = 3.22;
}

/// Per-layer dynamic power estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPower {
    /// Layer name.
    pub name: String,
    /// Instance-level dynamic power in watts.
    pub dynamic_watts: f64,
}

/// Whole-accelerator power estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Per-layer dynamic power, in network order.
    pub layers: Vec<LayerPower>,
    /// Device static power in watts.
    pub static_watts: f64,
}

impl PowerEstimate {
    /// Total dynamic power (all layers busy), in watts.
    pub fn total_dynamic_watts(&self) -> f64 {
        self.layers.iter().map(|l| l.dynamic_watts).sum()
    }

    /// Total power (dynamic + static), in watts.
    pub fn total_watts(&self) -> f64 {
        self.total_dynamic_watts() + self.static_watts
    }
}

/// Dynamic power of a single layer given its resources.
///
/// `clock_gating` halves the active BRAM/URAM count, modelling the MSB-split
/// two-region organisation where only one region receives clock edges.
pub fn layer_dynamic_power(resources: &LayerResources, clock_gating: bool) -> f64 {
    let gate = if clock_gating { 0.5 } else { 1.0 };
    let logic_luts = resources.luts.saturating_sub(resources.lutram_luts);
    calib::WATT_PER_LUT * logic_luts as f64
        + calib::WATT_PER_LUTRAM_LUT * resources.lutram_luts as f64
        + calib::WATT_PER_FF * resources.ffs as f64
        + calib::WATT_PER_BRAM * resources.bram as f64 * gate
        + calib::WATT_PER_URAM * resources.uram as f64 * gate
}

/// Static power of the device for a given weight precision.
pub fn static_power(precision: Precision) -> f64 {
    if precision.is_quantized() {
        calib::STATIC_WATT_INT
    } else {
        calib::STATIC_WATT_FP32
    }
}

/// Estimates per-layer and total power for a resource estimate.
pub fn estimate(
    resources: &ResourceEstimate,
    precision: Precision,
    clock_gating: bool,
) -> PowerEstimate {
    PowerEstimate {
        layers: resources
            .layers
            .iter()
            .map(|l| LayerPower {
                name: l.name.clone(),
                dynamic_watts: layer_dynamic_power(l, clock_gating),
            })
            .collect(),
        static_watts: static_power(precision),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HwConfig, PerfScale};
    use crate::resources::estimate_layers;
    use snn_core::network::{vgg9, Vgg9Config};

    fn table1_power(precision: Precision) -> PowerEstimate {
        let geo = vgg9(&Vgg9Config::cifar100()).unwrap().geometry().unwrap();
        let cfg = HwConfig::paper("cifar100", precision, PerfScale::Perf2).unwrap();
        let res = estimate_layers(&geo, &cfg, 2).unwrap();
        estimate(&res, precision, cfg.clock_gating)
    }

    #[test]
    fn static_power_matches_table1_footnote() {
        assert_eq!(static_power(Precision::Int4), 3.13);
        assert_eq!(static_power(Precision::Int8), 3.13);
        assert_eq!(static_power(Precision::Fp32), 3.22);
    }

    #[test]
    fn int4_dynamic_total_lands_near_table1() {
        let p = table1_power(Precision::Int4);
        let total = p.total_dynamic_watts();
        // Table I: 1.231 W total dynamic for the int4 CIFAR-100 perf2 design.
        assert!(
            (0.4..=4.0).contains(&total),
            "int4 dynamic power {total:.3} W out of the expected band"
        );
    }

    #[test]
    fn fp32_needs_more_dynamic_power_than_int4() {
        let int4 = table1_power(Precision::Int4).total_dynamic_watts();
        let fp32 = table1_power(Precision::Fp32).total_dynamic_watts();
        let ratio = fp32 / int4;
        // Table I reports 2.82×; accept anything comfortably above 1.5×.
        assert!(
            ratio > 1.5,
            "fp32/int4 dynamic power ratio {ratio:.2} too small"
        );
    }

    #[test]
    fn clock_gating_reduces_memory_power() {
        let geo = vgg9(&Vgg9Config::cifar100()).unwrap().geometry().unwrap();
        let cfg = HwConfig::paper("cifar100", Precision::Int4, PerfScale::Perf2).unwrap();
        let res = estimate_layers(&geo, &cfg, 2).unwrap();
        let gated = estimate(&res, Precision::Int4, true).total_dynamic_watts();
        let ungated = estimate(&res, Precision::Int4, false).total_dynamic_watts();
        assert!(gated < ungated);
    }

    #[test]
    fn per_layer_power_is_positive_and_total_is_sum() {
        let p = table1_power(Precision::Int4);
        assert!(p.layers.iter().all(|l| l.dynamic_watts > 0.0));
        let sum: f64 = p.layers.iter().map(|l| l.dynamic_watts).sum();
        assert!((p.total_dynamic_watts() - sum).abs() < 1e-12);
        assert!(p.total_watts() > p.total_dynamic_watts());
    }

    #[test]
    fn memory_heavy_layers_dominate_power() {
        // CONV3_2 (index 5) has far more BRAM than CONV2_1 (index 2) in the
        // paper's Table I and should therefore burn more dynamic power.
        let p = table1_power(Precision::Int4);
        assert!(p.layers[5].dynamic_watts > p.layers[2].dynamic_watts);
    }
}
