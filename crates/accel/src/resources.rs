//! FPGA device and logic-area model.
//!
//! The paper's accelerator is synthesised on a Xilinx Virtex UltraScale+
//! XCVU13P. [`XCVU13P`] captures the device capacities used for the
//! utilisation rows of Table I; [`estimate_layers`] combines the logic cost
//! of the dense core / sparse cores with the memory plan of
//! [`crate::memory`] into per-layer LUT/FF/BRAM/URAM estimates.
//!
//! All logic-cost constants are calibrated against the published Table I
//! numbers; each constant's rationale is documented next to it in
//! [`calib`].

use crate::config::HwConfig;
use crate::memory::{self, LayerMemory, MemoryKind, MemoryPlanParams};
use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::network::LayerGeometry;

/// Calibration constants of the logic-area model.
///
/// Each constant is anchored to a row of Table I (int4/fp32 hardware for
/// CIFAR-100, perf2 allocation) so that the reproduction's per-layer area
/// estimates land in the same range as the published post-synthesis results.
pub mod calib {
    /// LUTs per processing element of the dense core at int4 (shift-and-add
    /// constant multiplier instead of a DSP, Sec. IV-D).
    pub const DENSE_PE_LUT_INT: f64 = 40.0;
    /// LUTs per dense-core PE at fp32 (LUT-mapped floating-point MAC).
    pub const DENSE_PE_LUT_FP32: f64 = 420.0;
    /// Flip-flops per dense-core PE (weight register + staggering register).
    pub const DENSE_PE_FF: f64 = 64.0;
    /// LUT cost of the dense core's control unit (address generation,
    /// staggering routine, tiling FSM).
    pub const DENSE_CONTROL_LUT: f64 = 450.0;
    /// FF cost of the dense core's control unit.
    pub const DENSE_CONTROL_FF: f64 = 350.0;
    /// LUT cost of the dense core's Activ unit per PE row.
    pub const DENSE_ACTIV_LUT: f64 = 150.0;

    /// Base LUT cost of one sparse core's Event Control Unit (compression
    /// routine, bit-reset, FSM). Calibrated from the low-NC rows of Table I
    /// (CONV2_1: 1.7 K LUT at 12 NCs).
    pub const ECU_BASE_LUT: f64 = 300.0;
    /// Additional ECU LUTs per compression chunk bit (priority encoder).
    pub const ECU_LUT_PER_CHUNK_BIT: f64 = 4.0;
    /// FF cost of one ECU.
    pub const ECU_FF: f64 = 250.0;
    /// LUTs per neural core at int4/int8 (accumulate + shift-and-add
    /// de-quantisation + Activ routine). Calibrated so 72 NCs ≈ 5.7 K LUT
    /// (Table I, CONV3_2 int4).
    pub const NC_LUT_INT: f64 = 72.0;
    /// LUTs per neural core at fp32 (floating-point accumulate). Calibrated
    /// so 72 NCs ≈ 45 K LUT (Table I, CONV3_2 fp32).
    pub const NC_LUT_FP32: f64 = 620.0;
    /// FFs per neural core.
    pub const NC_FF: f64 = 72.0;
    /// Extra FFs per neural core at fp32.
    pub const NC_FF_FP32: f64 = 170.0;
    /// Replication (banking) factor divisor for fp32 LUTRAM weight storage:
    /// LUTRAM has two read ports, so `ceil(ncs / 2)` copies are needed for
    /// parallel NC access. Quantized weights are narrow enough to share one
    /// bank pair, matching the 8× LUT gap of Table I for CONV1_2.
    pub const LUTRAM_PORTS: f64 = 2.0;
}

/// Device capacities of the Xilinx Virtex UltraScale+ XCVU13P.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XCVU13P {
    /// Total 6-input LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total BRAM36 blocks.
    pub bram36: u64,
    /// Total URAM blocks.
    pub uram: u64,
}

impl XCVU13P {
    /// The production device capacities.
    pub const fn device() -> Self {
        XCVU13P {
            luts: 1_728_000,
            ffs: 3_456_000,
            bram36: 2_688,
            uram: 1_280,
        }
    }
}

impl Default for XCVU13P {
    fn default() -> Self {
        Self::device()
    }
}

/// Per-layer resource estimate (logic + memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerResources {
    /// Layer name.
    pub name: String,
    /// Total LUTs (logic + LUTRAM).
    pub luts: u64,
    /// Of those, LUTs used as distributed weight RAM (they toggle far less
    /// than logic LUTs, which the power model accounts for).
    pub lutram_luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// BRAM36 blocks.
    pub bram: u64,
    /// URAM blocks.
    pub uram: u64,
    /// Neural cores allocated (0 for the dense layer).
    pub neural_cores: usize,
    /// The memory breakdown behind the totals.
    pub memory: LayerMemory,
}

/// Whole-accelerator resource estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Per-layer estimates, in network order.
    pub layers: Vec<LayerResources>,
    /// The device the utilisation is reported against.
    pub device: XCVU13P,
}

impl ResourceEstimate {
    /// Total LUTs.
    pub fn total_luts(&self) -> u64 {
        self.layers.iter().map(|l| l.luts).sum()
    }

    /// Total flip-flops.
    pub fn total_ffs(&self) -> u64 {
        self.layers.iter().map(|l| l.ffs).sum()
    }

    /// Total BRAM36 blocks.
    pub fn total_bram(&self) -> u64 {
        self.layers.iter().map(|l| l.bram).sum()
    }

    /// Total URAM blocks.
    pub fn total_uram(&self) -> u64 {
        self.layers.iter().map(|l| l.uram).sum()
    }

    /// LUT utilisation as a fraction of the device.
    pub fn lut_utilization(&self) -> f64 {
        self.total_luts() as f64 / self.device.luts as f64
    }

    /// BRAM utilisation as a fraction of the device.
    pub fn bram_utilization(&self) -> f64 {
        self.total_bram() as f64 / self.device.bram36 as f64
    }

    /// URAM utilisation as a fraction of the device.
    pub fn uram_utilization(&self) -> f64 {
        self.total_uram() as f64 / self.device.uram as f64
    }

    /// Whether the design fits the device.
    pub fn fits(&self) -> bool {
        self.total_luts() <= self.device.luts
            && self.total_ffs() <= self.device.ffs
            && self.total_bram() <= self.device.bram36
            && self.total_uram() <= self.device.uram
    }
}

/// Estimates per-layer resources for a network geometry under a hardware
/// configuration, sized for `timesteps` presentation steps.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] if the configuration does not provide
/// a neural-core allocation for every sparse layer.
pub fn estimate_layers(
    geometry: &[LayerGeometry],
    config: &HwConfig,
    timesteps: usize,
) -> Result<ResourceEstimate, SnnError> {
    let sparse_layers = if config.dense_core_enabled {
        geometry.len().saturating_sub(1)
    } else {
        geometry.len()
    };
    if config.neural_cores.len() < sparse_layers {
        return Err(SnnError::config(
            "neural_cores",
            format!(
                "allocation covers {} sparse layers but the network has {sparse_layers}",
                config.neural_cores.len()
            ),
        ));
    }
    let mem = memory::plan(
        geometry,
        &config.neural_cores,
        MemoryPlanParams {
            precision: config.precision,
            timesteps,
            dense_core_enabled: config.dense_core_enabled,
        },
    );
    let quantized = config.precision.is_quantized();
    let mut layers = Vec::with_capacity(geometry.len());
    for (i, (geo, layer_mem)) in geometry.iter().zip(mem).enumerate() {
        let is_dense = config.dense_core_enabled && i == 0;
        let (logic_luts, logic_ffs, ncs) = if is_dense {
            let pes = 27.0 * config.dense_rows as f64;
            let pe_lut = if quantized {
                calib::DENSE_PE_LUT_INT
            } else {
                calib::DENSE_PE_LUT_FP32
            };
            let luts = pes * pe_lut
                + calib::DENSE_CONTROL_LUT
                + calib::DENSE_ACTIV_LUT * config.dense_rows as f64;
            let ffs = pes * calib::DENSE_PE_FF + calib::DENSE_CONTROL_FF;
            (luts, ffs, 0usize)
        } else {
            let sparse_index = if config.dense_core_enabled { i - 1 } else { i };
            let ncs = config.cores_for_sparse_layer(sparse_index)?;
            let nc_lut = if quantized {
                calib::NC_LUT_INT
            } else {
                calib::NC_LUT_FP32
            };
            let nc_ff = calib::NC_FF + if quantized { 0.0 } else { calib::NC_FF_FP32 };
            let luts = calib::ECU_BASE_LUT
                + calib::ECU_LUT_PER_CHUNK_BIT * config.chunk_bits as f64
                + nc_lut * ncs as f64;
            let ffs = calib::ECU_FF + nc_ff * ncs as f64;
            (luts, ffs, ncs)
        };

        // LUTRAM storage: fp32 banks are replicated for parallel NC access.
        let lutram_luts = if layer_mem.weight_kind == MemoryKind::LutRam && !quantized {
            let banks = (ncs as f64 / calib::LUTRAM_PORTS).ceil().max(1.0);
            (layer_mem.lutram_luts as f64 * banks) as u64
        } else {
            layer_mem.lutram_luts
        };

        layers.push(LayerResources {
            name: geo.name.clone(),
            luts: logic_luts as u64 + lutram_luts,
            lutram_luts,
            ffs: logic_ffs as u64 + layer_mem.register_ffs,
            bram: layer_mem.bram_blocks,
            uram: layer_mem.uram_blocks,
            neural_cores: ncs,
            memory: layer_mem,
        });
    }
    Ok(ResourceEstimate {
        layers,
        device: XCVU13P::device(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfScale;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_core::quant::Precision;

    fn paper_geometry() -> Vec<LayerGeometry> {
        vgg9(&Vgg9Config::cifar100()).unwrap().geometry().unwrap()
    }

    fn table1_config(precision: Precision) -> HwConfig {
        HwConfig::paper("cifar100", precision, PerfScale::Perf2).unwrap()
    }

    #[test]
    fn device_capacities_are_the_xcvu13p() {
        let d = XCVU13P::device();
        assert_eq!(d.bram36, 2688);
        assert_eq!(d.uram, 1280);
        assert!(d.luts > 1_000_000);
        assert_eq!(XCVU13P::default(), d);
    }

    #[test]
    fn estimate_covers_every_layer() {
        let est = estimate_layers(&paper_geometry(), &table1_config(Precision::Int4), 2).unwrap();
        assert_eq!(est.layers.len(), 9);
        assert!(est.fits(), "int4 design must fit the XCVU13P");
    }

    #[test]
    fn estimate_rejects_short_allocation() {
        let cfg = HwConfig::from_allocation("t", Precision::Int4, &[1, 4, 4]).unwrap();
        assert!(estimate_layers(&paper_geometry(), &cfg, 2).is_err());
    }

    #[test]
    fn int4_uses_substantially_fewer_luts_than_fp32() {
        let geo = paper_geometry();
        let int4 = estimate_layers(&geo, &table1_config(Precision::Int4), 2).unwrap();
        let fp32 = estimate_layers(&geo, &table1_config(Precision::Fp32), 2).unwrap();
        let ratio = fp32.total_luts() as f64 / int4.total_luts() as f64;
        // Paper: ~8× fewer LUTs for int4 (Sec. V-B). Accept the right order.
        assert!(
            ratio > 3.0,
            "fp32/int4 LUT ratio should be large, got {ratio:.2}"
        );
    }

    #[test]
    fn int4_uses_fewer_memory_blocks_than_fp32() {
        let geo = paper_geometry();
        let int4 = estimate_layers(&geo, &table1_config(Precision::Int4), 2).unwrap();
        let fp32 = estimate_layers(&geo, &table1_config(Precision::Fp32), 2).unwrap();
        let int4_blocks = int4.total_bram() + int4.total_uram();
        let fp32_blocks = fp32.total_bram() + fp32.total_uram();
        let ratio = fp32_blocks as f64 / int4_blocks as f64;
        assert!(
            ratio > 1.5,
            "fp32/int4 memory block ratio should exceed 1.5, got {ratio:.2}"
        );
    }

    #[test]
    fn int4_totals_land_near_table1() {
        let est = estimate_layers(&paper_geometry(), &table1_config(Precision::Int4), 2).unwrap();
        // Table I: 109.7K LUT and 979 BRAM for the int4 hardware. The model
        // should land within a small factor on LUTs and BRAMs; our VGG9 keeps
        // its (larger) fully-connected matrices in URAM, so a non-zero URAM
        // count is expected (see DESIGN.md §6 on the FC storage deviation).
        let luts = est.total_luts();
        let bram = est.total_bram();
        // The paper's per-layer LUT rows sum to ~39.5K (its stated 109.7K
        // total includes shared infrastructure the model does not attribute
        // to layers), so the expected band is centred on the per-layer sum.
        assert!(
            (15_000..=350_000).contains(&luts),
            "int4 LUT total {luts} out of expected band"
        );
        assert!(
            (250..=2688).contains(&bram),
            "int4 BRAM total {bram} out of expected band"
        );
        assert!(est.total_uram() <= est.device.uram);
    }

    #[test]
    fn dense_layer_has_no_neural_cores_and_no_bram_weights() {
        let est = estimate_layers(&paper_geometry(), &table1_config(Precision::Int4), 2).unwrap();
        assert_eq!(est.layers[0].neural_cores, 0);
        assert_eq!(est.layers[0].memory.weight_kind, MemoryKind::Register);
    }

    #[test]
    fn more_dense_rows_increase_dense_layer_area() {
        let geo = paper_geometry();
        let mut small = table1_config(Precision::Int4);
        small.dense_rows = 1;
        let mut big = table1_config(Precision::Int4);
        big.dense_rows = 4;
        let a = estimate_layers(&geo, &small, 2).unwrap();
        let b = estimate_layers(&geo, &big, 2).unwrap();
        assert!(b.layers[0].luts > a.layers[0].luts);
        assert!(b.layers[0].ffs > a.layers[0].ffs);
    }

    #[test]
    fn utilization_fractions_are_consistent() {
        let est = estimate_layers(&paper_geometry(), &table1_config(Precision::Int4), 2).unwrap();
        assert!((0.0..1.0).contains(&est.lut_utilization()));
        assert!((0.0..1.0).contains(&est.bram_utilization()));
        assert_eq!(
            est.lut_utilization(),
            est.total_luts() as f64 / est.device.luts as f64
        );
    }
}
