//! Prior-work baselines used in the Table III comparison.
//!
//! The paper compares its accelerator against two published designs:
//!
//! * **SyncNN** (Panchapakesan et al., TRETS 2022, reference \[15\]): an
//!   event-driven accelerator with quantization support on a Xilinx ZCU102,
//!   reported at 200 MHz with 0.4 W dynamic power, 65 FPS on SVHN and 62 FPS
//!   on CIFAR-10 for a 4-bit VGG11;
//! * **Gerlinghoff et al.** (DATE 2022, reference \[7\]): a resource-efficient
//!   accelerator supporting emerging neural encodings on the same XCVU13P,
//!   reported at 115 MHz, 4.9 W, 210 ms latency and 4.7 FPS on CIFAR-100 for
//!   a 32-bit VGG11.
//!
//! These are *reported operating points*, not re-implementations: Table III
//! only needs the published rows to compute the throughput/power ratios. The
//! module also provides the comparison arithmetic used by the Table III
//! harness.

use serde::{Deserialize, Serialize};

/// One published operating point of a prior-work accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorWork {
    /// Short identifier, e.g. `"SyncNN"`.
    pub name: String,
    /// Dataset the row refers to.
    pub dataset: String,
    /// Network evaluated by the prior work.
    pub network: String,
    /// Weight precision reported.
    pub weight_precision: String,
    /// Reported accuracy in percent.
    pub accuracy_percent: f64,
    /// Target platform.
    pub platform: String,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Reported (dynamic) power in watts.
    pub power_watts: f64,
    /// Reported latency in milliseconds, if published.
    pub latency_ms: Option<f64>,
    /// Reported energy per image in millijoules, if published.
    pub energy_mj: Option<f64>,
    /// Reported throughput in frames per second.
    pub throughput_fps: f64,
}

impl PriorWork {
    /// SyncNN's SVHN row of Table III.
    pub fn syncnn_svhn() -> Self {
        PriorWork {
            name: "SyncNN".to_string(),
            dataset: "SVHN".to_string(),
            network: "VGG11".to_string(),
            weight_precision: "4-bit".to_string(),
            accuracy_percent: 89.0,
            platform: "ZCU102".to_string(),
            fmax_mhz: 200.0,
            power_watts: 0.4,
            latency_ms: None,
            energy_mj: None,
            throughput_fps: 65.0,
        }
    }

    /// SyncNN's CIFAR-10 row of Table III.
    pub fn syncnn_cifar10() -> Self {
        PriorWork {
            dataset: "CIFAR10".to_string(),
            accuracy_percent: 78.0,
            throughput_fps: 62.0,
            ..Self::syncnn_svhn()
        }
    }

    /// Gerlinghoff et al.'s CIFAR-100 row of Table III.
    pub fn gerlinghoff_cifar100() -> Self {
        PriorWork {
            name: "Gerlinghoff et al.".to_string(),
            dataset: "CIFAR100".to_string(),
            network: "VGG11".to_string(),
            weight_precision: "32-bit".to_string(),
            accuracy_percent: 60.1,
            platform: "XCVU13P".to_string(),
            fmax_mhz: 115.0,
            power_watts: 4.9,
            latency_ms: Some(210.0),
            energy_mj: None,
            throughput_fps: 4.7,
        }
    }

    /// All Table III prior-work rows.
    pub fn table3_rows() -> Vec<PriorWork> {
        vec![
            Self::syncnn_svhn(),
            Self::syncnn_cifar10(),
            Self::gerlinghoff_cifar100(),
        ]
    }
}

/// Comparison between our accelerator and one prior-work operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The prior work compared against.
    pub baseline: PriorWork,
    /// Our throughput divided by theirs (> 1 means we are faster).
    pub throughput_ratio: f64,
    /// Our power divided by theirs (> 1 means we draw more power).
    pub power_ratio: f64,
    /// Our accuracy minus theirs, in percentage points.
    pub accuracy_delta_percent: f64,
}

/// Compares our operating point with a prior work row.
pub fn compare(
    baseline: &PriorWork,
    our_throughput_fps: f64,
    our_power_watts: f64,
    our_accuracy_percent: f64,
) -> Comparison {
    Comparison {
        baseline: baseline.clone(),
        throughput_ratio: if baseline.throughput_fps > 0.0 {
            our_throughput_fps / baseline.throughput_fps
        } else {
            f64::INFINITY
        },
        power_ratio: if baseline.power_watts > 0.0 {
            our_power_watts / baseline.power_watts
        } else {
            f64::INFINITY
        },
        accuracy_delta_percent: our_accuracy_percent - baseline.accuracy_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_the_paper() {
        let rows = PriorWork::table3_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].throughput_fps, 65.0);
        assert_eq!(rows[1].throughput_fps, 62.0);
        assert_eq!(rows[2].throughput_fps, 4.7);
        assert_eq!(rows[2].power_watts, 4.9);
        assert_eq!(rows[2].platform, "XCVU13P");
        assert_eq!(rows[0].platform, "ZCU102");
    }

    #[test]
    fn comparison_ratios_are_computed_correctly() {
        // The paper's headline: 51× throughput and ~2× lower power vs [7].
        let base = PriorWork::gerlinghoff_cifar100();
        let cmp = compare(&base, 218.0, 2.35, 56.9);
        assert!((cmp.throughput_ratio - 218.0 / 4.7).abs() < 1e-9);
        assert!(cmp.throughput_ratio > 40.0);
        assert!(cmp.power_ratio < 0.55);
        assert!((cmp.accuracy_delta_percent + 3.2).abs() < 0.2);
    }

    #[test]
    fn comparison_handles_zero_baselines() {
        let mut base = PriorWork::syncnn_svhn();
        base.throughput_fps = 0.0;
        base.power_watts = 0.0;
        let cmp = compare(&base, 100.0, 1.0, 90.0);
        assert!(cmp.throughput_ratio.is_infinite());
        assert!(cmp.power_ratio.is_infinite());
    }

    #[test]
    fn syncnn_rows_differ_only_in_dataset_fields() {
        let svhn = PriorWork::syncnn_svhn();
        let c10 = PriorWork::syncnn_cifar10();
        assert_eq!(svhn.platform, c10.platform);
        assert_eq!(svhn.power_watts, c10.power_watts);
        assert_ne!(svhn.dataset, c10.dataset);
        assert_ne!(svhn.accuracy_percent, c10.accuracy_percent);
    }
}
