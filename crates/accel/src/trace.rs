//! Synthetic activity traces.
//!
//! The hardware experiments (Table II, Table III, Fig. 4) are driven by the
//! per-layer spike counts of a *trained* VGG9. Training the full-scale
//! network is outside this reproduction's budget, so this module provides a
//! calibrated substitute: [`synthetic_traces`] fabricates the per-layer
//! [`LayerTrace`]s for a given geometry from per-layer firing densities, and
//! [`ActivityProfile::paper_direct`] / [`ActivityProfile::paper_rate`] derive
//! those densities from the activity the paper itself reports (e.g. ≈41 K
//! total spikes for the direct-coded CIFAR-10 VGG9 at T = 2, ≈107 K for the
//! rate-coded one at T = 25, and the 6–15 % int4 reductions of Fig. 1).
//!
//! Every harness states which activity source it uses; see EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::network::{LayerGeometry, LayerTrace};

/// Per-layer firing activity of a network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Fraction of neurons firing per timestep, per weight layer
    /// (index-aligned with the geometry).
    pub layer_density: Vec<f64>,
    /// Number of timesteps.
    pub timesteps: usize,
    /// Fraction of non-zero analog pixels feeding the (dense) input layer.
    pub input_density: f64,
}

impl ActivityProfile {
    /// A uniform profile: every layer fires `density` of its neurons each
    /// timestep.
    pub fn uniform(layers: usize, density: f64, timesteps: usize) -> Self {
        ActivityProfile {
            layer_density: vec![density.clamp(0.0, 1.0); layers],
            timesteps,
            input_density: 1.0,
        }
    }

    /// Activity of the paper's direct-coded, trained VGG9 (Table II reports
    /// ≈41 K spikes over T = 2 for CIFAR-10, i.e. a few percent of the
    /// ~1.1 M neuron-timesteps): early conv layers fire the most, deeper
    /// layers become progressively sparser.
    pub fn paper_direct(layers: usize) -> Self {
        let mut density = Vec::with_capacity(layers);
        for i in 0..layers {
            // Geometric decay from ~6% at the first spiking layer down to a
            // fraction of a percent at the readout, matching the qualitative
            // layer-wise sparsity the paper's workload model relies on.
            density.push(0.06 * 0.65_f64.powi(i as i32) + 0.002);
        }
        ActivityProfile {
            layer_density: density,
            timesteps: 2,
            input_density: 0.95,
        }
    }

    /// Activity of the paper's rate-coded VGG9 (Table II: ≈107 K spikes over
    /// T = 25 — fewer spikes *per timestep* than direct coding, but many more
    /// timesteps).
    pub fn paper_rate(layers: usize) -> Self {
        let mut profile = Self::paper_direct(layers);
        for d in &mut profile.layer_density {
            // Per-timestep activity drops roughly 5x while T grows 12.5x,
            // which reproduces the paper's 2.6x total-spike ratio.
            *d /= 5.0;
        }
        profile.timesteps = 25;
        profile.input_density = 0.35;
        profile
    }

    /// Applies the Fig. 1 quantization effect: an int4 model fires
    /// `reduction_percent` fewer spikes than its fp32 counterpart.
    #[must_use]
    pub fn with_quantization_reduction(mut self, reduction_percent: f64) -> Self {
        let factor = (1.0 - reduction_percent / 100.0).clamp(0.0, 1.0);
        for d in &mut self.layer_density {
            *d *= factor;
        }
        self
    }

    /// Scales the number of timesteps (densities are per timestep and stay
    /// unchanged).
    #[must_use]
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = timesteps;
        self
    }
}

/// Builds per-layer traces for `geometry` from an activity profile.
///
/// Layer `i`'s *output* spikes per timestep are `density[i] × output_neurons`;
/// layer `i + 1`'s input events are layer `i`'s output spikes (with pooling
/// collapsing at most 4 spikes into 1, approximated by a 0.55 survival factor
/// after the layers the paper pools after). The input layer's events are the
/// non-zero analog pixels (direct coding) repeated every timestep.
///
/// # Errors
///
/// Returns [`SnnError::InvalidConfig`] if the profile does not cover every
/// layer or has zero timesteps.
pub fn synthetic_traces(
    geometry: &[LayerGeometry],
    profile: &ActivityProfile,
) -> Result<Vec<LayerTrace>, SnnError> {
    if profile.layer_density.len() < geometry.len() {
        return Err(SnnError::config(
            "layer_density",
            format!(
                "profile covers {} layers but the geometry has {}",
                profile.layer_density.len(),
                geometry.len()
            ),
        ));
    }
    if profile.timesteps == 0 {
        return Err(SnnError::config(
            "timesteps",
            "at least one timestep is required",
        ));
    }
    let mut traces = Vec::with_capacity(geometry.len());
    // Events entering the first layer: dense analog pixels.
    let first = &geometry[0];
    let mut incoming_per_step =
        (first.in_channels * first.in_height * first.in_width) as f64 * profile.input_density;
    for (i, geo) in geometry.iter().enumerate() {
        let input_events: Vec<u64> = (0..profile.timesteps)
            .map(|_| incoming_per_step.round() as u64)
            .collect();
        let out_neurons = geo.output_neurons() as f64;
        let out_spikes_per_step = (out_neurons * profile.layer_density[i]).round();
        let output_spikes: Vec<u64> = (0..profile.timesteps)
            .map(|_| out_spikes_per_step as u64)
            .collect();
        traces.push(LayerTrace {
            name: geo.name.clone(),
            geometry: Some(geo.clone()),
            input_events,
            output_spikes,
            output_neurons: geo.output_neurons() as u64,
            spikes: None,
        });
        // The next layer consumes these spikes; pooling after CONV1_2,
        // CONV2_2 and CONV3_3 (layer indices 1, 3, 6 of the paper's VGG9)
        // merges 2x2 windows, surviving with factor ~0.55 for sparse maps.
        let pooled = matches!(i, 1 | 3 | 6);
        incoming_per_step = if pooled {
            out_spikes_per_step * 0.55
        } else {
            out_spikes_per_step
        };
    }
    Ok(traces)
}

/// Total output spikes across all layers and timesteps of a trace set.
pub fn total_spikes(traces: &[LayerTrace]) -> u64 {
    traces.iter().map(LayerTrace::total_output_spikes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::{vgg9, Vgg9Config};

    fn geometry() -> Vec<LayerGeometry> {
        vgg9(&Vgg9Config::cifar10()).unwrap().geometry().unwrap()
    }

    #[test]
    fn traces_cover_every_layer_with_consistent_timesteps() {
        let geo = geometry();
        let profile = ActivityProfile::paper_direct(geo.len());
        let traces = synthetic_traces(&geo, &profile).unwrap();
        assert_eq!(traces.len(), geo.len());
        for t in &traces {
            assert_eq!(t.input_events.len(), 2);
            assert_eq!(t.output_spikes.len(), 2);
            assert!(t.geometry.is_some());
        }
    }

    #[test]
    fn direct_profile_is_sparser_in_deeper_layers() {
        let p = ActivityProfile::paper_direct(9);
        for i in 1..9 {
            assert!(p.layer_density[i] <= p.layer_density[i - 1]);
        }
        assert!(p.layer_density[0] < 0.2);
    }

    #[test]
    fn rate_profile_has_more_total_spikes_than_direct() {
        let geo = geometry();
        let direct = synthetic_traces(&geo, &ActivityProfile::paper_direct(geo.len())).unwrap();
        let rate = synthetic_traces(&geo, &ActivityProfile::paper_rate(geo.len())).unwrap();
        let ratio = total_spikes(&rate) as f64 / total_spikes(&direct) as f64;
        // The paper reports 2.6x more spikes for rate coding (Table II).
        assert!(
            (1.5..=5.0).contains(&ratio),
            "rate/direct spike ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn quantization_reduction_lowers_spike_counts() {
        let geo = geometry();
        let fp32 = synthetic_traces(&geo, &ActivityProfile::paper_direct(geo.len())).unwrap();
        let int4 = synthetic_traces(
            &geo,
            &ActivityProfile::paper_direct(geo.len()).with_quantization_reduction(10.1),
        )
        .unwrap();
        let reduction = 1.0 - total_spikes(&int4) as f64 / total_spikes(&fp32) as f64;
        assert!(
            (0.05..=0.15).contains(&reduction),
            "reduction {reduction:.3}"
        );
    }

    #[test]
    fn synthetic_traces_validate_inputs() {
        let geo = geometry();
        assert!(synthetic_traces(&geo, &ActivityProfile::uniform(3, 0.1, 2)).is_err());
        assert!(synthetic_traces(&geo, &ActivityProfile::uniform(9, 0.1, 0)).is_err());
        assert!(synthetic_traces(&geo, &ActivityProfile::uniform(9, 0.1, 2)).is_ok());
    }

    #[test]
    fn uniform_profile_clamps_density() {
        let p = ActivityProfile::uniform(4, 1.7, 3);
        assert!(p.layer_density.iter().all(|&d| d <= 1.0));
        assert_eq!(p.timesteps, 3);
    }

    #[test]
    fn total_spike_count_is_near_the_papers_magnitude() {
        // Table II reports ~41K total spikes for the direct-coded CIFAR-10
        // VGG9 at T=2; the calibrated profile should land within a small
        // factor of that.
        let geo = geometry();
        let traces = synthetic_traces(&geo, &ActivityProfile::paper_direct(geo.len())).unwrap();
        let total = total_spikes(&traces);
        assert!(
            (10_000..=200_000).contains(&total),
            "calibrated total spikes {total} far from the paper's ~41K"
        );
    }
}
