//! Per-image energy model.
//!
//! The paper computes the energy per image by summing the energy per layer
//! (Sec. V-C): each layer's instance-level dynamic power multiplied by the
//! time that layer spends processing the image. An optional static share
//! (device static power × end-to-end latency) can be added for
//! total-energy comparisons.

use serde::{Deserialize, Serialize};

/// Energy of one layer while processing one image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergy {
    /// Layer name.
    pub name: String,
    /// Busy time of the layer in milliseconds.
    pub busy_ms: f64,
    /// Dynamic energy in millijoules.
    pub dynamic_mj: f64,
}

/// Energy of a full inference.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// Per-layer dynamic energy.
    pub layers: Vec<LayerEnergy>,
    /// Static energy over the end-to-end latency, in millijoules.
    pub static_mj: f64,
}

impl EnergyEstimate {
    /// Total dynamic energy per image in millijoules (the quantity plotted in
    /// Fig. 4).
    pub fn dynamic_mj(&self) -> f64 {
        self.layers.iter().map(|l| l.dynamic_mj).sum()
    }

    /// Total energy (dynamic + static share) in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.dynamic_mj() + self.static_mj
    }
}

/// Computes per-layer and total energy.
///
/// * `layer_names`, `layer_cycles` and `layer_dynamic_watts` must be
///   index-aligned;
/// * `clock_mhz` converts cycles to time;
/// * `static_watts` is multiplied by the end-to-end latency (the sum of the
///   layer busy times, i.e. a non-pipelined single-image pass).
pub fn estimate(
    layer_names: &[String],
    layer_cycles: &[u64],
    layer_dynamic_watts: &[f64],
    clock_mhz: f64,
    static_watts: f64,
) -> EnergyEstimate {
    let mut layers = Vec::with_capacity(layer_names.len());
    let mut latency_ms = 0.0;
    for ((name, &cycles), &watts) in layer_names
        .iter()
        .zip(layer_cycles.iter())
        .zip(layer_dynamic_watts.iter())
    {
        let busy_ms = cycles as f64 / (clock_mhz * 1e6) * 1e3;
        latency_ms += busy_ms;
        layers.push(LayerEnergy {
            name: name.clone(),
            busy_ms,
            // mJ = W × ms.
            dynamic_mj: watts * busy_ms,
        });
    }
    EnergyEstimate {
        layers,
        static_mj: static_watts * latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("L{i}")).collect()
    }

    #[test]
    fn energy_is_power_times_time() {
        // 1 W for 100 000 cycles at 100 MHz = 1 ms -> 1 mJ.
        let e = estimate(&names(1), &[100_000], &[1.0], 100.0, 0.0);
        assert!((e.dynamic_mj() - 1.0).abs() < 1e-9);
        assert_eq!(e.layers[0].busy_ms, 1.0);
    }

    #[test]
    fn static_energy_uses_total_latency() {
        let e = estimate(&names(2), &[100_000, 300_000], &[0.0, 0.0], 100.0, 2.0);
        // Latency 4 ms × 2 W = 8 mJ static.
        assert!((e.static_mj - 8.0).abs() < 1e-9);
        assert_eq!(e.dynamic_mj(), 0.0);
        assert!((e.total_mj() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_reduces_energy_linearly() {
        let slow = estimate(&names(1), &[1_000_000], &[0.5], 100.0, 0.0);
        let fast = estimate(&names(1), &[1_000_000], &[0.5], 200.0, 0.0);
        assert!((slow.dynamic_mj() / fast.dynamic_mj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_layer_breakdown_sums_to_total() {
        let e = estimate(
            &names(3),
            &[10_000, 20_000, 30_000],
            &[0.1, 0.2, 0.3],
            100.0,
            1.0,
        );
        let sum: f64 = e.layers.iter().map(|l| l.dynamic_mj).sum();
        assert!((e.dynamic_mj() - sum).abs() < 1e-12);
        assert_eq!(e.layers.len(), 3);
    }

    #[test]
    fn empty_input_gives_zero_energy() {
        let e = estimate(&[], &[], &[], 100.0, 3.0);
        assert_eq!(e.total_mj(), 0.0);
    }
}
