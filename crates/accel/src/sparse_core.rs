//! Sparse core: the event-driven engine that processes every spiking layer.
//!
//! A sparse core (paper Fig. 3) consists of an Event Control Unit (ECU) and
//! `N` neural cores (NCs):
//!
//! 1. the ECU's **Compression routine** fetches a spike train from the input
//!    spike RAM, tiles it into `n`-bit chunks and uses a priority encoder to
//!    emit the addresses of set bits into the `SpikeEvents` register array,
//!    resetting each found bit so the next one can be located;
//! 2. the **Address Generation routine** expands every spike event into the
//!    (row, col) addresses of the `k × k` neurons it influences;
//! 3. each **NC**'s Accum routine reads the membrane potential from BRAM,
//!    adds the filter coefficient and writes it back — one neuron per cycle —
//!    with the output channels unrolled by `N` (NC `i` handles channels
//!    `i, i+N, i+2N, …`);
//! 4. once every input feature map has been consumed, the NC's Activ routine
//!    runs the LIF spiking phase and writes the output spike train to BRAM.
//!
//! [`SparseCore::run_conv`] / [`SparseCore::run_linear`] are functional models
//! (bit-true against the `snn-core` layers + LIF); [`SparseCore::conv_timing`]
//! and [`SparseCore::linear_timing`] are the analytic cycle models driven by
//! spike counts, used by the accelerator-level performance estimates.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::layers::{Conv2d, Linear};
use snn_core::network::LayerGeometry;
use snn_core::neuron::{lif_update, LifParams};
use snn_core::spike::{SpikeTrain, SpikeVolume};

/// Cycle counts of one sparse-core layer execution (all timesteps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseTiming {
    /// Cycles the Compression routine needs to scan the input spike trains.
    pub compression_cycles: u64,
    /// Cycles the NC accumulation phase needs (the Eq. 3 workload divided by
    /// the NC unroll factor).
    pub accumulation_cycles: u64,
    /// Cycles of the LIF activation phase (output neurons per NC).
    pub activation_cycles: u64,
    /// Total cycles. Compression overlaps with accumulation, so the total is
    /// `max(compression, accumulation) + activation` per timestep.
    pub total_cycles: u64,
}

impl SparseTiming {
    fn add(&mut self, other: SparseTiming) {
        self.compression_cycles += other.compression_cycles;
        self.accumulation_cycles += other.accumulation_cycles;
        self.activation_cycles += other.activation_cycles;
        self.total_cycles += other.total_cycles;
    }
}

/// One sparse core instance: its NC unroll factor and compression chunk width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseCore {
    neural_cores: usize,
    chunk_bits: usize,
}

impl SparseCore {
    /// Creates a sparse core with `neural_cores` NCs and an ECU that scans
    /// `chunk_bits` bits of spike train per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(neural_cores: usize, chunk_bits: usize) -> Self {
        assert!(
            neural_cores > 0,
            "sparse core needs at least one neural core"
        );
        assert!(chunk_bits > 0, "compression chunk width must be positive");
        SparseCore {
            neural_cores,
            chunk_bits,
        }
    }

    /// Number of neural cores (output-channel unroll factor `N`).
    pub fn neural_cores(&self) -> usize {
        self.neural_cores
    }

    /// Compression chunk width in bits.
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Functionally executes an event-driven spiking convolution.
    ///
    /// `input` holds the binary input feature maps for every timestep
    /// (channels × H × W, timestep-major); the result is the output spike
    /// volume plus the cycle counts of the schedule. Only stride-1
    /// convolutions are supported — the paper's networks use stride 1
    /// everywhere, with down-sampling done by spike max-pooling.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for unsupported strides and shape
    /// errors if the input volume does not match the convolution.
    pub fn run_conv(
        &self,
        conv: &Conv2d,
        lif: LifParams,
        input: &SpikeVolume,
    ) -> Result<(SpikeVolume, SparseTiming), SnnError> {
        if conv.stride() != 1 {
            return Err(SnnError::config(
                "stride",
                "the event-driven sparse core supports stride-1 convolutions only",
            ));
        }
        if input.channels() != conv.in_channels() {
            return Err(SnnError::shape(
                &[conv.in_channels()],
                &[input.channels()],
                "SparseCore::run_conv input channels",
            ));
        }
        let (in_h, in_w) = (input.height(), input.width());
        let out_shape = conv.output_shape(&[conv.in_channels(), in_h, in_w])?;
        let (out_c, out_h, out_w) = (out_shape[0], out_shape[1], out_shape[2]);
        let k = conv.kernel();
        let pad = conv.padding() as isize;
        let timesteps = input.timesteps();

        let mut volume = SpikeVolume::new(timesteps, out_c, out_h, out_w);
        let mut membrane = vec![0.0_f32; out_c * out_h * out_w];
        let mut fired = vec![false; out_c * out_h * out_w];
        let weight = conv.weight().as_slice();
        let bias = conv.bias().as_slice();
        let mut timing = SparseTiming::default();

        for t in 0..timesteps {
            // Accumulation phase: every spike event updates the k×k
            // neighbourhood of every output feature map.
            let mut accumulator = vec![0.0_f32; out_c * out_h * out_w];
            let mut events: u64 = 0;
            for cin in 0..conv.in_channels() {
                let train = input.train(t, cin);
                for idx in train.iter_ones() {
                    events += 1;
                    let y = (idx / in_w) as isize;
                    let x = (idx % in_w) as isize;
                    for ky in 0..k {
                        let oy = y + pad - ky as isize;
                        if oy < 0 || oy >= out_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ox = x + pad - kx as isize;
                            if ox < 0 || ox >= out_w as isize {
                                continue;
                            }
                            for oc in 0..out_c {
                                let w = weight[((oc * conv.in_channels() + cin) * k + ky) * k + kx];
                                accumulator[(oc * out_h + oy as usize) * out_w + ox as usize] += w;
                            }
                        }
                    }
                }
            }
            // Activation phase: LIF update with the accumulated current + bias.
            for (oc, &channel_bias) in bias.iter().enumerate().take(out_c) {
                let mut train = SpikeTrain::new(out_h * out_w);
                for p in 0..out_h * out_w {
                    let idx = oc * out_h * out_w + p;
                    let current = accumulator[idx] + channel_bias;
                    let (u, spike) = lif_update(lif, membrane[idx], current, fired[idx]);
                    membrane[idx] = u;
                    fired[idx] = spike;
                    if spike {
                        train.set(p, true);
                    }
                }
                volume.set_train(t, oc, train)?;
            }
            timing.add(self.conv_step_timing(
                events,
                conv.in_channels() * in_h * in_w,
                k,
                out_c,
                out_h * out_w,
            ));
        }
        Ok((volume, timing))
    }

    /// Functionally executes an event-driven fully-connected layer.
    ///
    /// `input` holds one spike train per timestep (length = `in_features`).
    ///
    /// # Errors
    ///
    /// Returns shape errors if a spike train length differs from the layer's
    /// input features.
    pub fn run_linear(
        &self,
        linear: &Linear,
        lif: LifParams,
        input: &[SpikeTrain],
    ) -> Result<(Vec<SpikeTrain>, SparseTiming), SnnError> {
        let n_in = linear.in_features();
        let n_out = linear.out_features();
        let weight = linear.weight().as_slice();
        let bias = linear.bias().as_slice();
        let mut membrane = vec![0.0_f32; n_out];
        let mut fired = vec![false; n_out];
        let mut outputs = Vec::with_capacity(input.len());
        let mut timing = SparseTiming::default();
        for train in input {
            if train.len() != n_in {
                return Err(SnnError::shape(
                    &[n_in],
                    &[train.len()],
                    "SparseCore::run_linear input train",
                ));
            }
            let mut accumulator = vec![0.0_f32; n_out];
            let mut events = 0u64;
            for idx in train.iter_ones() {
                events += 1;
                for (o, acc) in accumulator.iter_mut().enumerate() {
                    *acc += weight[o * n_in + idx];
                }
            }
            let mut out_train = SpikeTrain::new(n_out);
            for o in 0..n_out {
                let (u, spike) = lif_update(lif, membrane[o], accumulator[o] + bias[o], fired[o]);
                membrane[o] = u;
                fired[o] = spike;
                if spike {
                    out_train.set(o, true);
                }
            }
            outputs.push(out_train);
            timing.add(self.linear_step_timing(events, n_in, n_out));
        }
        Ok((outputs, timing))
    }

    /// Analytic cycle count for a convolution layer given the per-timestep
    /// input spike counts and the layer geometry.
    pub fn conv_timing(&self, events_per_step: &[u64], geo: &LayerGeometry) -> SparseTiming {
        let mut total = SparseTiming::default();
        let input_bits = geo.in_channels * geo.in_height * geo.in_width;
        for &events in events_per_step {
            total.add(self.conv_step_timing(
                events,
                input_bits,
                geo.kernel,
                geo.out_channels,
                geo.out_height * geo.out_width,
            ));
        }
        total
    }

    /// Analytic cycle count for a fully-connected layer given the per-timestep
    /// input spike counts and the layer geometry.
    pub fn linear_timing(&self, events_per_step: &[u64], geo: &LayerGeometry) -> SparseTiming {
        let mut total = SparseTiming::default();
        for &events in events_per_step {
            total.add(self.linear_step_timing(events, geo.in_channels, geo.out_channels));
        }
        total
    }

    fn conv_step_timing(
        &self,
        events: u64,
        input_bits: usize,
        kernel: usize,
        out_channels: usize,
        out_plane: usize,
    ) -> SparseTiming {
        let channels_per_nc = out_channels.div_ceil(self.neural_cores) as u64;
        let compression = (input_bits as u64).div_ceil(self.chunk_bits as u64) + events;
        let accumulation = events * (kernel * kernel) as u64 * channels_per_nc;
        let activation = channels_per_nc * out_plane as u64;
        SparseTiming {
            compression_cycles: compression,
            accumulation_cycles: accumulation,
            activation_cycles: activation,
            total_cycles: compression.max(accumulation) + activation,
        }
    }

    fn linear_step_timing(
        &self,
        events: u64,
        in_features: usize,
        out_features: usize,
    ) -> SparseTiming {
        let outputs_per_nc = out_features.div_ceil(self.neural_cores) as u64;
        let compression = (in_features as u64).div_ceil(self.chunk_bits as u64) + events;
        let accumulation = events * outputs_per_nc;
        let activation = outputs_per_nc;
        SparseTiming {
            compression_cycles: compression,
            accumulation_cycles: accumulation,
            activation_cycles: activation,
            total_cycles: compression.max(accumulation) + activation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_core::neuron::LifPopulation;
    use snn_core::tensor::Tensor;

    fn random_spike_volume(
        timesteps: usize,
        c: usize,
        h: usize,
        w: usize,
        density: f64,
    ) -> SpikeVolume {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(9);
        let mut vol = SpikeVolume::new(timesteps, c, h, w);
        for t in 0..timesteps {
            for ci in 0..c {
                for p in 0..h * w {
                    if rng.gen_bool(density) {
                        vol.train_mut(t, ci).set(p, true);
                    }
                }
            }
        }
        vol
    }

    #[test]
    #[should_panic(expected = "at least one neural core")]
    fn zero_ncs_panic() {
        SparseCore::new(0, 32);
    }

    #[test]
    fn event_driven_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::with_kaiming_init(2, 4, 3, 1, 1, &mut rng).unwrap();
        let lif = LifParams::paper_default();
        let input = random_spike_volume(3, 2, 6, 6, 0.3);
        let core = SparseCore::new(2, 32);
        let (out, timing) = core.run_conv(&conv, lif, &input).unwrap();
        assert!(timing.total_cycles > 0);

        // Reference: dense conv + LIF population, fed with the same binary frames.
        let mut reference = LifPopulation::new(4 * 6 * 6, lif);
        for t in 0..3 {
            let mut frame = Tensor::zeros(&[2, 6, 6]);
            for c in 0..2 {
                for p in input.train(t, c).iter_ones() {
                    frame.as_mut_slice()[c * 36 + p] = 1.0;
                }
            }
            let current = conv.forward(&frame).unwrap();
            let spikes = reference.step_tensor(&current).unwrap();
            for c in 0..4 {
                for p in 0..36 {
                    assert_eq!(
                        out.train(t, c).get(p),
                        spikes.as_slice()[c * 36 + p] > 0.0,
                        "mismatch at t={t} c={c} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn event_driven_linear_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let fc = Linear::with_kaiming_init(12, 6, &mut rng).unwrap();
        let lif = LifParams::new(0.5, 0.3).unwrap();
        let trains: Vec<SpikeTrain> = (0..4)
            .map(|t| SpikeTrain::from_bools(&(0..12).map(|i| (i + t) % 3 == 0).collect::<Vec<_>>()))
            .collect();
        let core = SparseCore::new(3, 16);
        let (out, _) = core.run_linear(&fc, lif, &trains).unwrap();

        let mut reference = LifPopulation::new(6, lif);
        for (t, train) in trains.iter().enumerate() {
            let frame = Tensor::from_vec(train.to_activations(), &[12]).unwrap();
            let current = fc.forward(&frame).unwrap();
            let spikes = reference.step_tensor(&current).unwrap();
            assert_eq!(out[t].to_activations(), spikes.as_slice());
        }
    }

    #[test]
    fn run_conv_validates_inputs() {
        let conv = Conv2d::new(2, 4, 3, 2, 1).unwrap();
        let core = SparseCore::new(1, 32);
        let input = SpikeVolume::new(1, 2, 6, 6);
        assert!(core.run_conv(&conv, LifParams::default(), &input).is_err());
        let conv1 = Conv2d::new(3, 4, 3, 1, 1).unwrap();
        assert!(core.run_conv(&conv1, LifParams::default(), &input).is_err());
    }

    #[test]
    fn silent_input_produces_no_accumulation_work() {
        let conv = Conv2d::new(2, 4, 3, 1, 1).unwrap();
        let core = SparseCore::new(2, 32);
        let input = SpikeVolume::new(2, 2, 8, 8);
        let (out, timing) = core.run_conv(&conv, LifParams::default(), &input).unwrap();
        assert_eq!(out.total_spikes(), 0);
        assert_eq!(timing.accumulation_cycles, 0);
        // Compression still scans the (empty) spike trains.
        assert!(timing.compression_cycles > 0);
    }

    #[test]
    fn more_neural_cores_reduce_accumulation_cycles() {
        let geo = LayerGeometry {
            name: "CONV2_1".to_string(),
            is_conv: true,
            in_channels: 112,
            out_channels: 192,
            in_height: 16,
            in_width: 16,
            out_height: 16,
            out_width: 16,
            kernel: 3,
            weight_count: 112 * 192 * 9,
        };
        let events = vec![5000_u64, 4000];
        let small = SparseCore::new(2, 32).conv_timing(&events, &geo);
        let big = SparseCore::new(16, 32).conv_timing(&events, &geo);
        assert!(big.accumulation_cycles < small.accumulation_cycles);
        assert!(big.total_cycles < small.total_cycles);
        // Eq. 3 shape: accumulation = events × 9 × ceil(C_out / N).
        assert_eq!(small.accumulation_cycles, 9000 * 9 * 96);
    }

    #[test]
    fn timing_scales_with_spike_count() {
        let geo = LayerGeometry {
            name: "FC1".to_string(),
            is_conv: false,
            in_channels: 1024,
            out_channels: 512,
            in_height: 1,
            in_width: 1,
            out_height: 1,
            out_width: 1,
            kernel: 1,
            weight_count: 1024 * 512,
        };
        let quiet = SparseCore::new(4, 32).linear_timing(&[100], &geo);
        let busy = SparseCore::new(4, 32).linear_timing(&[10_000], &geo);
        assert!(busy.total_cycles > quiet.total_cycles);
        assert_eq!(busy.accumulation_cycles, 10_000 * 128);
    }

    #[test]
    fn wider_chunks_speed_up_compression() {
        let geo = LayerGeometry {
            name: "CONV3_1".to_string(),
            is_conv: true,
            in_channels: 216,
            out_channels: 480,
            in_height: 8,
            in_width: 8,
            out_height: 8,
            out_width: 8,
            kernel: 3,
            weight_count: 0,
        };
        let narrow = SparseCore::new(8, 8).conv_timing(&[100], &geo);
        let wide = SparseCore::new(8, 64).conv_timing(&[100], &geo);
        assert!(wide.compression_cycles < narrow.compression_cycles);
    }
}
