//! Classification and spiking-activity metrics.
//!
//! Beyond top-1 accuracy, the evaluation section of the paper reasons about
//! per-layer spike counts and per-class behaviour. This module provides a
//! confusion matrix, per-class accuracy and spike-rate summaries that the
//! examples and harnesses use when reporting results.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;

/// A confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `classes == 0`.
    pub fn new(classes: usize) -> Result<Self, SnnError> {
        if classes == 0 {
            return Err(SnnError::config("classes", "need at least one class"));
        }
        Ok(ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(target, predicted)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::IndexOutOfBounds`] if either index is out of range.
    pub fn record(&mut self, target: usize, predicted: usize) -> Result<(), SnnError> {
        if target >= self.classes {
            return Err(SnnError::index(target, self.classes, "confusion target"));
        }
        if predicted >= self.classes {
            return Err(SnnError::index(
                predicted,
                self.classes,
                "confusion prediction",
            ));
        }
        self.counts[target * self.classes + predicted] += 1;
        Ok(())
    }

    /// Count for a `(target, predicted)` cell.
    pub fn count(&self, target: usize, predicted: usize) -> u64 {
        self.counts[target * self.classes + predicted]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (accuracy restricted to samples of that class).
    pub fn per_class_recall(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|c| {
                let row: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(c, c) as f64 / row as f64
                }
            })
            .collect()
    }

    /// The most frequently predicted class (useful to spot collapsed models).
    pub fn most_predicted_class(&self) -> usize {
        (0..self.classes)
            .max_by_key(|&p| (0..self.classes).map(|t| self.count(t, p)).sum::<u64>())
            .unwrap_or(0)
    }
}

/// Summary statistics of spiking activity across an evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpikeRateSummary {
    /// Mean spikes per sample.
    pub mean: f64,
    /// Minimum spikes over samples.
    pub min: u64,
    /// Maximum spikes over samples.
    pub max: u64,
    /// Standard deviation of spikes per sample.
    pub std_dev: f64,
    /// Number of samples summarised.
    pub samples: usize,
}

impl SpikeRateSummary {
    /// Computes the summary from per-sample spike counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        if counts.is_empty() {
            return SpikeRateSummary::default();
        }
        let n = counts.len() as f64;
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        SpikeRateSummary {
            mean,
            min: *counts.iter().min().unwrap_or(&0),
            max: *counts.iter().max().unwrap_or(&0),
            std_dev: var.sqrt(),
            samples: counts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_matrix_basic_counts() {
        let mut m = ConfusionMatrix::new(3).unwrap();
        m.record(0, 0).unwrap();
        m.record(0, 1).unwrap();
        m.record(1, 1).unwrap();
        m.record(2, 2).unwrap();
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        let recall = m.per_class_recall();
        assert!((recall[0] - 0.5).abs() < 1e-12);
        assert_eq!(recall[1], 1.0);
    }

    #[test]
    fn confusion_matrix_validates_indices() {
        assert!(ConfusionMatrix::new(0).is_err());
        let mut m = ConfusionMatrix::new(2).unwrap();
        assert!(m.record(2, 0).is_err());
        assert!(m.record(0, 2).is_err());
    }

    #[test]
    fn most_predicted_class_detects_collapse() {
        let mut m = ConfusionMatrix::new(3).unwrap();
        for t in 0..3 {
            for _ in 0..5 {
                m.record(t, 1).unwrap();
            }
        }
        assert_eq!(m.most_predicted_class(), 1);
        assert!((m.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spike_summary_of_empty_is_zero() {
        let s = SpikeRateSummary::from_counts(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn spike_summary_statistics() {
        let s = SpikeRateSummary::from_counts(&[10, 20, 30]);
        assert_eq!(s.samples, 3);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!(s.std_dev > 0.0);
    }

    proptest! {
        /// Accuracy is always in [0, 1] and equals 1 only when every
        /// prediction matches its target.
        #[test]
        fn accuracy_bounds(pairs in proptest::collection::vec((0_usize..4, 0_usize..4), 1..50)) {
            let mut m = ConfusionMatrix::new(4).unwrap();
            for &(t, p) in &pairs {
                m.record(t, p).unwrap();
            }
            let acc = m.accuracy();
            prop_assert!((0.0..=1.0).contains(&acc));
            let all_correct = pairs.iter().all(|&(t, p)| t == p);
            prop_assert_eq!(acc == 1.0, all_correct);
        }

        /// The spike summary's min/mean/max are always ordered.
        #[test]
        fn summary_ordering(counts in proptest::collection::vec(0_u64..10_000, 1..100)) {
            let s = SpikeRateSummary::from_counts(&counts);
            prop_assert!(s.min as f64 <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max as f64 + 1e-9);
        }
    }
}
