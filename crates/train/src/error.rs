//! Typed errors of the training loop.
//!
//! [`TrainError`] is the error surface of [`crate::trainer::Trainer`]:
//! configuration validation, resume compatibility, the non-finite fail-fast
//! and the quarantine fault budget all abort with a variant that names the
//! failure — and, where a training checkpoint exists, points at the
//! last-good checkpoint path so the run can be resumed after the cause is
//! fixed. Lower-level shape/serialisation failures travel as the wrapped
//! [`SnnError`].

use snn_core::error::SnnError;
use std::fmt;
use std::path::PathBuf;

/// Error returned by the training loop and checkpoint machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A [`crate::trainer::TrainConfig`] value is outside its legal range
    /// (zero batch size, zero epochs, zero threads, …).
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: String,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// A batch's mean loss or gradient norm went NaN/Inf **after**
    /// quarantine filtering — training past this point would silently
    /// optimise garbage, so the run aborts before the optimizer step.
    NonFinite {
        /// Epoch in which the batch went non-finite (0-based).
        epoch: usize,
        /// Batch index within the epoch (0-based).
        batch: usize,
        /// What went non-finite (`"batch loss"` or `"gradient norm"`).
        what: String,
        /// Last successfully saved training checkpoint, if any — resume
        /// from here after fixing the cause.
        last_good: Option<PathBuf>,
    },
    /// More samples were quarantined than
    /// [`crate::trainer::TrainConfig::fault_budget`] tolerates.
    FaultBudgetExceeded {
        /// Quarantined samples so far (including the one that tripped).
        faults: usize,
        /// The configured budget.
        budget: usize,
        /// Epoch in which the budget tripped (0-based).
        epoch: usize,
        /// Last successfully saved training checkpoint, if any.
        last_good: Option<PathBuf>,
    },
    /// A checkpoint cannot resume against the given network or dataset
    /// (shape mismatch, different dataset, wrong optimizer structure).
    IncompatibleResume {
        /// What does not line up.
        reason: String,
    },
    /// A wrapped core error (shapes, encoder, serialisation, I/O).
    Snn(SnnError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig { parameter, message } => {
                write!(f, "invalid training configuration `{parameter}`: {message}")
            }
            TrainError::NonFinite {
                epoch,
                batch,
                what,
                last_good,
            } => {
                write!(
                    f,
                    "non-finite {what} at epoch {epoch}, batch {batch}; training aborted before \
                     the optimizer step"
                )?;
                match last_good {
                    Some(path) => {
                        write!(f, " (resume from last-good checkpoint {})", path.display())
                    }
                    None => write!(f, " (no checkpoint configured; progress lost)"),
                }
            }
            TrainError::FaultBudgetExceeded {
                faults,
                budget,
                epoch,
                last_good,
            } => {
                write!(
                    f,
                    "fault budget exceeded at epoch {epoch}: {faults} samples quarantined \
                     (budget {budget})"
                )?;
                match last_good {
                    Some(path) => {
                        write!(f, " (resume from last-good checkpoint {})", path.display())
                    }
                    None => write!(f, " (no checkpoint configured)"),
                }
            }
            TrainError::IncompatibleResume { reason } => {
                write!(f, "checkpoint cannot resume here: {reason}")
            }
            TrainError::Snn(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Snn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnnError> for TrainError {
    fn from(e: SnnError) -> Self {
        TrainError::Snn(e)
    }
}

/// Lossy downgrade for callers whose error surface is [`SnnError`] (the
/// experiment harnesses): the typed variant collapses into the closest core
/// variant, keeping the full message.
impl From<TrainError> for SnnError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Snn(inner) => inner,
            TrainError::InvalidConfig { parameter, message } => {
                SnnError::config(parameter, message)
            }
            other @ TrainError::NonFinite { .. } => SnnError::numerical(other.to_string()),
            other => SnnError::config("training", other.to_string()),
        }
    }
}

impl TrainError {
    /// The last-good checkpoint path carried by abort variants, if any —
    /// the place to [`crate::trainer::Trainer::resume`] from.
    pub fn last_good_checkpoint(&self) -> Option<&std::path::Path> {
        match self {
            TrainError::NonFinite { last_good, .. }
            | TrainError::FaultBudgetExceeded { last_good, .. } => last_good.as_deref(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_and_the_checkpoint() {
        let err = TrainError::NonFinite {
            epoch: 3,
            batch: 7,
            what: "batch loss".into(),
            last_good: Some(PathBuf::from("/tmp/run.snntrain")),
        };
        let text = err.to_string();
        assert!(text.contains("epoch 3"));
        assert!(text.contains("batch 7"));
        assert!(text.contains("run.snntrain"));
        assert_eq!(
            err.last_good_checkpoint(),
            Some(std::path::Path::new("/tmp/run.snntrain"))
        );
    }

    #[test]
    fn snn_error_round_trips_through_train_error() {
        let inner = SnnError::shape(&[1], &[2], "test");
        let wrapped = TrainError::from(inner.clone());
        assert_eq!(SnnError::from(wrapped), inner);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrainError>();
    }
}
