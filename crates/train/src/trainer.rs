//! Training and evaluation loops.
//!
//! [`Trainer::fit`] runs mini-batch surrogate-gradient training (optionally
//! quantization-aware) on a [`Dataset`]; [`evaluate`] measures accuracy and
//! spike statistics of a trained network on a dataset split, which is what
//! the Fig. 1 / Table II experiments consume.

use crate::bptt::{Bptt, BpttScratch, NetworkGradients, SampleResult};
use crate::optim::{Adam, Optimizer};
use crate::surrogate::SurrogateKind;
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::network::{Layer, SnnNetwork};
use snn_core::quant::Precision;
use snn_core::stats::AggregateSpikeStats;
use snn_data::{Dataset, Sample, Split};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of samples a worker claims per grab from the shared batch queue: a
/// couple at a time amortizes the atomic while keeping the tail balanced.
/// Chunking is pure scheduling — results land in per-sample slots and are
/// folded in sample order, so the batch gradient is bitwise identical at any
/// thread count (and to the sequential path).
const TRAIN_CHUNK: usize = 2;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Input encoder (coding scheme + timesteps).
    pub encoder: Encoder,
    /// Weight precision for QAT (`Fp32` trains in full precision).
    pub precision: Precision,
    /// Surrogate gradient of the spike non-linearity.
    pub surrogate: SurrogateKind,
    /// Optional global-norm gradient clipping.
    pub grad_clip: Option<f32>,
    /// Limits the number of training samples per epoch (for fast runs).
    pub max_train_samples: Option<usize>,
    /// Base RNG seed (rate-coding noise, sample ordering).
    pub seed: u64,
    /// Number of worker threads for per-sample gradient computation.
    pub threads: usize,
}

impl TrainConfig {
    /// A quick configuration suitable for tests and examples: direct coding
    /// with 2 timesteps, small batches, a single epoch.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 1,
            batch_size: 8,
            learning_rate: 2e-3,
            encoder: Encoder::paper_direct(),
            precision: Precision::Fp32,
            surrogate: SurrogateKind::paper_default(),
            grad_clip: Some(5.0),
            max_train_samples: None,
            seed: 0,
            // The same resolution rule as inference (`EngineBuilder`):
            // `SNN_THREADS` wins over the machine's available parallelism.
            threads: snn_core::resolve_threads(None),
        }
    }

    /// The quick configuration with QAT at the given precision.
    pub fn quick_qat(precision: Precision) -> Self {
        TrainConfig {
            precision,
            ..TrainConfig::quick()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Per-epoch training progress.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy per epoch.
    pub epoch_accuracies: Vec<f64>,
    /// Mean spikes per sample per epoch (a live view of the sparsity the
    /// network settles into).
    pub epoch_mean_spikes: Vec<f64>,
}

impl TrainReport {
    /// Final-epoch training accuracy (0.0 if no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracies.last().copied().unwrap_or(0.0)
    }

    /// Final-epoch mean loss (0.0 if no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

/// Evaluation result on a dataset split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalReport {
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Total spikes over all samples and timesteps.
    pub total_spikes: u64,
    /// Mean spikes per sample.
    pub mean_spikes_per_sample: f64,
    /// Per-layer aggregate spike statistics.
    pub aggregate: AggregateSpikeStats,
}

/// Mini-batch trainer: Adam + surrogate-gradient BPTT (+ optional QAT).
///
/// Per-sample gradient computation fans out over a chunked worker pool
/// ([`std::thread::scope`] workers pulling sample chunks from a shared
/// counter, mirroring `Session::run_batch`), so per-batch overhead is
/// O(threads) thread spawns instead of the former one-spawn-per-sample.
/// Each worker slot owns a **persistent** [`BpttScratch`] that lives in the
/// trainer across batches and epochs, so the backward pass stops allocating
/// once the first batch has warmed the buffers.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    bptt: Bptt,
    optimizer: Adam,
    /// One long-lived backward scratch per worker slot, index-aligned with
    /// the spawned workers (slot 0 doubles as the sequential-path scratch).
    scratches: Vec<BpttScratch>,
}

impl Trainer {
    /// Creates a trainer from a configuration.
    pub fn new(config: TrainConfig) -> Self {
        let bptt = Bptt::new(config.surrogate, config.precision);
        let optimizer = Adam::new(config.learning_rate);
        Trainer {
            config,
            bptt,
            optimizer,
            scratches: Vec::new(),
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `network` on the training split of `data`.
    ///
    /// # Example
    ///
    /// A one-epoch run on a tiny synthetic dataset (the kind the tests and
    /// benches use):
    ///
    /// ```
    /// use snn_core::network::{vgg9, Vgg9Config};
    /// use snn_data::{SyntheticConfig, SyntheticDataset};
    /// use snn_train::trainer::{TrainConfig, Trainer};
    ///
    /// # fn main() -> Result<(), snn_core::SnnError> {
    /// let mut net = vgg9(&Vgg9Config::cifar10_small())?;
    /// let data =
    ///     SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 8, 4));
    /// let mut cfg = TrainConfig::quick();
    /// cfg.max_train_samples = Some(4);
    /// cfg.batch_size = 2;
    /// cfg.threads = 1;
    /// let mut trainer = Trainer::new(cfg);
    /// let report = trainer.fit(&mut net, &data)?;
    /// assert_eq!(report.epoch_losses.len(), 1);
    /// assert!(report.final_loss().is_finite());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates any shape/configuration error raised during the forward or
    /// backward passes.
    pub fn fit(
        &mut self,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
    ) -> Result<TrainReport, SnnError> {
        let mut report = TrainReport::default();
        let total = data.len(Split::Train);
        let limit = self.config.max_train_samples.unwrap_or(total).min(total);
        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0_f64;
            let mut correct = 0usize;
            let mut seen = 0usize;
            let mut spikes = 0u64;
            let mut index = 0usize;
            while index < limit {
                let end = (index + self.config.batch_size).min(limit);
                let batch: Vec<Sample> =
                    (index..end).map(|i| data.sample(Split::Train, i)).collect();
                let results = self.batch_results(network, &batch, epoch as u64)?;
                let mut grads = NetworkGradients::zeros_like(network);
                for r in &results {
                    epoch_loss += f64::from(r.loss);
                    spikes += r.total_spikes;
                    if r.correct {
                        correct += 1;
                    }
                    grads.accumulate(&r.gradients)?;
                }
                grads.scale(1.0 / results.len() as f32);
                if let Some(clip) = self.config.grad_clip {
                    grads.clip_global_norm(clip);
                }
                apply_gradients(network, &grads, &mut self.optimizer)?;
                seen += results.len();
                index = end;
            }
            report
                .epoch_losses
                .push((epoch_loss / seen.max(1) as f64) as f32);
            report
                .epoch_accuracies
                .push(correct as f64 / seen.max(1) as f64);
            report
                .epoch_mean_spikes
                .push(spikes as f64 / seen.max(1) as f64);
        }
        Ok(report)
    }

    /// Computes per-sample gradients for one batch over the persistent
    /// chunked worker pool. The fake-quantized working copies of the weight
    /// layers are built once per batch ([`Bptt::prepare`]) and shared by
    /// every sample and worker thread — weights only change at the optimizer
    /// step between batches, so per-sample re-quantization would be pure
    /// overhead.
    ///
    /// Determinism: workers pull contiguous [`TRAIN_CHUNK`]-sized index
    /// chunks from an atomic counter and deposit each [`SampleResult`] in its
    /// sample's slot, and the caller folds the slots in sample order —
    /// which worker computed which sample can never affect a bit of the
    /// batch gradient. Workers do **not** fold gradients into per-worker
    /// accumulators: a race-dependent (or thread-count-dependent) merge
    /// order would reassociate the f32 sums and break the bitwise
    /// thread-count-invariance guarantee of `fit`.
    fn batch_results(
        &mut self,
        network: &SnnNetwork,
        batch: &[Sample],
        epoch: u64,
    ) -> Result<Vec<SampleResult>, SnnError> {
        let bptt = self.bptt;
        let encoder = self.config.encoder;
        let base_seed = self.config.seed ^ (epoch << 32);
        let effective = bptt.prepare(network)?;
        let workers = self.config.threads.max(1).min(batch.len());
        while self.scratches.len() < workers.max(1) {
            self.scratches.push(BpttScratch::new());
        }
        if workers <= 1 {
            let scratch = &mut self.scratches[0];
            return batch
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    bptt.sample_gradients_with(
                        network,
                        &effective,
                        &s.image,
                        s.label,
                        &encoder,
                        base_seed + i as u64,
                        scratch,
                    )
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<SampleResult, SnnError>>> =
            (0..batch.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.scratches[..workers]
                .iter_mut()
                .map(|scratch| {
                    let next = &next;
                    let effective = &effective;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, Result<SampleResult, SnnError>)> = Vec::new();
                        loop {
                            let start = next.fetch_add(TRAIN_CHUNK, Ordering::Relaxed);
                            if start >= batch.len() {
                                break;
                            }
                            let end = (start + TRAIN_CHUNK).min(batch.len());
                            for (offset, s) in batch[start..end].iter().enumerate() {
                                let i = start + offset;
                                done.push((
                                    i,
                                    bptt.sample_gradients_with(
                                        network,
                                        effective,
                                        &s.image,
                                        s.label,
                                        &encoder,
                                        base_seed + i as u64,
                                        scratch,
                                    ),
                                ));
                            }
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("trainer worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every sample is claimed by exactly one chunk"))
            .collect()
    }
}

/// Applies a gradient set to a network's parameters with the given optimizer.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the gradients do not match the
/// network structure.
pub fn apply_gradients(
    network: &mut SnnNetwork,
    gradients: &NetworkGradients,
    optimizer: &mut dyn Optimizer,
) -> Result<(), SnnError> {
    if gradients.per_layer().len() != network.layers().len() {
        return Err(SnnError::shape(
            &[network.layers().len()],
            &[gradients.per_layer().len()],
            "apply_gradients",
        ));
    }
    for (li, layer) in network.layers_mut().iter_mut().enumerate() {
        let Some(grads) = &gradients.per_layer()[li] else {
            continue;
        };
        match layer {
            Layer::Conv { conv, .. } => {
                optimizer.step(
                    &format!("layer{li}.weight"),
                    conv.weight_mut(),
                    &grads.weight,
                )?;
                optimizer.step(&format!("layer{li}.bias"), conv.bias_mut(), &grads.bias)?;
            }
            Layer::Linear { linear, .. } => {
                optimizer.step(
                    &format!("layer{li}.weight"),
                    linear.weight_mut(),
                    &grads.weight,
                )?;
                optimizer.step(&format!("layer{li}.bias"), linear.bias_mut(), &grads.bias)?;
            }
            Layer::Pool { .. } => {}
        }
    }
    Ok(())
}

/// Evaluates `network` on a dataset split: accuracy plus the spike statistics
/// used by the sparsity and energy experiments.
///
/// # Errors
///
/// Propagates inference errors.
pub fn evaluate(
    network: &mut SnnNetwork,
    data: &dyn Dataset,
    split: Split,
    encoder: &Encoder,
    max_samples: Option<usize>,
) -> Result<EvalReport, SnnError> {
    let total = data.len(split);
    let limit = max_samples.unwrap_or(total).min(total);
    let mut aggregate = AggregateSpikeStats::new();
    let mut total_spikes = 0u64;
    for i in 0..limit {
        let sample = data.sample(split, i);
        let out = network.run_seeded(&sample.image, encoder, i as u64)?;
        let correct = out.prediction == sample.label;
        total_spikes += out.record.total_spikes();
        aggregate.add_run(&out.record, correct);
    }
    Ok(EvalReport {
        accuracy: aggregate.accuracy(),
        samples: limit,
        total_spikes,
        mean_spikes_per_sample: if limit == 0 {
            0.0
        } else {
            total_spikes as f64 / limit as f64
        },
        aggregate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_data::{SyntheticConfig, SyntheticDataset};

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10))
    }

    #[test]
    fn quick_config_has_paper_encoder() {
        let cfg = TrainConfig::quick();
        assert_eq!(cfg.encoder, Encoder::paper_direct());
        assert_eq!(cfg.precision, Precision::Fp32);
        assert_eq!(
            TrainConfig::quick_qat(Precision::Int4).precision,
            Precision::Int4
        );
    }

    #[test]
    fn fit_runs_one_epoch_and_reports_progress() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.max_train_samples = Some(8);
        cfg.batch_size = 4;
        cfg.threads = 2;
        let mut trainer = Trainer::new(cfg);
        let report = trainer.fit(&mut net, &data).unwrap();
        assert_eq!(report.epoch_losses.len(), 1);
        assert!(report.final_loss().is_finite());
        assert!(report.final_accuracy() >= 0.0);
        assert!(report.epoch_mean_spikes[0] > 0.0);
    }

    #[test]
    fn fit_with_qat_runs() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick_qat(Precision::Int4);
        cfg.max_train_samples = Some(4);
        cfg.batch_size = 4;
        cfg.threads = 1;
        let mut trainer = Trainer::new(cfg);
        let report = trainer.fit(&mut net, &data).unwrap();
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn training_reduces_loss_over_epochs() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 3;
        cfg.max_train_samples = Some(10);
        cfg.batch_size = 5;
        cfg.learning_rate = 5e-3;
        let mut trainer = Trainer::new(cfg);
        let report = trainer.fit(&mut net, &data).unwrap();
        // Training on a 10-sample subset is noisy; require that the best epoch
        // improves on the first epoch rather than demanding monotonicity.
        let first = report.epoch_losses[0];
        let best = report
            .epoch_losses
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(
            best <= first + 1e-4,
            "best epoch loss should improve on the first: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn evaluate_reports_accuracy_and_spikes() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let report = evaluate(
            &mut net,
            &data,
            Split::Test,
            &Encoder::paper_direct(),
            Some(5),
        )
        .unwrap();
        assert_eq!(report.samples, 5);
        assert!(report.total_spikes > 0);
        assert!(report.mean_spikes_per_sample > 0.0);
        assert!((0.0..=1.0).contains(&report.accuracy));
        assert_eq!(report.aggregate.runs, 5);
    }

    /// The worker-pool determinism claim: training is bitwise identical at
    /// every thread count — same per-epoch losses/accuracies/spike counts and
    /// same final weights — because per-sample results are folded in sample
    /// order regardless of which worker produced them. Exercised in CI both
    /// with the default environment and with `SNN_THREADS=4`.
    #[test]
    fn fit_is_bitwise_identical_across_thread_counts() {
        let data = tiny_data();
        let mut reference_report = None;
        let mut reference_weights: Option<Vec<Vec<f32>>> = None;
        for threads in [1_usize, 2, 3, 4] {
            let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
            let mut cfg = TrainConfig::quick_qat(Precision::Int4);
            cfg.epochs = 2;
            cfg.max_train_samples = Some(6);
            cfg.batch_size = 3;
            cfg.encoder = Encoder::rate(2); // stochastic coding: seeds must line up too
            cfg.threads = threads;
            let mut trainer = Trainer::new(cfg);
            let report = trainer.fit(&mut net, &data).unwrap();
            let weights: Vec<Vec<f32>> = net
                .layers()
                .iter()
                .filter_map(|layer| match layer {
                    Layer::Conv { conv, .. } => Some(conv.weight().as_slice().to_vec()),
                    Layer::Linear { linear, .. } => Some(linear.weight().as_slice().to_vec()),
                    Layer::Pool { .. } => None,
                })
                .collect();
            match (&reference_report, &reference_weights) {
                (None, _) => {
                    reference_report = Some(report);
                    reference_weights = Some(weights);
                }
                (Some(ref_report), Some(ref_weights)) => {
                    assert_eq!(&report, ref_report, "report differs at {threads} threads");
                    for (lw, rw) in weights.iter().zip(ref_weights.iter()) {
                        for (a, b) in lw.iter().zip(rw.iter()) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "weights differ at {threads} threads"
                            );
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn apply_gradients_validates_structure() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let other = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let good = NetworkGradients::zeros_like(&other);
        let mut adam = Adam::new(0.001);
        assert!(apply_gradients(&mut net, &good, &mut adam).is_ok());
    }
}
